//! Golden-corpus conformance suite for the `.sctrace` trace format.
//!
//! `tests/data/` holds recorded executions of seeded kernels plus their
//! expected replay metrics. These tests fail on any drift — in the encoder
//! (byte-level file comparison), the decoder, or any model behind replay
//! (line-level JSON comparison with a readable diff). Regenerate the corpus
//! deliberately with `repro trace golden tests/data` when semantics change
//! on purpose, and bump the relevant format/sweep version.

use sigcomp_bench::golden::{
    diff_report, expected_json, expected_path, golden_bytes, record_golden, trace_path,
    GOLDEN_WORKLOADS,
};
use sigcomp_explore::TraceInput;
use std::path::Path;

fn data_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data"))
}

#[test]
fn corpus_has_at_least_four_members() {
    assert!(GOLDEN_WORKLOADS.len() >= 4);
    for &workload in GOLDEN_WORKLOADS {
        assert!(
            trace_path(data_dir(), workload).exists(),
            "{workload}.sctrace is missing — run `repro trace golden tests/data`"
        );
        assert!(
            expected_path(data_dir(), workload).exists(),
            "{workload}.expected.json is missing — run `repro trace golden tests/data`"
        );
    }
}

#[test]
fn recording_the_seeds_reproduces_the_checked_in_traces_bit_for_bit() {
    for &workload in GOLDEN_WORKLOADS {
        let checked_in = std::fs::read(trace_path(data_dir(), workload))
            .unwrap_or_else(|e| panic!("cannot read {workload}.sctrace: {e}"));
        let fresh = golden_bytes(workload, &record_golden(workload).unwrap()).unwrap();
        assert!(
            checked_in == fresh,
            "{workload}.sctrace drifted from a fresh recording \
             ({} checked-in bytes vs {} fresh) — if the change is intentional, \
             regenerate with `repro trace golden tests/data`",
            checked_in.len(),
            fresh.len()
        );
    }
}

#[test]
fn replaying_the_checked_in_traces_matches_the_expected_metrics() {
    for &workload in GOLDEN_WORKLOADS {
        // Read back through the real decoder, so this pins reader + models.
        let input = TraceInput::load(trace_path(data_dir(), workload))
            .unwrap_or_else(|e| panic!("cannot load {workload}.sctrace: {e}"));
        let records: sigcomp_isa::Trace = input.decoded().iter().collect();
        let actual = expected_json(workload, &records).unwrap();
        let expected = std::fs::read_to_string(expected_path(data_dir(), workload))
            .unwrap_or_else(|e| panic!("cannot read {workload}.expected.json: {e}"));
        if let Some(report) = diff_report(&expected, &actual) {
            panic!(
                "{workload}.expected.json drifted:\n{report}\
                 if the change is intentional, regenerate with \
                 `repro trace golden tests/data`"
            );
        }
    }
}

#[test]
fn checked_in_headers_declare_the_true_content_digest() {
    for &workload in GOLDEN_WORKLOADS {
        let path = trace_path(data_dir(), workload);
        let reader = sigcomp_isa::TraceReader::open(&path).unwrap();
        let declared = reader.declared_digest();
        assert_eq!(reader.meta_value("source"), Some(workload));
        assert_eq!(reader.meta_value("size"), Some("tiny"));
        // Recompute the digest from the decoded records (TraceInput::load
        // trusts the verified header, so recompute independently here).
        let input = TraceInput::load(&path).unwrap();
        let records: sigcomp_isa::Trace = input.decoded().iter().collect();
        let recomputed = sigcomp_isa::tracefile::payload_digest(&records).unwrap();
        assert_eq!(
            recomputed, declared,
            "{workload}: header digest does not match the record stream"
        );
        assert_eq!(input.digest(), declared);
    }
}
