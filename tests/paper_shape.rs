//! Shape tests against the paper's headline claims.
//!
//! Absolute numbers depend on the substituted workloads (DESIGN.md §2), but
//! the qualitative results the paper builds its argument on must hold:
//! activity savings of roughly 30–40 % in most stages at byte granularity,
//! smaller savings at halfword granularity, and the CPI ordering
//! byte-serial ≫ semi-parallel > parallel organizations ≈ baseline.

use sigcomp::analyzer::AnalyzerConfig;
use sigcomp::ExtScheme;
use sigcomp_bench::{activity_study, cpi_study, figure_orgs, merged_stats, ActivityRow, CpiRow};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;

fn suite_average(rows: &[ActivityRow]) -> sigcomp::ActivityReport {
    let mut merged = sigcomp::ActivityReport::default();
    for row in rows {
        merged.merge(&row.report);
    }
    merged
}

fn suite_cpi(rows: &[CpiRow], index: usize) -> f64 {
    let cycles: u64 = rows.iter().map(|r| r.results[index].cycles).sum();
    let instructions: u64 = rows.iter().map(|r| r.results[index].instructions).sum();
    cycles as f64 / instructions as f64
}

#[test]
fn byte_granularity_activity_savings_match_the_paper_shape() {
    let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_byte());
    let avg = suite_average(&rows);

    // Table 5 AVG row: Fetch 18 %, RF read 47 %, RF write 42 %, ALU 33 %,
    // D$ data 30 %, D$ tag ≈ 0 %, PC 73 %, latches 42 %. We require the same
    // qualitative bands.
    let fetch = avg.fetch.saving_percent();
    assert!((5.0..35.0).contains(&fetch), "fetch saving {fetch}");
    let rf_read = avg.rf_read.saving_percent();
    assert!((25.0..65.0).contains(&rf_read), "rf read saving {rf_read}");
    let rf_write = avg.rf_write.saving_percent();
    assert!(
        (20.0..65.0).contains(&rf_write),
        "rf write saving {rf_write}"
    );
    let alu = avg.alu.saving_percent();
    assert!((15.0..60.0).contains(&alu), "alu saving {alu}");
    let pc = avg.pc_increment.saving_percent();
    assert!((60.0..80.0).contains(&pc), "pc saving {pc}");
    let tag = avg.dcache_tag.saving_percent();
    assert!(tag.abs() < 2.0, "tag saving {tag}");
    let latches = avg.latches.saving_percent();
    assert!((25.0..65.0).contains(&latches), "latch saving {latches}");

    // §2.3: the average compressed instruction fetch is ≈ 3.17 bytes.
    let mean_fetch: f64 = rows.iter().map(|r| r.mean_fetch_bytes).sum::<f64>() / rows.len() as f64;
    assert!(
        (3.0..3.6).contains(&mean_fetch),
        "mean fetched bytes {mean_fetch}"
    );
}

#[test]
fn halfword_granularity_saves_less_than_byte_granularity() {
    let byte = suite_average(&activity_study(
        WorkloadSize::Tiny,
        &AnalyzerConfig::paper_byte(),
    ));
    let half = suite_average(&activity_study(
        WorkloadSize::Tiny,
        &AnalyzerConfig::paper_halfword(),
    ));
    assert!(byte.rf_read.saving() > half.rf_read.saving());
    assert!(byte.rf_write.saving() > half.rf_write.saving());
    assert!(byte.alu.saving() > half.alu.saving());
    assert!(byte.pc_increment.saving() > half.pc_increment.saving());
    // Halfword granularity still saves substantially (Table 6).
    assert!(half.rf_read.saving() > 0.1);
    assert!(half.pc_increment.saving() > 0.3);
}

#[test]
fn operand_pattern_statistics_are_dominated_by_narrow_values() {
    let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_byte());
    let stats = merged_stats(&rows);
    let table = stats.pattern_table();
    // Table 1: single-byte values ("eees") are the most common pattern, and
    // the four two-bit-expressible patterns dominate.
    assert_eq!(table[0].pattern.notation(), "eees");
    assert!(table[0].percent > 30.0);
    assert!(stats.prefix_pattern_coverage() > 65.0);
    // The "internal zero byte" patterns (e.g. data-segment addresses such as
    // 0x1000_0009) that motivate the 3-bit scheme in §2.1 really occur.
    let non_prefix: f64 = table
        .iter()
        .filter(|r| !r.pattern.is_prefix_pattern())
        .map(|r| r.percent)
        .sum();
    assert!(non_prefix > 2.0, "non-prefix patterns {non_prefix}");
    // §2.5: most instructions need an addition.
    assert!(stats.addition_fraction() > 55.0);
}

#[test]
fn cpi_ordering_matches_figures_4_6_8_and_10() {
    let kinds = [
        OrgKind::Baseline32,
        OrgKind::ByteSerial,
        OrgKind::HalfwordSerial,
        OrgKind::SemiParallel,
        OrgKind::ParallelSkewed,
        OrgKind::ParallelCompressed,
        OrgKind::SkewedBypass,
    ];
    let rows = cpi_study(WorkloadSize::Tiny, &kinds);
    let cpi: Vec<f64> = (0..kinds.len()).map(|i| suite_cpi(&rows, i)).collect();
    let (baseline, byte, half, semi, skewed, compressed, bypass) =
        (cpi[0], cpi[1], cpi[2], cpi[3], cpi[4], cpi[5], cpi[6]);

    // Fig. 4: the byte-serial machine is by far the slowest; the paper
    // reports +79 % — accept a generous band around it.
    let byte_rel = byte / baseline;
    assert!(
        (1.35..2.4).contains(&byte_rel),
        "byte-serial relative CPI {byte_rel}"
    );
    // Halfword-serial is faster than byte-serial (Fig. 4).
    assert!(half < byte);
    // Fig. 6: the semi-parallel machine recovers a large part of the loss.
    assert!(semi < byte);
    let semi_rel = semi / baseline;
    assert!((1.05..1.75).contains(&semi_rel), "semi-parallel {semi_rel}");
    // Fig. 8/10: the fully parallel organizations are close to the baseline
    // and the bypassed skewed pipeline is the closest.
    for (name, value) in [
        ("skewed", skewed),
        ("compressed", compressed),
        ("bypass", bypass),
    ] {
        let rel = value / baseline;
        assert!(
            (0.999..1.45).contains(&rel),
            "{name} relative CPI {rel} should be close to baseline"
        );
        assert!(value < semi, "{name} should beat semi-parallel");
    }
    assert!(
        bypass <= skewed + 1e-9,
        "bypasses never hurt the skewed pipeline"
    );
}

#[test]
fn figure_org_lists_are_consistent_with_the_paper() {
    assert_eq!(
        figure_orgs(4),
        vec![
            OrgKind::Baseline32,
            OrgKind::ByteSerial,
            OrgKind::HalfwordSerial
        ]
    );
    assert!(figure_orgs(10).contains(&OrgKind::SkewedBypass));
}

#[test]
fn table6_reports_smaller_but_positive_savings() {
    let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_halfword());
    let text = sigcomp_bench::activity_table(&rows, ExtScheme::Halfword);
    assert!(text.contains("Table 6"));
    let avg = suite_average(&rows);
    assert!(avg.rf_read.saving_percent() > 5.0);
    assert!(avg.rf_read.saving_percent() < 50.0);
}
