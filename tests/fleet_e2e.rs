//! End-to-end exercise of the distributed fleet: real worker servers on
//! loopback sockets, a frontier sweep dispatched over the `sigcomp-fleet
//! v1` wire protocol, and the invariant the whole fabric exists to uphold —
//! the merged output of any fleet shape is **byte-identical** to a
//! single-process run of the same spec, including when a worker dies
//! mid-sweep and its shard is re-dispatched to the survivors.

use sigcomp::ProcessNode;
use sigcomp_explore::{
    run_sweep, to_csv, to_json, ExecBackend, FleetConfig, MemProfile, ResultCache, SweepOptions,
    SweepSpec,
};
use sigcomp_serve::{BatchConfig, ServeConfig, Server, ServerHandle};
use sigcomp_workloads::WorkloadSize;
use std::io::Read;
use std::net::TcpListener;

fn start_worker() -> ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 32,
            queue_capacity: 512,
            sim_workers: Some(2),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn()
}

fn temp_cache(tag: &str) -> (std::path::PathBuf, ResultCache) {
    let dir = std::env::temp_dir().join(format!("sigcomp-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::open(&dir).expect("cache opens");
    (dir, cache)
}

/// Renders the exports exactly the way `repro sweep --csv/--json` does:
/// under the spec's first (only) requested energy model.
fn exports(outcomes: &[sigcomp_explore::JobOutcome]) -> (String, String) {
    let model = ProcessNode::Paper180nm.model();
    (to_csv(outcomes, &model), to_json(outcomes, &model))
}

/// A worker that "crashes" mid-sweep: accepts exactly one connection, reads
/// part of the request, then drops the stream *and* the listener — the
/// on-the-wire signature of a worker process killed mid-dispatch (reset on
/// the in-flight request, connection refused on every retry).
fn crash_after_first_request() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let mut buf = [0u8; 256];
            let _ = stream.read(&mut buf);
        }
    });
    (addr, handle)
}

fn lost_and_resharded() -> (u64, u64) {
    let snap = sigcomp_obs::global().snapshot();
    (
        snap.counter("fleet.frontier.workers_lost"),
        snap.counter("fleet.frontier.reshards"),
    )
}

#[test]
fn two_workers_merge_byte_identically_to_a_single_process_run() {
    sigcomp_fabric::install();
    let worker_a = start_worker();
    let worker_b = start_worker();

    // The paper's primary slice: 1 scheme × 7 organizations × 11 kernels.
    let spec = SweepSpec::paper(WorkloadSize::Tiny);
    let jobs = spec.enumerate().len() as u64;

    let (local_dir, local_cache) = temp_cache("two-local");
    let local = run_sweep(
        &spec,
        &SweepOptions {
            workers: Some(2),
            cache: Some(local_cache),
            backend: ExecBackend::LocalThreads,
        },
    );

    let (fleet_dir, fleet_cache) = temp_cache("two-fleet");
    let fleet = run_sweep(
        &spec,
        &SweepOptions {
            workers: Some(2),
            cache: Some(fleet_cache),
            backend: ExecBackend::Fleet(FleetConfig {
                workers: vec![worker_a.addr().to_string(), worker_b.addr().to_string()],
                timeout_ms: 60_000,
                attempts: 3,
            }),
        },
    );

    // Both workers took a shard, nothing ran locally.
    assert_eq!(fleet.backend, "fleet");
    assert_eq!(fleet.worker_loads.len(), 2, "{:?}", fleet.worker_loads);
    assert_eq!(
        fleet
            .worker_loads
            .iter()
            .map(|&(jobs, _)| jobs)
            .sum::<u64>(),
        jobs
    );

    // The invariant: the merged fleet output is byte-identical to the
    // single-process run — the exports a user would actually diff.
    let (local_csv, local_json) = exports(&local.outcomes);
    let (fleet_csv, fleet_json) = exports(&fleet.outcomes);
    assert_eq!(fleet_csv, local_csv, "CSV must match byte for byte");
    assert_eq!(fleet_json, local_json, "JSON must match byte for byte");

    worker_a.shutdown();
    worker_b.shutdown();
    let _ = std::fs::remove_dir_all(&local_dir);
    let _ = std::fs::remove_dir_all(&fleet_dir);
}

#[test]
fn killing_a_worker_mid_sweep_reshards_and_stays_byte_identical() {
    sigcomp_fabric::install();
    let survivor = start_worker();
    let (victim_addr, victim) = crash_after_first_request();

    // The full 231-configuration sweep (3 schemes × 7 organizations × 11
    // kernels), the same one the CI fleet smoke runs.
    let spec = SweepSpec::full(WorkloadSize::Tiny).mems(&[MemProfile::Paper]);
    let jobs = spec.enumerate().len() as u64;
    assert_eq!(jobs, 231);

    let (local_dir, local_cache) = temp_cache("chaos-local");
    let local = run_sweep(
        &spec,
        &SweepOptions {
            workers: Some(2),
            cache: Some(local_cache),
            backend: ExecBackend::LocalThreads,
        },
    );

    let (before_lost, before_reshards) = lost_and_resharded();
    let (fleet_dir, fleet_cache) = temp_cache("chaos-fleet");
    let fleet = run_sweep(
        &spec,
        &SweepOptions {
            workers: Some(2),
            cache: Some(fleet_cache),
            backend: ExecBackend::Fleet(FleetConfig {
                workers: vec![survivor.addr().to_string(), victim_addr],
                timeout_ms: 60_000,
                attempts: 2,
            }),
        },
    );
    let (after_lost, after_reshards) = lost_and_resharded();

    // The frontier must have noticed the death and re-dispatched the dead
    // worker's shard to the survivor.
    assert!(after_lost > before_lost, "the killed worker must be lost");
    assert!(
        after_reshards > before_reshards,
        "its shard must be re-dispatched"
    );
    assert_eq!(
        fleet
            .worker_loads
            .iter()
            .map(|&(jobs, _)| jobs)
            .sum::<u64>(),
        jobs,
        "every job still completes: {:?}",
        fleet.worker_loads
    );

    // And the chaos must be invisible in the output.
    let (local_csv, local_json) = exports(&local.outcomes);
    let (fleet_csv, fleet_json) = exports(&fleet.outcomes);
    assert_eq!(fleet_csv, local_csv, "CSV must match byte for byte");
    assert_eq!(fleet_json, local_json, "JSON must match byte for byte");

    survivor.shutdown();
    victim.join().expect("victim thread");
    let _ = std::fs::remove_dir_all(&local_dir);
    let _ = std::fs::remove_dir_all(&fleet_dir);
}
