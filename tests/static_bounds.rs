//! The differential verifier over the golden corpus: every dynamically
//! recorded operand of every checked-in trace must respect the width bound
//! the static analysis proves for its instruction.
//!
//! This is the machine-checked invariant tying three subsystems together:
//! the interpreter (which produced the corpus), the significance semantics
//! in `sigcomp::ext` (which defines "width"), and the abstract transfer
//! functions in `sigcomp-static` (which claim to over-approximate both).
//! Any future change that widens a value illegally — in either direction —
//! fails this suite, and CI runs it as a dedicated step.

use sigcomp::SigStats;
use sigcomp_bench::golden::{trace_path, GOLDEN_SIZE, GOLDEN_WORKLOADS};
use sigcomp_explore::TraceInput;
use sigcomp_isa::Trace;
use sigcomp_static::{
    analyze_program, program_from_records, verify_trace_against_bounds, EntryState, WidthReport,
};
use sigcomp_workloads::find;
use std::path::Path;

fn data_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data"))
}

fn corpus_records(workload: &str) -> Trace {
    let input = TraceInput::load(trace_path(data_dir(), workload))
        .unwrap_or_else(|e| panic!("cannot load {workload}.sctrace: {e}"));
    input.decoded().iter().collect()
}

#[test]
fn every_golden_trace_respects_its_static_bounds() {
    for &workload in GOLDEN_WORKLOADS {
        let bench = find(workload, GOLDEN_SIZE).expect("golden workload exists");
        let analysis = analyze_program(bench.program(), EntryState::KernelBoot);
        let trace = corpus_records(workload);
        let report = verify_trace_against_bounds(&analysis, trace.records())
            .unwrap_or_else(|e| panic!("{workload}: {e}"));
        assert_eq!(report.records, trace.records().len() as u64, "{workload}");
        assert!(
            report.values_checked > report.records,
            "{workload}: expected more operand checks than records"
        );
    }
}

#[test]
fn reconstructed_trace_programs_also_bound_the_corpus() {
    // The `repro analyze <file.sctrace>` path: rebuild the program image
    // from the recorded (pc, word) pairs and re-derive bounds with an
    // unknown entry state. Weaker bounds, same invariant.
    for &workload in GOLDEN_WORKLOADS {
        let trace = corpus_records(workload);
        let program = program_from_records(trace.records()).expect("corpus is non-empty");
        let analysis = analyze_program(&program, EntryState::Unknown);
        verify_trace_against_bounds(&analysis, trace.records())
            .unwrap_or_else(|e| panic!("{workload} (reconstructed): {e}"));
    }
}

#[test]
fn static_width_report_is_comparable_with_dynamic_sigstats() {
    for &workload in GOLDEN_WORKLOADS {
        let bench = find(workload, GOLDEN_SIZE).expect("golden workload exists");
        let analysis = analyze_program(bench.program(), EntryState::KernelBoot);
        let report = WidthReport::from_analysis(workload, &analysis);

        let mut stats = SigStats::default();
        let trace = corpus_records(workload);
        for r in trace.records() {
            stats.observe(r);
        }

        // Both sides describe a 1..=4-byte distribution over the same
        // program; the static one counts each reachable instruction once,
        // the dynamic one weights by execution frequency.
        let static_sum: f64 = report.width_fractions().iter().sum();
        assert!((static_sum - 1.0).abs() < 1e-9, "{workload}");
        let static_mean = report.mean_bound_bytes();
        let dynamic_mean = stats.mean_significant_bytes();
        for mean in [static_mean, dynamic_mean] {
            assert!((1.0..=4.0).contains(&mean), "{workload}: mean {mean}");
        }
        assert!(
            report.instructions > 0 && report.predicted_saving() >= 0.0,
            "{workload}"
        );
    }
}
