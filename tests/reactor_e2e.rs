//! End-to-end exercise of the reactor front door over real loopback
//! sockets: the failure modes the nonblocking event loop exists to handle
//! — slowloris trickles, keep-alive reuse, pipelined batches, arbitrary
//! TCP segmentation, and admission control at the connection cap — each
//! pinned against a live server with its `/metrics` accounting.

use sigcomp_fabric::HttpClient;
use sigcomp_serve::{BatchConfig, Json, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A minimal raw HTTP/1.1 client: one request, read to connection close.
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    (status, raw)
}

fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (status, raw) = http_raw(addr, "GET", path, None);
    assert_eq!(status, 200, "{path}: {raw}");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Json::parse(&payload).unwrap_or_else(|e| panic!("{path}: invalid JSON {e}: {payload}"))
}

fn reactor_counter(addr: SocketAddr, name: &str) -> u64 {
    get_json(addr, "/metrics")
        .get("reactor")
        .and_then(|r| r.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("/metrics missing reactor.{name}"))
}

fn start_server(config: ServeConfig) -> ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            sim_workers: Some(2),
            ..BatchConfig::default()
        },
        ..config
    })
    .expect("bind")
    .spawn()
}

/// One framed keep-alive exchange on an open connection: write the request,
/// read exactly one response (status line, headers, `Content-Length` body).
fn framed_round_trip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
         Connection: keep-alive\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    read_framed_response(reader)
}

fn read_framed_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("read header");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(value) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = value.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

#[test]
fn a_slowloris_connection_is_answered_with_408_and_counted() {
    // A client that trickles half a request and then stalls must be told
    // 408 and disconnected when the read deadline lapses — not hold a
    // connection slot forever.
    let server = start_server(ServeConfig {
        read_deadline: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /simulate HTTP/1.1\r\nHost: slow")
        .expect("send partial request");
    let started = Instant::now();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(raw.contains("Request Timeout"), "{raw}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "408 must arrive at the configured deadline, not the default"
    );
    assert!(reactor_counter(addr, "request_timeouts") >= 1);

    // The server is unharmed.
    let (status, _) = http_raw(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn a_keep_alive_connection_serves_many_requests_and_reuse_is_counted() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let body = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";
    let mut job_ids = Vec::new();
    for i in 0..4 {
        let (status, payload) = if i % 2 == 0 {
            framed_round_trip(&mut stream, &mut reader, "POST", "/simulate", body)
        } else {
            framed_round_trip(&mut stream, &mut reader, "GET", "/healthz", "")
        };
        assert_eq!(status, 200, "request {i}: {payload}");
        if i % 2 == 0 {
            let doc = Json::parse(&payload).expect("valid JSON");
            job_ids.push(doc.get("job_id").and_then(Json::as_str).unwrap().to_owned());
        }
    }
    assert_eq!(job_ids[0], job_ids[1], "same spec, same job");

    // Three requests after the first on one connection = three reuses.
    assert!(reactor_counter(addr, "keepalive_reuses") >= 3);
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    // Warm the memo so every pipelined /simulate is a fast-path hit.
    let body = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";
    let (status, _) = http_raw(addr, "POST", "/simulate", Some(body));
    assert_eq!(status, 200);

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let one = |method: &str, path: &str, body: &str| {
        format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
             Connection: keep-alive\r\n\r\n{body}",
            body.len()
        )
    };
    // One write, four requests; responses must come back in request order.
    let batch = format!(
        "{}{}{}{}",
        one("GET", "/healthz", ""),
        one("POST", "/simulate", body),
        one("GET", "/no-such-endpoint", ""),
        one("GET", "/healthz", "")
    );
    stream.write_all(batch.as_bytes()).expect("send batch");
    let expected = [
        (200, "\"status\": \"ok\""),
        (200, "job_id"),
        (404, ""),
        (200, "\"status\": \"ok\""),
    ];
    for (i, (want_status, want_fragment)) in expected.iter().enumerate() {
        let (status, payload) = read_framed_response(&mut reader);
        assert_eq!(status, *want_status, "response {i}: {payload}");
        assert!(payload.contains(want_fragment), "response {i}: {payload}");
    }
    server.shutdown();
}

#[test]
fn a_request_split_at_arbitrary_byte_boundaries_still_parses() {
    let server = start_server(ServeConfig::default());
    let addr = server.addr();

    let body = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";
    let request = format!(
        "POST /simulate HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let bytes = request.as_bytes();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Deliver in three fragments with pauses: the split lands mid-header
    // and mid-body, and each fragment arrives as its own TCP segment.
    let cuts = [0, 17, bytes.len() - 5, bytes.len()];
    for window in cuts.windows(2) {
        stream
            .write_all(&bytes[window[0]..window[1]])
            .expect("send fragment");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("job_id"), "{raw}");
    server.shutdown();
}

#[test]
fn past_the_connection_cap_new_connections_shed_fast_with_503() {
    let server = start_server(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Occupy both slots with live keep-alive connections; a completed
    // round trip proves each is admitted and registered, not in flight.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let (status, _) = framed_round_trip(&mut stream, &mut reader, "GET", "/healthz", "");
        assert_eq!(status, 200);
        held.push((stream, reader));
    }

    // The next connection must be shed fast: 503 + Retry-After, closed.
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read shed notice");
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(
        raw.to_ascii_lowercase().contains("\r\nretry-after: 1\r\n"),
        "{raw}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the shed must be fast, not queued behind held connections"
    );

    // Release the held slots; once the reactor notices the closes, the
    // metrics endpoint is reachable again and accounts the shed.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let mut probe = TcpStream::connect(addr).expect("connect");
        probe
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n")
            .expect("send probe");
        let mut raw = String::new();
        // A shed closes without reading our request bytes, which can
        // surface client-side as a reset instead of a clean 503 — either
        // way the slot is still taken, so just retry.
        let _ = probe.read_to_string(&mut raw);
        if raw.starts_with("HTTP/1.1 200") {
            let payload = raw
                .split_once("\r\n\r\n")
                .map(|(_, b)| b)
                .unwrap_or_default();
            break Json::parse(payload).expect("valid JSON");
        }
        assert!(Instant::now() < deadline, "slots never freed: {raw}");
        std::thread::sleep(Duration::from_millis(20));
    };
    let reactor = metrics.get("reactor").expect("reactor section");
    let shed = reactor.get("conns_shed").and_then(Json::as_u64).unwrap();
    let accepted = reactor
        .get("conns_accepted")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(shed >= 1, "the 503 must be accounted: {shed}");
    assert!(accepted >= 2, "held connections were admitted: {accepted}");
    server.shutdown();
}

#[test]
fn a_fleet_client_rides_one_pooled_connection_end_to_end() {
    // The fabric HTTP client against a live reactor server: five requests
    // plus the metrics read all ride one pooled keep-alive connection, and
    // the server's own accounting proves it.
    let server = start_server(ServeConfig::default());
    let addr = server.addr().to_string();

    let client = HttpClient::new(Duration::from_secs(10));
    for i in 0..5 {
        let response = client.get(&addr, "/healthz").expect("healthz");
        assert_eq!(response.status, 200, "request {i}: {}", response.body);
    }
    let response = client.get(&addr, "/metrics").expect("metrics");
    assert_eq!(response.status, 200);
    let metrics = Json::parse(&response.body).expect("valid JSON");
    let reactor = metrics.get("reactor").expect("reactor section");
    assert_eq!(
        reactor.get("conns_accepted").and_then(Json::as_u64),
        Some(1),
        "every request must ride the one pooled connection"
    );
    assert_eq!(
        reactor.get("keepalive_reuses").and_then(Json::as_u64),
        Some(5),
        "five requests after the first = five reuses"
    );
    server.shutdown();
}
