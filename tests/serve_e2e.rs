//! End-to-end exercise of the serving front-end over real loopback
//! sockets: concurrent clients submitting overlapping configurations must
//! receive responses **bit-identical** to a direct `run_sweep` of the same
//! specs, and the server's `/metrics` counters must prove the batching
//! scheduler deduplicated the overlap (simulated count < requested count).

use sigcomp::ExtScheme;
use sigcomp_explore::{run_sweep, JobSpec, MemProfile, SweepOptions, SweepSpec};
use sigcomp_pipeline::OrgKind;
use sigcomp_serve::{BatchConfig, Json, ServeConfig, Server, ServerHandle};
use sigcomp_workloads::WorkloadSize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A minimal raw HTTP/1.1 client: one request, read to connection close.
/// Returns the status and the complete raw response (headers included).
fn http_raw(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let body = body.unwrap_or_default();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    (status, raw)
}

/// Like [`http_raw`] but discards the headers.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let (status, raw) = http_raw(addr, method, path, body);
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, payload)
}

fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (status, body) = http(addr, "GET", path, None);
    assert_eq!(status, 200, "{path}: {body}");
    Json::parse(&body).unwrap_or_else(|e| panic!("{path}: invalid JSON {e}: {body}"))
}

fn start_server() -> ServerHandle {
    Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 32,
            queue_capacity: 256,
            sim_workers: Some(2),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn()
}

#[test]
fn concurrent_overlapping_clients_are_deduplicated_and_bit_identical() {
    let server = start_server();
    let addr = server.addr();

    let (status, body) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    // Four distinct configurations; every client asks for all four, so the
    // 8 clients × 4 requests = 32 submissions overlap 8-fold.
    let spec = SweepSpec::paper(WorkloadSize::Tiny)
        .workloads(&["rawcaudio", "pgp"])
        .orgs(&[OrgKind::Baseline32, OrgKind::ByteSerial]);
    let jobs: Vec<JobSpec> = spec.enumerate();
    assert_eq!(jobs.len(), 4);
    let direct = run_sweep(&spec, &SweepOptions::with_workers(2));

    let clients = 8;
    std::thread::scope(|scope| {
        for client in 0..clients {
            let jobs = &jobs;
            let direct = &direct;
            scope.spawn(move || {
                for i in 0..jobs.len() {
                    // Stagger the order per client so batches interleave.
                    let job = jobs[(i + client) % jobs.len()];
                    let expected = &direct.outcomes[(i + client) % jobs.len()].metrics;
                    let body = format!(
                        "{{\"workload\": \"{}\", \"size\": \"{}\", \"scheme\": \"{}\", \
                         \"org\": \"{}\", \"mem\": \"{}\"}}",
                        job.workload,
                        job.size.name(),
                        job.scheme.id(),
                        job.org.id(),
                        job.mem.id()
                    );
                    let (status, payload) = http(addr, "POST", "/simulate", Some(&body));
                    assert_eq!(status, 200, "{payload}");
                    let doc = Json::parse(&payload).expect("valid JSON");
                    // Bit-identical: every exact integer counter matches the
                    // direct sweep of the same spec.
                    for (field, expected_value) in [
                        ("instructions", expected.instructions),
                        ("cycles", expected.cycles),
                        ("branches", expected.branches),
                        ("stall_structural", expected.stall_structural),
                        ("stall_data_hazard", expected.stall_data_hazard),
                        ("stall_control", expected.stall_control),
                    ] {
                        assert_eq!(
                            doc.get(field).and_then(Json::as_u64),
                            Some(expected_value),
                            "{} {field}",
                            job.label()
                        );
                    }
                    // ... including the per-stage activity counters.
                    for (name, stage) in expected.activity.columns() {
                        let key = sigcomp_explore::column_slug(name);
                        let col = doc.get("activity").and_then(|a| a.get(&key)).unwrap();
                        assert_eq!(
                            col.get("compressed").and_then(Json::as_u64),
                            Some(stage.compressed_bits),
                            "{} activity {key}",
                            job.label()
                        );
                        assert_eq!(
                            col.get("baseline").and_then(Json::as_u64),
                            Some(stage.baseline_bits),
                            "{} activity {key}",
                            job.label()
                        );
                    }
                    assert_eq!(
                        doc.get("job_id").and_then(Json::as_str),
                        Some(format!("{:016x}", job.job_id()).as_str())
                    );
                }
            });
        }
    });

    // The metrics must prove deduplication: 32 requested, at most 4
    // simulated (one per distinct configuration).
    let metrics = get_json(addr, "/metrics");
    let batch = metrics.get("batch").expect("batch section");
    let requested = batch.get("jobs_requested").and_then(Json::as_u64).unwrap();
    let simulated = batch.get("jobs_simulated").and_then(Json::as_u64).unwrap();
    let memo = batch.get("jobs_memo_hits").and_then(Json::as_u64).unwrap();
    let deduped = batch
        .get("jobs_batch_deduped")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(requested, (clients * jobs.len()) as u64);
    assert_eq!(simulated as usize, jobs.len(), "one simulation per config");
    assert!(
        simulated < requested,
        "deduplication must be visible: {simulated} !< {requested}"
    );
    assert_eq!(memo + deduped + simulated, requested);

    // Per-backend dispatch accounting: this server runs the default
    // in-process backend, so every job that reached a backend was placed
    // locally — and placement happens after memo/batch dedup, so placed
    // jobs are exactly those that simulated or hit the disk cache.
    let dispatch = batch.get("dispatch").expect("dispatch section");
    let placed_local = dispatch.get("local").and_then(Json::as_u64).unwrap();
    let placed_subprocess = dispatch.get("subprocess").and_then(Json::as_u64).unwrap();
    let disk_hits = batch
        .get("jobs_disk_cache_hits")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(placed_local, simulated + disk_hits);
    assert_eq!(placed_subprocess, 0, "no subprocess backend configured");

    // The bounded memo reports its occupancy (and can never exceed the
    // distinct-job count here).
    let memo_entries = batch.get("memo_entries").and_then(Json::as_u64).unwrap();
    assert_eq!(memo_entries as usize, jobs.len());

    server.shutdown();
}

#[test]
fn capped_memo_and_registry_hold_server_memory_flat_under_distinct_traffic() {
    // A server with tiny caps must keep answering correctly while its
    // in-memory structures stay at their configured bounds.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 8,
            queue_capacity: 64,
            sim_workers: Some(2),
            memo_capacity: 2,
            ..BatchConfig::default()
        },
        finished_tickets: 1,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = server.addr();

    // Sustained distinct traffic: more distinct configurations than the
    // memo retains.
    let spec = SweepSpec::paper(WorkloadSize::Tiny)
        .workloads(&["rawcaudio", "pgp", "epic"])
        .orgs(&[OrgKind::Baseline32, OrgKind::ByteSerial]);
    for job in spec.enumerate() {
        let body = format!(
            "{{\"workload\": \"{}\", \"size\": \"{}\", \"scheme\": \"{}\", \
             \"org\": \"{}\", \"mem\": \"{}\"}}",
            job.workload,
            job.size.name(),
            job.scheme.id(),
            job.org.id(),
            job.mem.id()
        );
        let (status, payload) = http(addr, "POST", "/simulate", Some(&body));
        assert_eq!(status, 200, "{payload}");
        let metrics = get_json(addr, "/metrics");
        let entries = metrics
            .get("batch")
            .and_then(|b| b.get("memo_entries"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(entries <= 2, "memo grew past its cap: {entries}");
    }

    // Two finished sweep tickets with a retention of one: the older falls
    // out (404), the newer stays pollable — the registry cannot grow.
    let mut tickets = Vec::new();
    for _ in 0..2 {
        let (status, body) = http(
            addr,
            "POST",
            "/sweep",
            Some("{\"workloads\": [\"rawcaudio\"], \"sizes\": [\"tiny\"], \"orgs\": [\"baseline32\"]}"),
        );
        assert_eq!(status, 202, "{body}");
        let poll = Json::parse(&body)
            .unwrap()
            .get("poll")
            .and_then(Json::as_str)
            .unwrap()
            .to_owned();
        // Wait for this ticket to settle before submitting the next so the
        // eviction order is deterministic.
        let deadline = std::time::Instant::now() + std::time::Duration::from_mins(1);
        loop {
            let (status, body) = http(addr, "GET", &poll, None);
            if status == 200 && body.contains("\"status\": \"done\"") {
                break;
            }
            assert_eq!(status, 200, "{body}");
            assert!(std::time::Instant::now() < deadline, "sweep never finished");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        tickets.push(poll);
    }
    let (status, _) = http(addr, "GET", &tickets[0], None);
    assert_eq!(status, 404, "evicted ticket must be gone");
    let (status, body) = http(addr, "GET", &tickets[1], None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\": \"done\""), "{body}");

    server.shutdown();
}

#[test]
fn sync_sweep_over_http_matches_run_sweep() {
    let server = start_server();
    let addr = server.addr();

    let spec = SweepSpec::paper(WorkloadSize::Tiny).workloads(&["epic"]);
    let direct = run_sweep(&spec, &SweepOptions::with_workers(2));

    let (status, body) = http(
        addr,
        "POST",
        "/sweep",
        Some(
            "{\"workloads\": [\"epic\"], \"sizes\": [\"tiny\"], \
             \"schemes\": [\"3bit\"], \"mems\": [\"paper\"], \"sync\": true}",
        ),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("valid JSON");
    assert_eq!(
        doc.get("jobs").and_then(Json::as_u64),
        Some(direct.outcomes.len() as u64)
    );
    let outcomes = doc.get("outcomes").and_then(Json::as_arr).unwrap();
    assert_eq!(outcomes.len(), direct.outcomes.len());
    for (served, expected) in outcomes.iter().zip(&direct.outcomes) {
        assert_eq!(
            served.get("job_id").and_then(Json::as_str),
            Some(format!("{:016x}", expected.spec.job_id()).as_str())
        );
        assert_eq!(
            served.get("cycles").and_then(Json::as_u64),
            Some(expected.metrics.cycles)
        );
        assert_eq!(
            served.get("instructions").and_then(Json::as_u64),
            Some(expected.metrics.instructions)
        );
    }
    assert!(doc.get("frontier").and_then(Json::as_arr).is_some());

    server.shutdown();
}

#[test]
fn async_sweep_ticket_is_pollable_to_completion() {
    let server = start_server();
    let addr = server.addr();

    let (status, body) = http(
        addr,
        "POST",
        "/sweep",
        Some("{\"workloads\": [\"rawcaudio\"], \"sizes\": [\"tiny\"], \"orgs\": [\"baseline32\"]}"),
    );
    assert_eq!(status, 202, "{body}");
    let ticket = Json::parse(&body).expect("valid JSON");
    let poll = ticket
        .get("poll")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();

    let deadline = std::time::Instant::now() + std::time::Duration::from_mins(1);
    loop {
        let doc = get_json(addr, &poll);
        match doc.get("status").and_then(Json::as_str) {
            Some("running") => {
                assert!(std::time::Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Some("done") => {
                assert_eq!(doc.get("jobs").and_then(Json::as_u64), Some(1));
                break;
            }
            other => panic!("unexpected status {other:?}"),
        }
    }

    server.shutdown();
}

#[test]
fn full_queue_sheds_with_a_fast_503_and_retry_after() {
    // Load-shedding regression: a single-slot queue behind a single-slot
    // dispatcher. Concurrent interactive /simulate clients beyond queue
    // room must get an immediate 503 with a Retry-After header — never a
    // connection that silently hangs until the queue drains.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 1,
            queue_capacity: 1,
            sim_workers: Some(1),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = server.addr();

    // Distinct default-size jobs (slow enough to occupy the dispatcher) in
    // bursts of concurrent clients; each round uses fresh configurations so
    // the memo can never answer without queueing. Timing-dependent, so loop
    // bursts until a shed is observed.
    let jobs: Vec<JobSpec> = SweepSpec::paper(WorkloadSize::Default).enumerate();
    let mut shed = None;
    'rounds: for round in jobs.chunks(8).take(4) {
        let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = round
                .iter()
                .map(|job| {
                    let body = format!(
                        "{{\"workload\": \"{}\", \"size\": \"{}\", \"scheme\": \"{}\", \
                         \"org\": \"{}\", \"mem\": \"{}\"}}",
                        job.workload,
                        job.size.name(),
                        job.scheme.id(),
                        job.org.id(),
                        job.mem.id()
                    );
                    scope.spawn(move || http_raw(addr, "POST", "/simulate", Some(&body)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (status, raw) in responses {
            assert!(
                status == 200 || status == 503,
                "unexpected status {status}: {raw}"
            );
            if status == 503 {
                shed = Some(raw);
                break 'rounds;
            }
        }
    }
    let raw = shed.expect("a one-slot queue under concurrent bursts must shed");
    let lowered = raw.to_ascii_lowercase();
    assert!(
        lowered.contains("\r\nretry-after:"),
        "503 must carry Retry-After: {raw}"
    );
    // The hint is derived from the backlog (batches queued ahead), not a
    // hardcoded constant: with queue_capacity = max_batch = 1 the shed
    // client has at most one batch ahead of it, so the hint must be the
    // 1-second floor — and in any configuration it must stay within the
    // derivation's clamp, never 0 (busy loop) or unbounded.
    let retry_after: u64 = lowered
        .lines()
        .find_map(|line| line.strip_prefix("retry-after:"))
        .and_then(|value| value.trim().parse().ok())
        .expect("Retry-After value must be an integer");
    assert_eq!(retry_after, 1, "one-slot queue ⇒ one pending batch: {raw}");
    assert!(lowered.contains("overloaded"), "{raw}");

    // The shed is accounted on /metrics.
    let metrics = get_json(addr, "/metrics");
    let shed_count = metrics
        .get("batch")
        .and_then(|b| b.get("jobs_shed"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(
        shed_count >= 1,
        "jobs_shed must count the 503: {shed_count}"
    );

    server.shutdown();
}

#[test]
fn malformed_requests_get_clean_4xx_responses() {
    let server = start_server();
    let addr = server.addr();

    let (status, body) = http(addr, "POST", "/simulate", Some("{not json"));
    assert_eq!(status, 400);
    assert!(body.contains("invalid JSON body"), "{body}");

    let (status, body) = http(addr, "POST", "/simulate", Some("{\"workload\": \"nope\"}"));
    assert_eq!(status, 400);
    assert!(body.contains("unknown workload"), "{body}");

    let (status, _) = http(addr, "GET", "/no-such-endpoint", None);
    assert_eq!(status, 404);

    let (status, _) = http(addr, "DELETE", "/simulate", Some(""));
    assert_eq!(status, 405);

    // Raw protocol garbage must still produce an HTTP error, not a hang or
    // a dropped connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"NONSENSE\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    // The server must still be healthy afterwards.
    let (status, _) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);

    server.shutdown();
}

#[test]
fn job_specs_used_by_clients_hash_like_the_server() {
    // The dedup key is the content hash; pin that a client-side JobSpec and
    // the parsed server-side spec agree (guards against the API layer
    // defaulting an axis differently than advertised).
    let job = JobSpec {
        scheme: ExtScheme::ThreeBit,
        org: OrgKind::ByteSerial,
        workload: "rawcaudio",
        size: WorkloadSize::Default,
        mem: MemProfile::Paper,
        source: sigcomp_explore::TraceSource::Kernel,
    };
    let server = start_server();
    let (status, body) = http(
        server.addr(),
        "POST",
        "/simulate",
        Some("{\"workload\": \"rawcaudio\"}"),
    );
    assert_eq!(status, 200, "{body}");
    let doc = Json::parse(&body).expect("valid JSON");
    assert_eq!(
        doc.get("job_id").and_then(Json::as_str),
        Some(format!("{:016x}", job.job_id()).as_str()),
        "server defaults must match the documented flagship configuration"
    );
    server.shutdown();
}
