//! Differential proof that decode-once arena replay is bit-identical to
//! streaming replay.
//!
//! The sweep's hot path replays [`DecodedTrace`] arenas
//! ([`sigcomp_explore::simulate_decoded`]); the conformance tooling and the
//! original replay path stream `Vec<ExecRecord>` traces
//! ([`sigcomp_explore::simulate_trace`]). These tests pin the two paths to
//! each other over the golden corpus: same records, and bit-identical
//! metrics for every scheme × organization.

use sigcomp::ExtScheme;
use sigcomp_bench::golden::GOLDEN_WORKLOADS;
use sigcomp_explore::{simulate_decoded, simulate_trace, JobSpec, MemProfile, TraceSource};
use sigcomp_isa::tracefile::{collect_records, payload_digest};
use sigcomp_isa::{DecodedTrace, Trace, TraceReader};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;
use std::path::PathBuf;

fn golden_path(workload: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data"))
        .join(format!("{workload}.sctrace"))
}

fn load_both(workload: &str) -> (Trace, DecodedTrace) {
    let path = golden_path(workload);
    let streamed = collect_records(TraceReader::open(&path).unwrap())
        .unwrap_or_else(|e| panic!("streaming load of {workload}: {e}"));
    let arena =
        DecodedTrace::open(&path).unwrap_or_else(|e| panic!("arena load of {workload}: {e}"));
    (streamed, arena)
}

#[test]
fn arena_records_equal_streaming_records_over_the_golden_corpus() {
    for &workload in GOLDEN_WORKLOADS {
        let (streamed, arena) = load_both(workload);
        assert_eq!(arena.len(), streamed.len(), "{workload}: record count");
        for (i, (from_arena, from_stream)) in arena.iter().zip(streamed.iter()).enumerate() {
            assert_eq!(
                from_arena, *from_stream,
                "{workload}: record {i} differs between arena and streaming decode"
            );
        }
    }
}

#[test]
fn arena_replay_metrics_are_bit_identical_for_every_scheme_and_organization() {
    for &workload in GOLDEN_WORKLOADS {
        let (streamed, arena) = load_both(workload);
        let digest = payload_digest(&streamed).unwrap();
        for &scheme in ExtScheme::ALL {
            for &org in OrgKind::ALL {
                let spec = JobSpec {
                    scheme,
                    org,
                    workload: "arena-diff",
                    size: WorkloadSize::Tiny,
                    mem: MemProfile::Paper,
                    source: TraceSource::File { digest },
                };
                let from_stream = simulate_trace(&spec, &streamed);
                let from_arena = simulate_decoded(&spec, &arena);
                assert_eq!(
                    from_arena,
                    from_stream,
                    "{workload} / {} / {}: arena metrics diverge from streaming metrics",
                    scheme.id(),
                    org.id()
                );
            }
        }
    }
}
