//! Cross-crate integration tests: kernels from `sigcomp-workloads` executed
//! by the `sigcomp-isa` interpreter, analyzed by the `sigcomp` activity
//! models and timed by the `sigcomp-pipeline` organizations.

use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::ext::{CompressedWord, ExtScheme};
use sigcomp::ifetch::{compress_instruction, decompress_instruction, FunctRecoder};
use sigcomp::{EnergyModel, ProcessNode};
use sigcomp_explore::{
    config_points, pareto_frontier, run_sweep, to_csv, to_json, ConfigPoint, SweepOptions,
    SweepSpec,
};
use sigcomp_pipeline::{simulate_all, simulate_trace, OrgKind};
use sigcomp_workloads::{suite, SynthConfig, TraceSynthesizer, WorkloadSize};

#[test]
fn every_kernel_flows_through_the_full_stack() {
    for benchmark in suite(WorkloadSize::Tiny) {
        let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
        let mut sim_input = Vec::new();
        benchmark
            .run_each(|rec| {
                analyzer.observe(rec);
                sim_input.push(*rec);
            })
            .unwrap_or_else(|e| panic!("kernel {} failed: {e}", benchmark.name()));

        let report = analyzer.report();
        assert!(
            report.pc_increment.saving() > 0.4,
            "{}: PC saving {:.3}",
            benchmark.name(),
            report.pc_increment.saving()
        );
        assert!(
            report.total().baseline_bits > 0,
            "{}: no activity recorded",
            benchmark.name()
        );

        let trace: sigcomp_isa::Trace = sim_input.into_iter().collect();
        let baseline = simulate_trace(OrgKind::Baseline32, &trace);
        assert_eq!(baseline.instructions, trace.len() as u64);
        assert!(baseline.cpi() >= 1.0);
    }
}

#[test]
fn every_value_in_a_trace_compresses_losslessly() {
    let benchmark = &suite(WorkloadSize::Tiny)[0];
    let mut checked = 0u64;
    benchmark
        .run_each(|rec| {
            for value in rec
                .source_values()
                .chain(rec.result_value())
                .chain(rec.mem.map(|m| m.value))
            {
                for &scheme in ExtScheme::ALL {
                    let c = CompressedWord::compress(value, scheme);
                    assert_eq!(c.decompress(), value);
                }
                checked += 1;
            }
        })
        .expect("kernel runs");
    assert!(checked > 500);
}

#[test]
fn every_executed_instruction_survives_icache_permutation() {
    let recoder = FunctRecoder::paper_default();
    for benchmark in suite(WorkloadSize::Tiny) {
        benchmark
            .run_each(|rec| {
                let compressed = compress_instruction(&rec.instr, &recoder);
                assert_eq!(
                    decompress_instruction(compressed.stored_word, &recoder),
                    rec.instr.encode(),
                    "{}: instruction {} did not round-trip",
                    benchmark.name(),
                    rec.instr
                );
                assert!(compressed.fetch_bytes == 3 || compressed.fetch_bytes == 4);
            })
            .expect("kernel runs");
    }
}

#[test]
fn synthetic_traces_drive_both_studies() {
    let trace = TraceSynthesizer::new(SynthConfig::paper(30_000)).generate();

    let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
    for rec in &trace {
        analyzer.observe(rec);
    }
    let report = analyzer.report();
    // The synthesizer is calibrated to Table 1, so register-read savings land
    // near the paper's 47 %.
    let rf = report.rf_read.saving();
    assert!(rf > 0.35 && rf < 0.60, "rf read saving {rf}");
    assert!(EnergyModel::default().saving(&report) > 0.2);

    let results = simulate_all(&trace);
    assert_eq!(results.len(), OrgKind::ALL.len());
    let baseline = &results[0];
    for r in &results[1..] {
        assert!(r.cpi() >= baseline.cpi() * 0.999, "{}", r.organization);
    }
}

#[test]
fn activity_reports_merge_across_benchmarks() {
    let mut merged = sigcomp::ActivityReport::default();
    let mut per_benchmark_total = 0u64;
    for benchmark in suite(WorkloadSize::Tiny).iter().take(3) {
        let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
        benchmark.run_each(|rec| analyzer.observe(rec)).unwrap();
        let report = analyzer.report();
        per_benchmark_total += report.total().baseline_bits;
        merged.merge(&report);
    }
    assert_eq!(merged.total().baseline_bits, per_benchmark_total);
}

#[test]
fn process_node_presets_shift_a_real_sweep_frontier() {
    // The paper's primary slice, evaluated under every process-node preset.
    // Dynamic switching activity is organization-independent, so the
    // dynamic-only frontier keeps only the fastest compressed organization;
    // a leaky node credits the full-width compressed machine its mostly
    // gated-off lanes, pulling it onto the frontier even at a higher CPI.
    let spec = SweepSpec::paper(WorkloadSize::Tiny);
    let summary = run_sweep(&spec, &SweepOptions::with_workers(4));
    let points = config_points(&summary.outcomes);

    let labels = |node: ProcessNode| -> Vec<String> {
        pareto_frontier(&points, &node.model())
            .iter()
            .map(ConfigPoint::label)
            .collect()
    };
    let paper = labels(ProcessNode::Paper180nm);
    let modern = labels(ProcessNode::Modern7nm);
    assert_ne!(
        paper, modern,
        "a leakage-heavy node must change which configurations are Pareto-optimal"
    );
    assert!(
        !paper.iter().any(|l| l.contains("/compressed/")),
        "dynamic-only: the compressed organization is dominated: {paper:?}"
    );
    assert!(
        modern.iter().any(|l| l.contains("/compressed/")),
        "modern-7nm: gated wide lanes must pull the compressed organization \
         onto the frontier: {modern:?}"
    );

    // The dynamic term itself is untouched by any preset.
    for point in &points {
        let dynamic_only = point.energy_saving(&ProcessNode::Paper180nm.model());
        for &node in ProcessNode::ALL {
            assert_eq!(
                point.dynamic_energy_saving(&node.model()),
                dynamic_only,
                "{}: leakage weights disturbed the dynamic term",
                point.label()
            );
        }
    }

    // Zero-leakage exports are bit-identical to the pre-leakage format, and
    // the leaky presets only append columns.
    let default_csv = to_csv(&summary.outcomes, &EnergyModel::default());
    assert_eq!(
        default_csv,
        to_csv(&summary.outcomes, &ProcessNode::Paper180nm.model())
    );
    assert!(!default_csv.contains("total_energy_saving"));
    let default_json = to_json(&summary.outcomes, &EnergyModel::default());
    assert_eq!(
        default_json,
        to_json(&summary.outcomes, &ProcessNode::Paper180nm.model())
    );
    assert!(to_csv(&summary.outcomes, &ProcessNode::Modern7nm.model())
        .lines()
        .next()
        .unwrap()
        .ends_with("total_energy_saving,leakage_saving"));
}

#[test]
fn deterministic_end_to_end() {
    let benchmark = &suite(WorkloadSize::Tiny)[2];
    let run = || {
        let mut sim = sigcomp_pipeline::PipelineSim::new(sigcomp_pipeline::Organization::new(
            OrgKind::SemiParallel,
        ));
        benchmark.run_each(|rec| sim.observe(rec)).unwrap();
        sim.finish()
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.stalls, b.stalls);
}
