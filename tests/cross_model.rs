//! Cross-model consistency checks: the analytic models, the trace-driven
//! activity models and the cycle-level timing models must agree wherever
//! they overlap.

use sigcomp::alu;
use sigcomp::ext::{sig_mask, significant_bytes, ExtScheme};
use sigcomp::pc::{pc_update_analytic, PcActivity};
use sigcomp::{EnergyModel, ProcessNode};
use sigcomp_explore::{simulate_job, simulate_trace, JobSpec, MemProfile, TraceSource};
use sigcomp_isa::{reg, Interpreter, ProgramBuilder, TraceReader, TraceWriter};
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim, Stage};
use sigcomp_workloads::{suite, WorkloadSize};

#[test]
fn alu_results_always_match_the_architectural_interpreter() {
    // Every add executed by a kernel must produce the same result through the
    // significance-aware ALU as through the interpreter's plain arithmetic.
    let benchmark = &suite(WorkloadSize::Tiny)[3];
    let mut checked = 0u64;
    benchmark
        .run_each(|rec| {
            use sigcomp_isa::Op;
            if rec.instr.op == Op::Addu {
                let (a, b) = (rec.rs_value.unwrap(), rec.rt_value.unwrap());
                let outcome = alu::add(a, b, ExtScheme::ThreeBit);
                if let Some(expected) = rec.result_value() {
                    assert_eq!(outcome.result, expected);
                }
                checked += 1;
            }
        })
        .expect("kernel runs");
    assert!(checked > 10);
}

#[test]
fn alu_activity_never_understates_the_result_significance() {
    // If the compressed ALU skipped a byte, that byte must really be a sign
    // extension in the result — otherwise the machine would be incorrect.
    for (a, b) in (0..2000u32).map(|i| {
        (
            i.wrapping_mul(2_654_435_761),
            i.wrapping_mul(0x9e37_79b9).rotate_left(7),
        )
    }) {
        let outcome = alu::add(a, b, ExtScheme::ThreeBit);
        let result_mask = sig_mask(outcome.result, ExtScheme::ThreeBit);
        let a_mask = sig_mask(a, ExtScheme::ThreeBit);
        let b_mask = sig_mask(b, ExtScheme::ThreeBit);
        for i in 0..4 {
            if result_mask[i] {
                // A significant result byte is only possible if the ALU
                // actually worked on that byte position (cases 1/2) or the
                // case-3 exception fired — both of which count activity.
                let operated = a_mask[i] || b_mask[i] || outcome.bytes_operated as usize > i;
                assert!(operated, "a={a:#x} b={b:#x} byte {i}");
            }
        }
    }
}

#[test]
fn pc_simulation_converges_to_the_analytic_model() {
    for block_bits in [4u32, 8, 16] {
        let analytic = pc_update_analytic(block_bits);
        let mut sim = PcActivity::new(block_bits);
        let mut pc = 0x0040_0000u32;
        for _ in 0..100_000 {
            sim.observe(pc);
            pc = pc.wrapping_add(4);
        }
        let measured = sim.mean_blocks_per_update();
        assert!(
            (measured - analytic.latency_cycles).abs() < 0.02,
            "block {block_bits}: measured {measured} vs analytic {}",
            analytic.latency_cycles
        );
    }
}

#[test]
fn significant_bytes_is_monotone_across_schemes() {
    // The three-bit scheme never stores more bytes than the two-bit scheme,
    // and the halfword scheme is always an even number of bytes.
    for v in (0..50_000u32).map(|i| i.wrapping_mul(0x85eb_ca6b)) {
        let three = significant_bytes(v, ExtScheme::ThreeBit);
        let two = significant_bytes(v, ExtScheme::TwoBit);
        let half = significant_bytes(v, ExtScheme::Halfword);
        assert!(three <= two);
        assert!(half == 2 || half == 4);
        assert!(u32::from(half) * 8 >= u32::from(three) * 8 - 8);
    }
}

#[test]
fn pipeline_cycle_counts_are_at_least_the_ideal_lower_bound() {
    // A pipeline can never beat one instruction per cycle plus its own
    // occupancy in the bottleneck stage.
    let mut b = ProgramBuilder::new();
    b.li(reg::T0, 0);
    b.li(reg::T1, 300);
    b.label("loop");
    b.addiu(reg::T0, reg::T0, 1);
    b.bne(reg::T0, reg::T1, "loop");
    b.halt();
    let trace = Interpreter::new(&b.assemble().unwrap())
        .run(10_000)
        .unwrap();

    for &kind in OrgKind::ALL {
        let result = PipelineSim::new(Organization::new(kind)).run(trace.iter());
        assert!(
            result.cycles >= result.instructions,
            "{}: {} cycles for {} instructions",
            result.organization,
            result.cycles,
            result.instructions
        );
    }
}

#[test]
fn recorded_then_replayed_traces_time_and_count_identically_to_live_runs() {
    // The trace-ingestion headline guarantee: for every extension scheme and
    // every pipeline organization, replaying a `.sctrace` recording of a
    // kernel produces bit-identical per-stage activity and timing counters
    // to the live interpreter run that was recorded. The round trip goes all
    // the way through the on-disk bytes, not just the in-memory encoder.
    for benchmark in &suite(WorkloadSize::Tiny)[..3] {
        let mut writer = TraceWriter::new();
        benchmark
            .run_each(|rec| writer.push(rec).expect("records encode"))
            .expect("kernel runs");
        let mut bytes = Vec::new();
        writer.finish(&mut bytes).expect("trace serializes");
        let replayed = sigcomp_isa::tracefile::collect_records(
            TraceReader::new(std::io::Cursor::new(&bytes)).expect("header parses"),
        )
        .expect("payload parses");

        for &scheme in ExtScheme::ALL {
            for &org in OrgKind::ALL {
                let live_spec = JobSpec {
                    scheme,
                    org,
                    workload: benchmark.name(),
                    size: WorkloadSize::Tiny,
                    mem: MemProfile::Paper,
                    source: TraceSource::Kernel,
                };
                let mut replay_spec = live_spec;
                replay_spec.source = TraceSource::File {
                    digest: writer.digest(),
                };
                let live = simulate_job(&live_spec, benchmark);
                let replay = simulate_trace(&replay_spec, &replayed);
                assert_eq!(
                    live,
                    replay,
                    "{}/{}/{}: replay diverged from the live run",
                    benchmark.name(),
                    scheme.id(),
                    org.id()
                );
            }
        }
    }
}

#[test]
fn zero_leakage_preset_reproduces_the_dynamic_only_figures_bit_for_bit() {
    // The invariant that keeps the leakage refactor honest: the energy model
    // is post-processing, so (1) simulation output is identical no matter
    // which preset will read it, and (2) the zero-leakage preset's figures
    // are bit-identical to the pre-leakage dynamic-only model — which is
    // what pins the golden corpus (its expected JSON embeds these integer
    // counters and job ids) to its pre-leakage bytes.
    let benchmark = &suite(WorkloadSize::Tiny)[0];
    for &org in OrgKind::ALL {
        let spec = JobSpec {
            scheme: ExtScheme::ThreeBit,
            org,
            workload: benchmark.name(),
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: TraceSource::Kernel,
        };
        let metrics = simulate_job(&spec, benchmark);
        assert_eq!(metrics, simulate_job(&spec, benchmark));

        let paper = ProcessNode::Paper180nm.model();
        assert_eq!(paper, EnergyModel::default());
        assert!(!paper.has_leakage());
        assert_eq!(
            paper.saving(&metrics.activity),
            EnergyModel::default().saving(&metrics.activity),
            "{org:?}"
        );
        for &node in ProcessNode::ALL {
            assert_eq!(
                node.model().dynamic_saving(&metrics.activity),
                paper.saving(&metrics.activity),
                "{org:?}/{node}: a leakage preset disturbed the dynamic term"
            );
        }
    }
}

#[test]
fn sweep_metrics_carry_organization_dependent_gated_occupancy() {
    // The sweep path weighs leakage with the timed pipeline's lane budgets:
    // the 32-bit baseline can never gate a datapath lane, the byte-serial
    // machine has almost nothing to gate (one busy narrow lane), and the
    // full-width compressed machine gates most of its budget on narrow data.
    let benchmark = &suite(WorkloadSize::Tiny)[0];
    let metrics_for = |org: OrgKind| {
        let spec = JobSpec {
            scheme: ExtScheme::ThreeBit,
            org,
            workload: benchmark.name(),
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: TraceSource::Kernel,
        };
        simulate_job(&spec, benchmark)
    };
    let datapath_gating = |m: &sigcomp_explore::JobMetrics| {
        let a = &m.activity;
        let gated: u64 = [a.fetch, a.rf_read, a.rf_write, a.alu, a.dcache_data]
            .iter()
            .map(|s| s.gated_byte_cycles)
            .sum();
        let total: u64 = [a.fetch, a.rf_read, a.rf_write, a.alu, a.dcache_data]
            .iter()
            .map(|s| s.total_byte_cycles)
            .sum();
        (gated, total)
    };

    let (baseline_gated, baseline_total) = datapath_gating(&metrics_for(OrgKind::Baseline32));
    assert_eq!(baseline_gated, 0, "the baseline has no extension bits");
    assert!(baseline_total > 0);

    let (serial_gated, serial_total) = datapath_gating(&metrics_for(OrgKind::ByteSerial));
    let (wide_gated, wide_total) = datapath_gating(&metrics_for(OrgKind::ParallelCompressed));
    assert!(serial_total > 0 && wide_total > 0);
    let serial_fraction = serial_gated as f64 / serial_total as f64;
    let wide_fraction = wide_gated as f64 / wide_total as f64;
    assert!(
        wide_fraction > serial_fraction,
        "wide lanes must gate a larger fraction: serial {serial_fraction:.3} \
         vs compressed {wide_fraction:.3}"
    );
    // And the leaky presets turn exactly that difference into energy:
    let modern = ProcessNode::Modern7nm.model();
    assert!(
        modern.leakage_saving(&metrics_for(OrgKind::ParallelCompressed).activity)
            > modern.leakage_saving(&metrics_for(OrgKind::ByteSerial).activity)
    );
}

#[test]
fn deeper_pipelines_have_more_stages_than_the_baseline() {
    let baseline = Organization::new(OrgKind::Baseline32);
    let skewed = Organization::new(OrgKind::ParallelSkewed);
    assert_eq!(baseline.depth(), 5);
    assert_eq!(skewed.depth(), 7);
    assert!(skewed.stage_index(Stage::MemoryHi).is_some());
    assert!(baseline.stage_index(Stage::MemoryHi).is_none());
}

#[test]
fn baseline_timing_is_insensitive_to_operand_values() {
    // The 32-bit baseline processes full words regardless of significance, so
    // two traces that differ only in data values must time identically.
    let build = |scale: i32| {
        let mut b = ProgramBuilder::new();
        b.li(reg::T0, 0);
        b.li(reg::T1, 200);
        b.li(reg::T2, 0);
        b.label("loop");
        b.addiu(reg::T2, reg::T2, scale as i16);
        b.addu(reg::T3, reg::T2, reg::T2);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(10_000)
            .unwrap()
    };
    let narrow = build(1);
    let wide = build(163);
    let narrow_result = PipelineSim::new(Organization::new(OrgKind::Baseline32)).run(narrow.iter());
    let wide_result = PipelineSim::new(Organization::new(OrgKind::Baseline32)).run(wide.iter());
    assert_eq!(narrow_result.cycles, wide_result.cycles);

    // The byte-serial machine, by contrast, must slow down on the wide data.
    let narrow_bs = PipelineSim::new(Organization::new(OrgKind::ByteSerial)).run(narrow.iter());
    let wide_bs = PipelineSim::new(Organization::new(OrgKind::ByteSerial)).run(wide.iter());
    assert!(wide_bs.cycles > narrow_bs.cycles);
}
