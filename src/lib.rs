//! Umbrella crate for the sigcomp workspace.
//!
//! This crate exists to host the cross-crate integration tests (`tests/`)
//! and the runnable examples (`examples/`); the actual functionality lives
//! in the member crates, re-exported here for convenience:
//!
//! * [`sigcomp`] — activity/energy models of the paper's §2,
//! * [`sigcomp_isa`] — the MIPS-like ISA, assembler and interpreter,
//! * [`sigcomp_mem`] — caches and TLBs (§3),
//! * [`sigcomp_pipeline`] — cycle-level timing models (§4–§6),
//! * [`sigcomp_workloads`] — Mediabench-style kernels and trace synthesis,
//! * [`sigcomp_bench`] — the table/figure reproduction harness,
//! * [`sigcomp_explore`] — parallel design-space exploration.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub use sigcomp;
pub use sigcomp_bench;
pub use sigcomp_explore;
pub use sigcomp_isa;
pub use sigcomp_mem;
pub use sigcomp_pipeline;
pub use sigcomp_workloads;
