//! Load generator for the serving front-end: spins up an in-process
//! `sigcomp-serve` server on an ephemeral port, fires many concurrent
//! clients at `POST /simulate` with heavily overlapping configurations, and
//! then reads `GET /metrics` to show the batching scheduler coalescing the
//! overlap — thousands of requests, a handful of simulations.
//!
//! ```sh
//! cargo run --release --example load_gen
//! ```

use sigcomp_obs::{Histogram, DEFAULT_SPAN_BOUNDS_US};
use sigcomp_pipeline::OrgKind;
use sigcomp_serve::{BatchConfig, Json, ServeConfig, Server};
use sigcomp_workloads::suite_names;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 25;
/// How many times a `503`-shed request is retried (after honoring the
/// server's `Retry-After`) before the load generator gives up on it.
const SHED_RETRIES: u32 = 5;

/// One request, read to connection close: status, headers (lowercased
/// names), body.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: load-gen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    (status, headers, body.to_owned())
}

/// Tallies of every response class the clients saw. The generator's exit
/// code is derived from these: any request that never reached `200` makes
/// the whole run fail.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    /// `503` sheds that were retried (after the advertised `Retry-After`).
    shed: AtomicU64,
    /// Responses that ended a request without a `200`: any `5xx` other
    /// than a shed, a `4xx`, a malformed response, or a shed that stayed
    /// `503` through every retry.
    failed: AtomicU64,
}

fn main() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 64,
            queue_capacity: 512,
            sim_workers: None, // all cores
            ..BatchConfig::default()
        },
        finished_tickets: 0,
    })
    .expect("bind")
    .spawn();
    let addr = server.addr();
    println!("serving on http://{addr}");

    // The request mix: every workload in the suite under three
    // organizations at the tiny size — 33 distinct configurations that
    // CLIENTS × REQUESTS_PER_CLIENT = 400 requests keep revisiting.
    let orgs = [
        OrgKind::Baseline32,
        OrgKind::ByteSerial,
        OrgKind::SemiParallel,
    ];
    let mix: Vec<String> = suite_names()
        .iter()
        .flat_map(|workload| {
            orgs.iter().map(move |org| {
                format!(
                    "{{\"workload\": \"{workload}\", \"size\": \"tiny\", \"org\": \"{}\"}}",
                    org.id()
                )
            })
        })
        .collect();

    // Client-observed end-to-end latency, all clients into one histogram —
    // the same shared-handle pattern the server uses internally, so the
    // quantiles below come from the same bucket math as `/metrics`.
    let latency = Histogram::new(DEFAULT_SPAN_BOUNDS_US);
    let outcomes = Outcomes::default();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let mix = &mix;
            let latency = &latency;
            let outcomes = &outcomes;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    // Each client walks the mix from a different offset so
                    // in-flight batches overlap across clients.
                    let body = &mix[(client * 7 + i) % mix.len()];
                    let sent = Instant::now();
                    let mut attempts = 0;
                    loop {
                        let (status, headers, payload) = http(addr, "POST", "/simulate", body);
                        if status == 503 && attempts < SHED_RETRIES {
                            // Shed under load: honor the server's
                            // Retry-After and try again.
                            attempts += 1;
                            outcomes.shed.fetch_add(1, Ordering::Relaxed);
                            let wait = headers
                                .iter()
                                .find(|(name, _)| name == "retry-after")
                                .and_then(|(_, value)| value.parse().ok())
                                .unwrap_or(1u64);
                            std::thread::sleep(Duration::from_secs(wait));
                            continue;
                        }
                        if status == 200 {
                            outcomes.ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            outcomes.failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "request failed: {status} for {body}: {}",
                                payload.lines().next().unwrap_or_default()
                            );
                        }
                        break;
                    }
                    latency.observe(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
            });
        }
    });
    let wall = started.elapsed();

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "{total} requests from {CLIENTS} clients in {:.2} s ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );
    let (ok, shed, failed) = (
        outcomes.ok.load(Ordering::Relaxed),
        outcomes.shed.load(Ordering::Relaxed),
        outcomes.failed.load(Ordering::Relaxed),
    );
    println!("responses: {ok} ok, {shed} shed-then-retried (503), {failed} failed");
    let snap = latency.snapshot();
    println!(
        "client latency: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us (min {} us, max {} us)",
        snap.quantile(0.50),
        snap.quantile(0.95),
        snap.quantile(0.99),
        snap.min,
        snap.max
    );

    let (status, _, metrics_body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = Json::parse(&metrics_body).expect("metrics JSON parses");
    let batch = metrics.get("batch").expect("batch section");
    // Strict decode: a missing or non-exact counter fails with the decoder's
    // named reason instead of silently reading as 0 and faking a perfect
    // dedup factor.
    let field = |name: &str| {
        batch
            .get(name)
            .unwrap_or_else(|| panic!("metrics counter '{name}' is missing"))
            .to_u64()
            .unwrap_or_else(|e| panic!("metrics counter '{name}' {e}"))
    };
    let requested = field("jobs_requested");
    let simulated = field("jobs_simulated");
    println!(
        "batching: {requested} jobs requested -> {simulated} simulated \
         ({} memo hits, {} coalesced in-batch, largest batch {})",
        field("jobs_memo_hits"),
        field("jobs_batch_deduped"),
        field("largest_batch"),
    );
    assert!(
        simulated <= mix.len() as u64,
        "must not simulate more than the distinct configurations"
    );
    println!(
        "deduplication factor: {:.1}x ({} distinct configurations in the mix)",
        requested as f64 / simulated.max(1) as f64,
        mix.len()
    );
    server.shutdown();
    if failed > 0 {
        eprintln!("load_gen: {failed} of {total} requests failed");
        std::process::exit(1);
    }
}
