//! Load generator for the serving front-end, in two modes.
//!
//! **Closed-loop (default):** spins up an in-process `sigcomp-serve` server
//! on an ephemeral port, fires many concurrent clients at `POST /simulate`
//! with heavily overlapping configurations, and then reads `GET /metrics`
//! to show the batching scheduler coalescing the overlap — hundreds of
//! requests, a handful of simulations.
//!
//! ```sh
//! cargo run --release --example load_gen
//! ```
//!
//! **Open-loop (`--mode open`):** drives a *live* server at a target
//! request rate, the way real saturation measurements are taken. Requests
//! are scheduled on a fixed timetable (request *i* fires at `t0 + i/rate`)
//! and latency is measured from the **intended** start, so a slow server
//! cannot hide queueing delay by slowing the generator down (no
//! coordinated omission). Each client holds one keep-alive connection
//! (`--keep-alive`, via the fabric's pooling client) or redials per request.
//!
//! ```sh
//! repro serve --addr 127.0.0.1:8099 &
//! cargo run --release --example load_gen -- --mode open \
//!     --addr 127.0.0.1:8099 --clients 8 --rate 2000 --duration-s 5 \
//!     --keep-alive --p99-budget-ms 250
//! ```
//!
//! The open-loop run exits nonzero if any request fails or the observed
//! p99 exceeds the budget — which is what lets CI use it as a latency gate.

use sigcomp_fabric::HttpClient;
use sigcomp_obs::{Histogram, DEFAULT_SPAN_BOUNDS_US};
use sigcomp_pipeline::OrgKind;
use sigcomp_serve::{BatchConfig, Json, ServeConfig, Server};
use sigcomp_workloads::suite_names;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 25;
/// How many times a `503`-shed request is retried (after honoring the
/// server's `Retry-After`) before the load generator gives up on it.
const SHED_RETRIES: u32 = 5;

/// One request on a fresh connection, read to connection close: status,
/// headers (lowercased names), body.
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: load-gen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    (status, headers, body.to_owned())
}

/// Tallies of every response class the clients saw. The generator's exit
/// code is derived from these: any request that never reached `200` makes
/// the whole run fail.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    /// `503` sheds that were retried (after the advertised `Retry-After`).
    shed: AtomicU64,
    /// Responses that ended a request without a `200`: any `5xx` other
    /// than a shed, a `4xx`, a malformed response, or a shed that stayed
    /// `503` through every retry.
    failed: AtomicU64,
}

/// Open-loop parameters, parsed from the command line.
struct OpenArgs {
    addr: String,
    clients: usize,
    rate: f64,
    duration: Duration,
    keep_alive: bool,
    p99_budget: Option<Duration>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "closed".to_owned();
    let mut open = OpenArgs {
        addr: String::new(),
        clients: 8,
        rate: 500.0,
        duration: Duration::from_secs(5),
        keep_alive: false,
        p99_budget: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("load_gen: {name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--mode" => mode = value("--mode"),
            "--addr" => open.addr = value("--addr"),
            "--clients" => open.clients = value("--clients").parse().expect("--clients"),
            "--rate" => open.rate = value("--rate").parse().expect("--rate"),
            "--duration-s" => {
                open.duration =
                    Duration::from_secs_f64(value("--duration-s").parse().expect("--duration-s"));
            }
            "--keep-alive" => open.keep_alive = true,
            "--p99-budget-ms" => {
                open.p99_budget = Some(Duration::from_millis(
                    value("--p99-budget-ms").parse().expect("--p99-budget-ms"),
                ));
            }
            other => {
                eprintln!("load_gen: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    match mode.as_str() {
        "closed" => closed_loop(),
        "open" => open_loop(&open),
        other => {
            eprintln!("load_gen: unknown --mode {other} (closed | open)");
            std::process::exit(2);
        }
    }
}

/// The open-loop driver against a live server.
fn open_loop(args: &OpenArgs) {
    if args.addr.is_empty() {
        eprintln!("load_gen: --mode open needs --addr host:port");
        std::process::exit(2);
    }
    let sock: SocketAddr = args
        .addr
        .to_socket_addrs()
        .expect("resolve --addr")
        .next()
        .expect("--addr resolves");
    let total = (args.rate * args.duration.as_secs_f64()).round().max(1.0) as usize;
    let clients = args.clients.max(1);
    println!(
        "open-loop: {total} requests at {:.0} req/s over {:.1} s, {clients} client(s), keep-alive {}",
        args.rate,
        args.duration.as_secs_f64(),
        if args.keep_alive { "on" } else { "off" },
    );

    // Warm the memo so the measured requests exercise the steady-state
    // serving path, not the first simulation.
    let body = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";
    let warm = HttpClient::new(Duration::from_mins(1));
    let warm_status = warm
        .post(&args.addr, "/simulate", body)
        .map(|r| r.status)
        .expect("warm-up /simulate");
    assert_eq!(warm_status, 200, "warm-up request must succeed");

    let latency = Histogram::new(DEFAULT_SPAN_BOUNDS_US);
    let outcomes = Outcomes::default();
    let t0 = Instant::now() + Duration::from_millis(50);
    std::thread::scope(|scope| {
        for client in 0..clients {
            let latency = &latency;
            let outcomes = &outcomes;
            let args = &args;
            scope.spawn(move || {
                // Each client shares one pooled keep-alive connection for
                // its whole run via the fabric client.
                let ka = HttpClient::new(Duration::from_mins(1));
                // Requests are striped across clients; each fires on the
                // global timetable regardless of how long the last one took.
                for i in (client..total).step_by(clients) {
                    let intended = t0 + Duration::from_secs_f64(i as f64 / args.rate);
                    let now = Instant::now();
                    if intended > now {
                        std::thread::sleep(intended - now);
                    }
                    let status = if args.keep_alive {
                        ka.post(&args.addr, "/simulate", body)
                            .map_or(0, |r| r.status)
                    } else {
                        http(sock, "POST", "/simulate", body).0
                    };
                    // Intended-start latency: queueing delay from falling
                    // behind the timetable counts against the server.
                    let waited = intended.elapsed();
                    latency.observe(waited.as_micros().min(u128::from(u64::MAX)) as u64);
                    if status == 200 {
                        outcomes.ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        outcomes.failed.fetch_add(1, Ordering::Relaxed);
                        eprintln!("request {i} failed with status {status}");
                    }
                }
            });
        }
    });

    let (ok, failed) = (
        outcomes.ok.load(Ordering::Relaxed),
        outcomes.failed.load(Ordering::Relaxed),
    );
    let snap = latency.snapshot();
    let p99_us = snap.quantile(0.99);
    println!("responses: {ok} ok, {failed} failed");
    println!(
        "intended-start latency: p50 {:.0} us, p95 {:.0} us, p99 {p99_us:.0} us (max {} us)",
        snap.quantile(0.50),
        snap.quantile(0.95),
        snap.max
    );
    if failed > 0 {
        eprintln!("load_gen: {failed} of {total} requests failed");
        std::process::exit(1);
    }
    if let Some(budget) = args.p99_budget {
        let budget_us = budget.as_micros() as f64;
        if p99_us > budget_us {
            eprintln!("load_gen: p99 {p99_us:.0} us exceeds the {budget_us:.0} us budget");
            std::process::exit(1);
        }
        println!("p99 within budget ({p99_us:.0} us <= {budget_us:.0} us)");
    }
}

/// The original closed-loop in-process demo (and smoke test).
fn closed_loop() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        batch: BatchConfig {
            max_batch: 64,
            queue_capacity: 512,
            sim_workers: None, // all cores
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = server.addr();
    println!("serving on http://{addr}");

    // The request mix: every workload in the suite under three
    // organizations at the tiny size — 33 distinct configurations that
    // CLIENTS × REQUESTS_PER_CLIENT = 400 requests keep revisiting.
    let orgs = [
        OrgKind::Baseline32,
        OrgKind::ByteSerial,
        OrgKind::SemiParallel,
    ];
    let mix: Vec<String> = suite_names()
        .iter()
        .flat_map(|workload| {
            orgs.iter().map(move |org| {
                format!(
                    "{{\"workload\": \"{workload}\", \"size\": \"tiny\", \"org\": \"{}\"}}",
                    org.id()
                )
            })
        })
        .collect();

    // Client-observed end-to-end latency, all clients into one histogram —
    // the same shared-handle pattern the server uses internally, so the
    // quantiles below come from the same bucket math as `/metrics`.
    let latency = Histogram::new(DEFAULT_SPAN_BOUNDS_US);
    let outcomes = Outcomes::default();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let mix = &mix;
            let latency = &latency;
            let outcomes = &outcomes;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    // Each client walks the mix from a different offset so
                    // in-flight batches overlap across clients.
                    let body = &mix[(client * 7 + i) % mix.len()];
                    let sent = Instant::now();
                    let mut attempts = 0;
                    loop {
                        let (status, headers, payload) = http(addr, "POST", "/simulate", body);
                        if status == 503 && attempts < SHED_RETRIES {
                            // Shed under load: honor the server's
                            // Retry-After and try again.
                            attempts += 1;
                            outcomes.shed.fetch_add(1, Ordering::Relaxed);
                            let wait = headers
                                .iter()
                                .find(|(name, _)| name == "retry-after")
                                .and_then(|(_, value)| value.parse().ok())
                                .unwrap_or(1u64);
                            std::thread::sleep(Duration::from_secs(wait));
                            continue;
                        }
                        if status == 200 {
                            outcomes.ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            outcomes.failed.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "request failed: {status} for {body}: {}",
                                payload.lines().next().unwrap_or_default()
                            );
                        }
                        break;
                    }
                    latency.observe(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                }
            });
        }
    });
    let wall = started.elapsed();

    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!(
        "{total} requests from {CLIENTS} clients in {:.2} s ({:.0} req/s)",
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64()
    );
    let (ok, shed, failed) = (
        outcomes.ok.load(Ordering::Relaxed),
        outcomes.shed.load(Ordering::Relaxed),
        outcomes.failed.load(Ordering::Relaxed),
    );
    println!("responses: {ok} ok, {shed} shed-then-retried (503), {failed} failed");
    let snap = latency.snapshot();
    println!(
        "client latency: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us (min {} us, max {} us)",
        snap.quantile(0.50),
        snap.quantile(0.95),
        snap.quantile(0.99),
        snap.min,
        snap.max
    );

    let (status, _, metrics_body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = Json::parse(&metrics_body).expect("metrics JSON parses");
    let batch = metrics.get("batch").expect("batch section");
    // Strict decode: a missing or non-exact counter fails with the decoder's
    // named reason instead of silently reading as 0 and faking a perfect
    // dedup factor.
    let field = |name: &str| {
        batch
            .get(name)
            .unwrap_or_else(|| panic!("metrics counter '{name}' is missing"))
            .to_u64()
            .unwrap_or_else(|e| panic!("metrics counter '{name}' {e}"))
    };
    let requested = field("jobs_requested");
    let simulated = field("jobs_simulated");
    println!(
        "batching: {requested} jobs requested -> {simulated} simulated \
         ({} memo hits, {} coalesced in-batch, largest batch {})",
        field("jobs_memo_hits"),
        field("jobs_batch_deduped"),
        field("largest_batch"),
    );
    assert!(
        simulated <= mix.len() as u64,
        "must not simulate more than the distinct configurations"
    );
    println!(
        "deduplication factor: {:.1}x ({} distinct configurations in the mix)",
        requested as f64 / simulated.max(1) as f64,
        mix.len()
    );
    server.shutdown();
    if failed > 0 {
        eprintln!("load_gen: {failed} of {total} requests failed");
        std::process::exit(1);
    }
}
