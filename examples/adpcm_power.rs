//! The paper's motivating scenario end to end: run the ADPCM audio kernels
//! (the `rawcaudio`/`rawdaudio` stand-ins) through the activity study and the
//! pipeline timing models, then report the energy/performance trade-off of
//! each pipeline organization.
//!
//! Run with `cargo run --release --example adpcm_power`.

use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::EnergyModel;
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim};
use sigcomp_workloads::{kernels, WorkloadSize};

fn main() {
    let benchmarks = [
        kernels::adpcm_encode(WorkloadSize::Default),
        kernels::adpcm_decode(WorkloadSize::Default),
    ];

    for benchmark in &benchmarks {
        println!("== {} — {} ==", benchmark.name(), benchmark.description());

        // Activity study: how much switching does compression remove?
        let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
        benchmark
            .run_each(|rec| analyzer.observe(rec))
            .expect("kernel runs");
        let report = analyzer.report();
        print!("{report}");
        let energy = EnergyModel::default();
        println!(
            "overall activity (≈ dynamic energy) saving: {:.1} %",
            energy.saving(&report) * 100.0
        );

        // Timing study: what does each organization cost in CPI?
        println!("{:<34} {:>8} {:>14}", "organization", "CPI", "vs baseline");
        let mut baseline_cpi = None;
        for &kind in OrgKind::ALL {
            let mut sim = PipelineSim::new(Organization::new(kind));
            benchmark
                .run_each(|rec| sim.observe(rec))
                .expect("kernel runs");
            let result = sim.finish();
            let cpi = result.cpi();
            let baseline = *baseline_cpi.get_or_insert(cpi);
            println!(
                "{:<34} {:>8.3} {:>+13.1}%",
                result.organization,
                cpi,
                (cpi / baseline - 1.0) * 100.0
            );
        }
        println!();
    }
}
