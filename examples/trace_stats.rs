//! Reproduce the paper's workload-characterization tables (Tables 1 and 3)
//! for a single kernel, and compare the kernel-derived statistics with the
//! calibrated synthetic trace generator.
//!
//! Run with `cargo run --example trace_stats`.

use sigcomp::SigStats;
use sigcomp_isa::IsaError;

fn main() -> Result<(), IsaError> {
    // The workloads crate is a sibling of the core crate; the example uses
    // only the core statistics API so it can run on any trace source. Here we
    // build a small in-line kernel that mixes narrow data with wide addresses.
    use sigcomp_isa::{reg, Interpreter, ProgramBuilder};

    let mut b = ProgramBuilder::new();
    b.dlabel("samples");
    for i in 0..512i32 {
        b.half(((i * 37) % 1000 - 500) as i16);
    }
    b.la(reg::A0, "samples");
    b.li(reg::T0, 0);
    b.li(reg::T1, 512);
    b.li(reg::V0, 0);
    b.label("loop");
    b.lh(reg::T2, reg::A0, 0);
    b.bltz(reg::T2, "neg");
    b.addu(reg::V0, reg::V0, reg::T2);
    b.b("next");
    b.label("neg");
    b.subu(reg::V0, reg::V0, reg::T2);
    b.label("next");
    b.addiu(reg::A0, reg::A0, 2);
    b.addiu(reg::T0, reg::T0, 1);
    b.bne(reg::T0, reg::T1, "loop");
    b.halt();

    let mut stats = SigStats::new();
    let mut cpu = Interpreter::new(&b.assemble()?);
    cpu.run_each(1_000_000, |rec| stats.observe(rec))?;

    println!("== Table 1: significant-byte patterns of operand values ==");
    println!("{:<8} {:>8} {:>10}", "pattern", "%", "cumulative");
    for row in stats.pattern_table() {
        println!(
            "{:<8} {:>8.1} {:>10.1}",
            row.pattern.notation(),
            row.percent,
            row.cumulative
        );
    }
    println!(
        "patterns expressible with 2 extension bits: {:.1} %",
        stats.prefix_pattern_coverage()
    );

    println!("\n== Table 3: dynamic function-code frequencies ==");
    for row in stats.funct_table() {
        println!(
            "{:<8} {:>8.1} {:>10.1}",
            row.op, row.percent, row.cumulative
        );
    }

    let (r, i, j) = stats.format_fractions();
    println!("\ninstruction formats: R {r:.1} %  I {i:.1} %  J {j:.1} %");
    println!(
        "immediates: {:.1} % of instructions, {:.1} % fit in 8 bits",
        stats.immediate_fraction(),
        stats.immediate_8bit_fraction()
    );
    println!(
        "instructions needing an addition: {:.1} % (paper: 70.7 %)",
        stats.addition_fraction()
    );
    Ok(())
}
