//! Design-space exploration beyond the paper's headline configurations:
//!
//! * 2-bit vs 3-bit vs halfword extension schemes (the §2.1 trade-off),
//! * how the funct-recode table size changes the fetched bytes (§2.3),
//! * the energy/CPI trade-off across the full scheme × organization ×
//!   memory-profile cross product, swept in parallel by `sigcomp-explore`
//!   and reduced to its Pareto frontier.
//!
//! Run with `cargo run --release --example design_space`.

use sigcomp::ext::{significant_bytes, ExtScheme};
use sigcomp::ifetch::{compress_instruction, FunctRecoder};
use sigcomp::EnergyModel;
use sigcomp_explore::{
    config_points, frontier_table, pareto_frontier, run_sweep, MemProfile, SweepOptions, SweepSpec,
};
use sigcomp_workloads::{SynthConfig, TraceSynthesizer, WorkloadSize};

fn main() {
    let synth = TraceSynthesizer::new(SynthConfig::paper(200_000));
    let trace = synth.generate();

    // ---- extension-scheme ablation -----------------------------------------
    println!("== extension-scheme ablation (register-read bytes per operand) ==");
    for &scheme in ExtScheme::ALL {
        let mut bytes = 0u64;
        let mut values = 0u64;
        for rec in &trace {
            for v in rec.source_values() {
                bytes += u64::from(significant_bytes(v, scheme));
                values += 1;
            }
        }
        println!(
            "{scheme:>9}: {:.2} bytes/operand + {} extension bits ({:.1} % read saving)",
            bytes as f64 / values as f64,
            scheme.overhead_bits(),
            (1.0 - (bytes as f64 / values as f64 * 8.0 + f64::from(scheme.overhead_bits())) / 32.0)
                * 100.0
        );
    }

    // ---- funct-recode table size -------------------------------------------
    println!("\n== fetched bytes vs funct-recode coverage ==");
    let recoder = FunctRecoder::paper_default();
    let mut fetched = 0u64;
    for rec in &trace {
        fetched += u64::from(compress_instruction(&rec.instr, &recoder).fetch_bytes);
    }
    println!(
        "paper-default recoding: {:.2} bytes/instruction (paper: ≈ 3.17)",
        fetched as f64 / trace.len() as f64
    );

    // ---- parallel sweep: energy vs CPI across the whole space ---------------
    println!("\n== energy/performance trade-off across the design space ==");
    let spec =
        SweepSpec::full(WorkloadSize::Tiny).mems(&[MemProfile::Paper, MemProfile::SlowMemory]);
    println!(
        "sweeping {} configurations on all available cores...",
        spec.len()
    );
    let summary = run_sweep(&spec, &SweepOptions::default());
    println!(
        "done on {} workers in {:.2} s ({} simulated)",
        summary.workers,
        summary.wall.as_secs_f64(),
        summary.simulated()
    );

    let model = EnergyModel::default();
    let points = config_points(&summary.outcomes);
    print!("{}", frontier_table(&points, &model));

    println!("\nPareto frontier, fastest first:");
    for p in pareto_frontier(&points, &model) {
        println!(
            "  {:<44} CPI {:>6.3}  energy saving {:>5.1} %",
            p.label(),
            p.cpi(),
            p.energy_saving(&model) * 100.0
        );
    }
}
