//! Design-space exploration beyond the paper's headline configurations:
//!
//! * 2-bit vs 3-bit vs halfword extension schemes (the §2.1 trade-off),
//! * how the funct-recode table size changes the fetched bytes (§2.3),
//! * the activity/CPI trade-off curve across all pipeline organizations on
//!   the calibrated synthetic Mediabench trace.
//!
//! Run with `cargo run --release --example design_space`.

use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::ext::{significant_bytes, ExtScheme};
use sigcomp::ifetch::{compress_instruction, FunctRecoder};
use sigcomp::EnergyModel;
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim};
use sigcomp_workloads::{SynthConfig, TraceSynthesizer};

fn main() {
    let synth = TraceSynthesizer::new(SynthConfig::paper(200_000));
    let trace = synth.generate();

    // ---- extension-scheme ablation -----------------------------------------
    println!("== extension-scheme ablation (register-read bytes per operand) ==");
    for &scheme in ExtScheme::ALL {
        let mut bytes = 0u64;
        let mut values = 0u64;
        for rec in trace.iter() {
            for v in rec.source_values() {
                bytes += u64::from(significant_bytes(v, scheme));
                values += 1;
            }
        }
        println!(
            "{scheme:>9}: {:.2} bytes/operand + {} extension bits ({:.1} % read saving)",
            bytes as f64 / values as f64,
            scheme.overhead_bits(),
            (1.0 - (bytes as f64 / values as f64 * 8.0 + f64::from(scheme.overhead_bits()))
                / 32.0)
                * 100.0
        );
    }

    // ---- funct-recode table size -------------------------------------------
    println!("\n== fetched bytes vs funct-recode coverage ==");
    let recoder = FunctRecoder::paper_default();
    let mut fetched = 0u64;
    for rec in trace.iter() {
        fetched += u64::from(compress_instruction(&rec.instr, &recoder).fetch_bytes);
    }
    println!(
        "paper-default recoding: {:.2} bytes/instruction (paper: ≈ 3.17)",
        fetched as f64 / trace.len() as f64
    );

    // ---- activity vs CPI across organizations ------------------------------
    println!("\n== energy/performance trade-off on the synthetic Mediabench trace ==");
    let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
    for rec in trace.iter() {
        analyzer.observe(rec);
    }
    let activity_saving = EnergyModel::default().saving(&analyzer.report()) * 100.0;

    println!(
        "{:<34} {:>8} {:>14} {:>18}",
        "organization", "CPI", "vs baseline", "activity saving"
    );
    let mut baseline_cpi = None;
    for &kind in OrgKind::ALL {
        let result = PipelineSim::new(Organization::new(kind)).run(trace.iter());
        let cpi = result.cpi();
        let baseline = *baseline_cpi.get_or_insert(cpi);
        let saving = if kind == OrgKind::Baseline32 {
            0.0
        } else {
            activity_saving
        };
        println!(
            "{:<34} {:>8.3} {:>+13.1}% {:>17.1}%",
            result.organization,
            cpi,
            (cpi / baseline - 1.0) * 100.0,
            saving
        );
    }
}
