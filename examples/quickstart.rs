//! Quickstart: compress some values, build and run a tiny kernel, and print
//! the per-stage activity savings significance compression delivers.
//!
//! Run with `cargo run --example quickstart`.

use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::ext::{CompressedWord, ExtScheme, SigPattern};
use sigcomp_isa::{reg, Interpreter, IsaError, ProgramBuilder};

fn main() -> Result<(), IsaError> {
    // 1. Significance compression of individual values (§2.1 of the paper).
    println!("== significance compression of individual words ==");
    for value in [4u32, 0xffff_f504, 0x1000_0009, 0xdead_beef] {
        let compressed = CompressedWord::compress(value, ExtScheme::ThreeBit);
        println!(
            "{value:#010x}: pattern {}, {} significant bytes, {} bits stored",
            SigPattern::of(value),
            compressed.stored_bytes(),
            compressed.stored_bits()
        );
        assert_eq!(compressed.decompress(), value);
    }

    // 2. Build a small kernel with the assembler: sum an array of small values.
    let mut b = ProgramBuilder::new();
    b.dlabel("array");
    for i in 0..256 {
        b.word(i % 50);
    }
    b.la(reg::A0, "array");
    b.li(reg::T0, 0); // index
    b.li(reg::T1, 256); // length
    b.li(reg::V0, 0); // sum
    b.label("loop");
    b.lw(reg::T2, reg::A0, 0);
    b.addu(reg::V0, reg::V0, reg::T2);
    b.addiu(reg::A0, reg::A0, 4);
    b.addiu(reg::T0, reg::T0, 1);
    b.bne(reg::T0, reg::T1, "loop");
    b.halt();
    let program = b.assemble()?;

    // 3. Execute it and feed the dynamic trace to the activity analyzer.
    let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
    let mut cpu = Interpreter::new(&program);
    cpu.run_each(1_000_000, |rec| analyzer.observe(rec))?;
    println!("\n== per-stage activity savings (3-bit byte scheme) ==");
    println!("executed {} instructions", analyzer.stats().instructions());
    println!("sum register $v0 = {}", cpu.reg(reg::V0));
    print!("{}", analyzer.report());
    println!(
        "average fetched bytes per instruction: {:.2}",
        analyzer.mean_fetch_bytes()
    );
    Ok(())
}
