//! # sigcomp-pipeline
//!
//! Cycle-level, trace-driven timing models for the pipeline organizations of
//! *"Very Low Power Pipelines using Significance Compression"* (MICRO-33,
//! 2000), §4–§6:
//!
//! | organization | datapath | paper result |
//! |---|---|---|
//! | [`OrgKind::Baseline32`] | conventional 32-bit, 5 stages | reference CPI |
//! | [`OrgKind::ByteSerial`] | 1-byte datapath, 3-byte fetch | CPI +79 % |
//! | [`OrgKind::HalfwordSerial`] | 2-byte datapath | CPI ≈ 1.96 |
//! | [`OrgKind::SemiParallel`] | 3/2/2/1-byte stage bandwidths | CPI +24 % |
//! | [`OrgKind::ParallelSkewed`] | 4-byte, skewed (7 stages) | ≈ baseline |
//! | [`OrgKind::ParallelCompressed`] | 4-byte, 5 stages, extra cycles for wide data | CPI +6 % |
//! | [`OrgKind::SkewedBypass`] | skewed + short-operand bypasses | CPI +2 % |
//!
//! All models share one engine ([`PipelineSim`]): an in-order pipeline with
//! no branch prediction, full bypassing, per-stage occupancies derived from
//! the significance of the actual operand values, and the paper's cache/TLB
//! hierarchy for miss penalties.
//!
//! # Example
//!
//! ```
//! use sigcomp_pipeline::{Organization, OrgKind, PipelineSim};
//! use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
//!
//! # fn main() -> Result<(), sigcomp_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! b.li(reg::T0, 0);
//! b.li(reg::T1, 500);
//! b.label("loop");
//! b.addiu(reg::T0, reg::T0, 1);
//! b.bne(reg::T0, reg::T1, "loop");
//! b.halt();
//! let trace = Interpreter::new(&b.assemble()?).run(100_000)?;
//!
//! let baseline = PipelineSim::new(Organization::new(OrgKind::Baseline32)).run(trace.iter());
//! let byte_serial = PipelineSim::new(Organization::new(OrgKind::ByteSerial)).run(trace.iter());
//! assert!(byte_serial.cpi() > baseline.cpi());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod engine;
mod organization;
mod predictor;

pub use engine::{PipelineSim, SimResult, StallBreakdown};
pub use organization::{OrgKind, Organization, Stage};
pub use predictor::BimodalPredictor;

use sigcomp_isa::Trace;

/// Simulates a stored trace on one organization with default parameters.
#[must_use]
pub fn simulate_trace(kind: OrgKind, trace: &Trace) -> SimResult {
    PipelineSim::new(Organization::new(kind)).run(trace.iter())
}

/// Simulates a stored trace on every organization (baseline first).
#[must_use]
pub fn simulate_all(trace: &Trace) -> Vec<SimResult> {
    OrgKind::ALL
        .iter()
        .map(|&kind| simulate_trace(kind, trace))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::{reg, Interpreter, ProgramBuilder};

    fn tiny_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(reg::T0, 0);
        b.li(reg::T1, 64);
        b.label("loop");
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(10_000)
            .unwrap()
    }

    #[test]
    fn simulate_all_covers_every_organization() {
        let results = simulate_all(&tiny_trace());
        assert_eq!(results.len(), OrgKind::ALL.len());
        assert_eq!(results[0].organization, "32-bit baseline");
        for r in &results {
            assert!(r.cpi() >= 1.0);
        }
    }

    #[test]
    fn simulate_trace_matches_manual_construction() {
        let trace = tiny_trace();
        let a = simulate_trace(OrgKind::ByteSerial, &trace);
        let b = PipelineSim::new(Organization::new(OrgKind::ByteSerial)).run(trace.iter());
        assert_eq!(a.cycles, b.cycles);
    }
}
