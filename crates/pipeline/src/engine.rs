//! The in-order pipeline timing engine.
//!
//! The engine is trace-driven: it consumes retired instructions (with their
//! operand values) in program order and computes, for each instruction, the
//! cycle at which it enters every stage of the chosen
//! [`Organization`](crate::Organization). Three kinds of constraints delay an
//! instruction:
//!
//! * **structural** — a stage still busy processing the previous
//!   instruction's bytes (the dominant effect in the serial organizations),
//! * **data hazards** — source operands bypassed from a producer that has not
//!   yet reached its producing stage (loads produce later than ALU results;
//!   the skewed organizations produce later than the five-stage ones),
//! * **control** — there is no branch prediction, so fetch stalls until a
//!   branch resolves in the execute stage (§3 of the paper).
//!
//! Cache and TLB misses lengthen the fetch/memory occupancy of the
//! instruction that suffers them, using the hierarchy parameters of §3.

use crate::organization::{Organization, Stage};
use crate::predictor::BimodalPredictor;
use sigcomp::cost::{instr_cost, InstrCost};
use sigcomp::FunctRecoder;
use sigcomp_isa::{ExecRecord, Op};
use sigcomp_mem::{AccessKind, HierarchyConfig, HierarchyStats, MemoryHierarchy};
use std::fmt;

/// Cycles lost to each cause, for the bottleneck study of §5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Stall cycles charged to each stage being busy with the previous
    /// instruction, indexed like the organization's stage list.
    pub structural: [u64; 7],
    /// Stall cycles waiting for source operands.
    pub data_hazard: u64,
    /// Stall cycles waiting for branch/jump resolution.
    pub control: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.structural.iter().sum::<u64>() + self.data_hazard + self.control
    }

    /// Fraction of all stall cycles charged to structural hazards in the
    /// execute stage (the paper reports 72 % for the byte-serial pipeline).
    #[must_use]
    pub fn execute_structural_fraction(&self, org: &Organization) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let ex: u64 = [Stage::Execute, Stage::ExecuteHi]
            .iter()
            .filter_map(|&s| org.stage_index(s))
            .map(|i| self.structural[i])
            .sum();
        ex as f64 / total as f64
    }
}

/// The result of simulating one trace on one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Organization name (for reports).
    pub organization: String,
    /// Retired instructions.
    pub instructions: u64,
    /// Total cycles until the last instruction left the pipeline.
    pub cycles: u64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Memory-hierarchy counters accumulated during the run.
    pub hierarchy: HierarchyStats,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions (zero when prediction is disabled — every
    /// branch then pays the full resolution stall, as in the paper).
    pub mispredictions: u64,
    /// Byte-lane-cycles each stage powered off because the extension bits
    /// marked the lanes insignificant, indexed like the organization's stage
    /// list (all zero for the 32-bit baseline, which cannot gate).
    pub gated_byte_cycles: [u64; 7],
    /// Byte-lane-cycles each stage was occupied for in total
    /// (`lane width × occupancy`, including miss penalties), indexed like
    /// the organization's stage list.
    pub total_byte_cycles: [u64; 7],
}

impl SimResult {
    /// Fraction of all stage lane-cycles that were gated off; zero when
    /// nothing was simulated (and for the baseline organization).
    #[must_use]
    pub fn gated_fraction(&self) -> f64 {
        let total: u64 = self.total_byte_cycles.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.gated_byte_cycles.iter().sum::<u64>() as f64 / total as f64
        }
    }

    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// CPI of this result relative to a baseline result (1.0 = identical,
    /// 1.79 = 79 % higher, as the paper quotes).
    #[must_use]
    pub fn relative_cpi(&self, baseline: &SimResult) -> f64 {
        if baseline.cpi() == 0.0 {
            0.0
        } else {
            self.cpi() / baseline.cpi()
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} instructions, {} cycles, CPI {:.3}",
            self.organization,
            self.instructions,
            self.cycles,
            self.cpi()
        )
    }
}

/// A streaming cycle-level simulator for one pipeline organization.
///
/// Feed retired instructions with [`PipelineSim::observe`] (directly from the
/// interpreter, a stored [`Trace`](sigcomp_isa::Trace) or the statistical
/// synthesizer) and call [`PipelineSim::finish`] for the [`SimResult`].
#[derive(Debug, Clone)]
pub struct PipelineSim {
    org: Organization,
    recoder: FunctRecoder,
    hierarchy: MemoryHierarchy,
    /// Pipeline depth, cached so the hot loop never re-asks the organization.
    depth: usize,
    /// The organization's stage list in a fixed-size array (depth ≤ 7).
    stages: [Stage; 7],
    /// Per-stage powered-lane budget, cached from the organization.
    lane_bytes: [u64; 7],
    /// Stage → pipeline-index lookup, indexed by `Stage as usize`
    /// (`usize::MAX` for stages the organization does not have).
    stage_pos: [usize; 7],
    /// Index of the (low-order) execute stage.
    ex_index: usize,
    /// Index of the (low-order) memory stage.
    mem_index: usize,
    /// Whether the organization can gate unused byte lanes.
    gates: bool,
    /// Whether stages stream bytes onward after one cycle.
    streamed: bool,
    /// Enter times of the previous instruction, per stage.
    prev_enter: [u64; 7],
    /// Busy-until times of the previous instruction, per stage.
    prev_busy: [u64; 7],
    /// Cycle at which each architectural register's latest value is available
    /// for bypass.
    reg_ready: [u64; 32],
    /// Earliest cycle the next instruction may be fetched (control hazards).
    fetch_allowed: u64,
    /// Optional branch predictor (the paper's future-work extension).
    predictor: Option<BimodalPredictor>,
    instructions: u64,
    completion: u64,
    branches: u64,
    mispredictions: u64,
    stalls: StallBreakdown,
    gated_byte_cycles: [u64; 7],
    total_byte_cycles: [u64; 7],
}

impl PipelineSim {
    /// Creates a simulator with the paper's memory-hierarchy parameters and
    /// the default function-code recoding.
    #[must_use]
    pub fn new(org: Organization) -> Self {
        Self::with_config(
            org,
            &HierarchyConfig::paper(),
            FunctRecoder::paper_default(),
        )
    }

    /// Creates a simulator with explicit hierarchy parameters and recoding.
    #[must_use]
    pub fn with_config(
        org: Organization,
        hierarchy: &HierarchyConfig,
        recoder: FunctRecoder,
    ) -> Self {
        let depth = org.depth();
        debug_assert!(depth <= 7, "the fixed stage arrays hold up to 7 stages");
        let mut stages = [Stage::Fetch; 7];
        stages[..depth].copy_from_slice(org.stages());
        let mut lane_bytes = [0u64; 7];
        let mut stage_pos = [usize::MAX; 7];
        for (i, &stage) in org.stages().iter().enumerate() {
            lane_bytes[i] = u64::from(org.lane_bytes(stage));
            stage_pos[stage as usize] = i;
        }
        PipelineSim {
            hierarchy: MemoryHierarchy::new(hierarchy),
            recoder,
            depth,
            stages,
            lane_bytes,
            stage_pos,
            ex_index: org
                .stage_index(Stage::Execute)
                .expect("every organization has an execute stage"),
            mem_index: org
                .stage_index(Stage::Memory)
                .expect("every organization has a memory stage"),
            gates: org.gates_lanes(),
            streamed: org.is_streamed(),
            prev_enter: [0; 7],
            prev_busy: [0; 7],
            reg_ready: [0; 32],
            fetch_allowed: 0,
            predictor: None,
            instructions: 0,
            completion: 0,
            branches: 0,
            mispredictions: 0,
            stalls: StallBreakdown::default(),
            gated_byte_cycles: [0; 7],
            total_byte_cycles: [0; 7],
            org,
        }
    }

    /// Enables a bimodal branch predictor with the given number of two-bit
    /// counters. The paper's machines stall every branch until it resolves
    /// (§3); enabling prediction explores the "implications of branch
    /// prediction" the paper leaves to future study: correctly predicted
    /// branches no longer stall fetch, mispredicted ones still pay the full
    /// resolution latency.
    #[must_use]
    pub fn with_branch_prediction(mut self, entries: usize) -> Self {
        self.predictor = Some(BimodalPredictor::new(entries));
        self
    }

    /// The organization being simulated.
    #[must_use]
    pub fn organization(&self) -> &Organization {
        &self.org
    }

    /// Number of instructions observed so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Feeds one retired instruction through the timing model.
    ///
    /// This is the replay hot loop: every per-record quantity comes from the
    /// attributes cached at construction and fixed-size stack arrays — no
    /// heap allocation per record.
    pub fn observe(&mut self, rec: &ExecRecord) {
        let cost = instr_cost(rec, self.org.scheme(), &self.recoder);
        self.observe_with_cost(rec, &cost);
    }

    /// [`PipelineSim::observe`] with the record's [`InstrCost`] supplied by
    /// the caller — for drivers that also feed an activity model and want to
    /// distil the record once instead of once per model. The cost must come
    /// from `instr_cost(rec, ...)` under this simulator's scheme and
    /// recoder, or the timing is meaningless.
    pub fn observe_with_cost(&mut self, rec: &ExecRecord, cost: &InstrCost) {
        let cost = *cost;
        let depth = self.depth;

        // Per-stage occupancy, including cache/TLB miss penalties.
        let imem = self.hierarchy.fetch_instruction(rec.pc);
        let mut occ = [0u64; 7];
        for (slot, &stage) in occ.iter_mut().zip(&self.stages[..depth]) {
            *slot = u64::from(self.org.occupancy(stage, &cost));
        }
        occ[0] += u64::from(imem.latency.saturating_sub(1));
        if let Some(mem) = rec.mem {
            let kind = if mem.is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let dmem = self.hierarchy.data_access(mem.addr, kind);
            occ[self.mem_index] += u64::from(dmem.latency.saturating_sub(1));
        }

        // Gated-lane occupancy: each occupied cycle powers the stage's lane
        // budget; the lanes the instruction's significant bytes don't need
        // are gated off (only in the compressed organizations — the
        // baseline has no extension bits to gate with).
        for (s, &stage_occ) in occ.iter().enumerate().take(depth) {
            let total = self.lane_bytes[s] * stage_occ;
            let used = if self.gates {
                u64::from(self.org.stage_used_bytes(self.stages[s], &cost)).min(total)
            } else {
                total
            };
            self.gated_byte_cycles[s] += total - used;
            self.total_byte_cycles[s] += total;
        }

        let ex_index = self.ex_index;
        let mut enter = [0u64; 7];
        let mut busy = [0u64; 7];

        for s in 0..depth {
            // Structural constraint: the previous instruction must have both
            // finished using the stage and vacated its output latch.
            let vacated = if s + 1 < depth {
                self.prev_enter[s + 1].max(self.prev_busy[s])
            } else {
                self.prev_busy[s]
            };

            let (flow, control_bound) = if s == 0 {
                (vacated, self.fetch_allowed)
            } else {
                // Stage-to-stage advance latency: streamed organizations
                // hand the low-order byte onward after one cycle; a
                // non-streamed one holds the instruction until the stage
                // has finished.
                let advance = if self.streamed { 1 } else { occ[s - 1] };
                (enter[s - 1] + advance, 0)
            };

            let mut hazard_bound = 0u64;
            if s == ex_index {
                let (rs, rt) = rec.instr.src_regs();
                for reg in [rs, rt].into_iter().flatten() {
                    if !reg.is_zero() {
                        hazard_bound = hazard_bound.max(self.reg_ready[usize::from(reg)]);
                    }
                }
            }

            let structural_bound = if s == 0 { 0 } else { vacated };
            let start = flow
                .max(structural_bound)
                .max(hazard_bound)
                .max(control_bound);

            // Attribute the delay beyond simple flow to its binding cause.
            if start > flow {
                let gap = start - flow;
                if start == control_bound && s == 0 {
                    self.stalls.control += gap;
                } else if start == hazard_bound && hazard_bound >= structural_bound {
                    self.stalls.data_hazard += gap;
                } else {
                    // If the previous instruction had already finished its
                    // work in this stage but could not advance, the real
                    // bottleneck is the stage ahead of it — charge that one
                    // (this is how the paper's §5 bottleneck study counts the
                    // execute stage as the dominant cause of byte-serial
                    // stalls).
                    let blame = if s + 1 < depth && self.prev_enter[s + 1] > self.prev_busy[s] {
                        s + 1
                    } else {
                        s
                    };
                    self.stalls.structural[blame] += gap;
                }
            }

            enter[s] = start;
            busy[s] = start + occ[s];
        }

        // Publish the destination register's bypass-ready time.
        if let Some(dest) = rec.instr.dest_reg() {
            let produce_stage = if rec.instr.op.is_load() {
                self.org.load_result_stage(&cost)
            } else {
                self.org.alu_result_stage(&cost)
            };
            self.reg_ready[usize::from(dest)] = busy[self.stage_pos[produce_stage as usize]];
        }

        // Control hazards. Without a predictor (the paper's configuration)
        // the next fetch waits for resolution; with one, only mispredicted
        // branches pay the resolution latency. Direct jumps resolve at
        // decode; indirect jumps always wait for the execute stage.
        if cost.is_branch {
            self.branches += 1;
            let resolve = self.org.branch_resolve_stage(&cost);
            let idx = self.stage_pos[resolve as usize];
            let correct = match self.predictor.as_mut() {
                Some(p) => p.update(rec.pc, cost.taken),
                None => false,
            };
            if !correct {
                if self.predictor.is_some() {
                    self.mispredictions += 1;
                }
                self.fetch_allowed = self.fetch_allowed.max(busy[idx]);
            }
        } else if matches!(rec.instr.op, Op::Jr | Op::Jalr) {
            let resolve = self.org.branch_resolve_stage(&cost);
            self.fetch_allowed = self
                .fetch_allowed
                .max(busy[self.stage_pos[resolve as usize]]);
        } else if cost.is_jump {
            self.fetch_allowed = self
                .fetch_allowed
                .max(busy[self.stage_pos[Stage::RegRead as usize]]);
        }

        self.completion = self.completion.max(busy[depth - 1]);
        self.prev_enter = enter;
        self.prev_busy = busy;
        self.instructions += 1;
    }

    /// Finishes the simulation and returns the result.
    #[must_use]
    pub fn finish(self) -> SimResult {
        SimResult {
            organization: self.org.name().to_owned(),
            instructions: self.instructions,
            cycles: self.completion,
            stalls: self.stalls,
            hierarchy: self.hierarchy.stats(),
            branches: self.branches,
            mispredictions: self.mispredictions,
            gated_byte_cycles: self.gated_byte_cycles,
            total_byte_cycles: self.total_byte_cycles,
        }
    }

    /// Convenience: simulates an entire iterator of records.
    #[must_use]
    pub fn run<'a, I: IntoIterator<Item = &'a ExecRecord>>(mut self, records: I) -> SimResult {
        for rec in records {
            self.observe(rec);
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organization::OrgKind;
    use sigcomp_isa::{reg, Interpreter, ProgramBuilder, Trace};

    fn counter_trace(iterations: i32) -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(reg::T0, 0);
        b.li(reg::T1, iterations);
        b.dlabel("buf");
        b.space(4096);
        b.la(reg::A0, "buf");
        b.label("loop");
        b.andi(reg::T2, reg::T0, 0x3fc);
        b.addu(reg::T3, reg::A0, reg::T2);
        b.sw(reg::T0, reg::T3, 0);
        b.lw(reg::T4, reg::T3, 0);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        let mut i = Interpreter::new(&b.assemble().unwrap());
        i.run(10_000_000).unwrap()
    }

    fn simulate(kind: OrgKind, trace: &Trace) -> SimResult {
        PipelineSim::new(Organization::new(kind)).run(trace.iter())
    }

    #[test]
    fn baseline_cpi_is_plausible() {
        let trace = counter_trace(2_000);
        let r = simulate(OrgKind::Baseline32, &trace);
        let cpi = r.cpi();
        // One instruction per cycle plus branch stalls, load-use and misses.
        assert!(cpi > 1.05 && cpi < 2.0, "baseline CPI {cpi}");
        assert_eq!(r.instructions, trace.len() as u64);
        assert!(r.cycles > r.instructions);
    }

    #[test]
    fn byte_serial_is_much_slower_than_baseline() {
        let trace = counter_trace(2_000);
        let base = simulate(OrgKind::Baseline32, &trace);
        let byte = simulate(OrgKind::ByteSerial, &trace);
        let rel = byte.relative_cpi(&base);
        assert!(
            rel > 1.3 && rel < 2.6,
            "byte-serial relative CPI {rel} (paper: ≈ 1.79)"
        );
    }

    #[test]
    fn organizations_order_as_in_the_paper() {
        let trace = counter_trace(3_000);
        let base = simulate(OrgKind::Baseline32, &trace);
        let byte = simulate(OrgKind::ByteSerial, &trace);
        let half = simulate(OrgKind::HalfwordSerial, &trace);
        let semi = simulate(OrgKind::SemiParallel, &trace);
        let compressed = simulate(OrgKind::ParallelCompressed, &trace);
        let skewed = simulate(OrgKind::ParallelSkewed, &trace);
        let bypass = simulate(OrgKind::SkewedBypass, &trace);

        // Fig. 4/6/10 ordering: byte-serial slowest, then halfword-serial,
        // then semi-parallel, then the parallel organizations near baseline.
        assert!(byte.cpi() >= half.cpi());
        assert!(half.cpi() >= semi.cpi() * 0.99);
        assert!(semi.cpi() > compressed.cpi());
        assert!(semi.cpi() > bypass.cpi());
        assert!(bypass.cpi() <= skewed.cpi() + 1e-9);
        // Everything is at least as slow as the baseline.
        for r in [&byte, &half, &semi, &compressed, &skewed, &bypass] {
            assert!(
                r.cpi() >= base.cpi() * 0.999,
                "{} CPI {} below baseline {}",
                r.organization,
                r.cpi(),
                base.cpi()
            );
        }
    }

    #[test]
    fn byte_serial_stalls_are_dominated_by_the_execute_stage() {
        let trace = counter_trace(3_000);
        let org = Organization::new(OrgKind::ByteSerial);
        let r = PipelineSim::new(org.clone()).run(trace.iter());
        let frac = r.stalls.execute_structural_fraction(&org);
        assert!(
            frac > 0.3,
            "execute-stage structural stalls should dominate, got {frac}"
        );
        assert!(r.stalls.total() > 0);
    }

    #[test]
    fn control_stalls_appear_for_branchy_code() {
        let trace = counter_trace(1_000);
        let r = simulate(OrgKind::Baseline32, &trace);
        assert!(r.stalls.control > 0);
    }

    #[test]
    fn gated_occupancy_is_reported_per_stage_for_every_organization() {
        let trace = counter_trace(2_000);
        for &kind in OrgKind::ALL {
            let org = Organization::new(kind);
            let r = PipelineSim::new(org.clone()).run(trace.iter());
            let gated: u64 = r.gated_byte_cycles.iter().sum();
            let total: u64 = r.total_byte_cycles.iter().sum();
            assert!(total > 0, "{}: no lane occupancy", r.organization);
            for s in 0..org.depth() {
                assert!(
                    r.gated_byte_cycles[s] <= r.total_byte_cycles[s],
                    "{} stage {s}: gated exceeds total",
                    r.organization
                );
                assert!(
                    r.total_byte_cycles[s] > 0,
                    "{} stage {s}: no occupancy",
                    r.organization
                );
            }
            // Stages beyond the organization's depth must stay untouched.
            for s in org.depth()..7 {
                assert_eq!(r.total_byte_cycles[s], 0, "{}", r.organization);
            }
            if kind == OrgKind::Baseline32 {
                assert_eq!(gated, 0, "the baseline cannot gate lanes");
                assert_eq!(r.gated_fraction(), 0.0);
            } else {
                assert!(
                    r.gated_fraction() > 0.05,
                    "{}: narrow counter values should gate lanes, got {}",
                    r.organization,
                    r.gated_fraction()
                );
            }
        }
    }

    #[test]
    fn serial_organizations_gate_less_than_wide_ones() {
        // A one-byte datapath reuses its single lane instead of gating
        // three; the full-width compressed organization gates the unused
        // upper lanes outright. On narrow data the wide machine must
        // therefore gate a larger fraction of its (larger) lane budget.
        let trace = counter_trace(2_000);
        let serial = PipelineSim::new(Organization::new(OrgKind::ByteSerial)).run(trace.iter());
        let wide =
            PipelineSim::new(Organization::new(OrgKind::ParallelCompressed)).run(trace.iter());
        let ex = Organization::new(OrgKind::ByteSerial)
            .stage_index(Stage::Execute)
            .unwrap();
        // The byte-serial execute stage has exactly one lane: it can never
        // gate it (the low byte is always significant).
        assert_eq!(serial.gated_byte_cycles[ex], 0);
        assert!(wide.gated_fraction() > serial.gated_fraction());
    }

    #[test]
    fn empty_simulation_reports_zero() {
        let sim = PipelineSim::new(Organization::new(OrgKind::Baseline32));
        let r = sim.finish();
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.stalls.total(), 0);
    }

    #[test]
    fn display_mentions_cpi() {
        let trace = counter_trace(200);
        let r = simulate(OrgKind::Baseline32, &trace);
        let s = r.to_string();
        assert!(s.contains("CPI"));
        assert!(s.contains("32-bit baseline"));
    }

    #[test]
    fn hierarchy_stats_are_reported() {
        let trace = counter_trace(500);
        let r = simulate(OrgKind::Baseline32, &trace);
        assert!(r.hierarchy.il1.accesses >= trace.len() as u64);
        assert!(r.hierarchy.dl1.accesses > 0);
    }
}

#[cfg(test)]
mod prediction_tests {
    use super::*;
    use crate::organization::OrgKind;
    use sigcomp_isa::{reg, Interpreter, ProgramBuilder, Trace};

    fn loop_trace() -> Trace {
        let mut b = ProgramBuilder::new();
        b.li(reg::T0, 0);
        b.li(reg::T1, 2_000);
        b.label("loop");
        b.addiu(reg::T2, reg::T0, 3);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(100_000)
            .unwrap()
    }

    #[test]
    fn branch_prediction_removes_most_control_stalls() {
        let trace = loop_trace();
        let org = Organization::new(OrgKind::Baseline32);
        let without = PipelineSim::new(org.clone()).run(trace.iter());
        let with = PipelineSim::new(org)
            .with_branch_prediction(512)
            .run(trace.iter());
        assert!(with.cycles < without.cycles);
        assert!(with.stalls.control < without.stalls.control / 2);
        // The backward loop branch is taken ~2000 times and falls through
        // once, so the bimodal predictor is nearly perfect.
        assert_eq!(with.branches, without.branches);
        assert!(with.branches > 1_000);
        assert!(with.mispredictions < with.branches / 50);
        assert_eq!(without.mispredictions, 0);
        // The predicted baseline approaches one instruction per cycle.
        assert!(with.cpi() < 1.3, "predicted baseline CPI {}", with.cpi());
    }

    #[test]
    fn prediction_also_helps_the_serial_organizations() {
        let trace = loop_trace();
        let org = Organization::new(OrgKind::ByteSerial);
        let without = PipelineSim::new(org.clone()).run(trace.iter());
        let with = PipelineSim::new(org)
            .with_branch_prediction(512)
            .run(trace.iter());
        assert!(with.cycles < without.cycles);
        // But the structural bottleneck remains: the byte-serial machine is
        // still well above one cycle per instruction even with perfect-ish
        // branch prediction.
        assert!(with.cpi() > 1.5);
    }
}
