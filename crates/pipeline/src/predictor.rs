//! Branch prediction (the paper's stated future-work item).
//!
//! §3 of the paper notes that its machines perform no branch prediction,
//! "although the trend is toward implementing branch prediction. The
//! implications of branch prediction will be the subject of future study."
//! This module provides that study: a classic two-bit bimodal predictor that
//! the timing engine can optionally consult, so the cost of the serial
//! organizations can be separated into "narrow datapath" and "branch stall"
//! components.

/// A two-bit saturating-counter (bimodal) branch predictor.
///
/// ```
/// use sigcomp_pipeline::BimodalPredictor;
/// let mut p = BimodalPredictor::new(256);
/// // A loop branch that is almost always taken trains quickly.
/// for _ in 0..8 {
///     let _ = p.predict(0x400100);
///     p.update(0x400100, true);
/// }
/// assert!(p.predict(0x400100));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    /// Two-bit counters: 0–1 predict not-taken, 2–3 predict taken.
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` two-bit counters (rounded up to a
    /// power of two), initialized to weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "predictor needs at least one entry");
        BimodalPredictor {
            counters: vec![1; entries.next_power_of_two()],
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts whether the branch at `pc` will be taken.
    #[must_use]
    pub fn predict(&self, pc: u32) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Records the actual outcome of the branch at `pc`, updating the
    /// counters and the accuracy statistics. Returns `true` if the
    /// prediction made by [`BimodalPredictor::predict`] would have been
    /// correct.
    pub fn update(&mut self, pc: u32, taken: bool) -> bool {
        let index = self.index(pc);
        let predicted = self.counters[index] >= 2;
        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }
        let counter = &mut self.counters[index];
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        predicted == taken
    }

    /// Number of branches predicted so far.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions so far.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in [0, 1] (1.0 when no branches were seen).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branches_train_to_taken() {
        let mut p = BimodalPredictor::new(64);
        for _ in 0..100 {
            p.update(0x0040_0010, true);
        }
        assert!(p.predict(0x0040_0010));
        assert!(p.accuracy() > 0.95);
    }

    #[test]
    fn alternating_branches_are_hard() {
        let mut p = BimodalPredictor::new(64);
        for i in 0..200 {
            p.update(0x0040_0020, i % 2 == 0);
        }
        assert!(p.accuracy() < 0.7);
        assert_eq!(p.predictions(), 200);
        assert!(p.mispredictions() > 0);
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = BimodalPredictor::new(1024);
        for _ in 0..10 {
            p.update(0x0040_0000, true);
            p.update(0x0040_0004, false);
        }
        assert!(p.predict(0x0040_0000));
        assert!(!p.predict(0x0040_0004));
    }

    #[test]
    fn table_size_rounds_up_to_power_of_two() {
        let p = BimodalPredictor::new(100);
        assert_eq!(p.counters.len(), 128);
        assert_eq!(p.accuracy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = BimodalPredictor::new(0);
    }
}
