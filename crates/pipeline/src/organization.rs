//! The pipeline organizations studied in §4–§6 of the paper.
//!
//! Every organization is an in-order pipeline without branch prediction; they
//! differ in how many byte-wide datapath slices each stage has and in whether
//! the stages are skewed (streamed byte by byte) or blocking.

use sigcomp::cost::InstrCost;
use sigcomp::hash::{ConfigHash, StableHasher};
use sigcomp::ExtScheme;
use std::fmt;

/// Identifies one of the studied pipeline organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// The conventional full-width 5-stage pipeline (the paper's baseline).
    Baseline32,
    /// One-byte datapath used serially (§4, Fig. 3).
    ByteSerial,
    /// Two-byte (halfword) datapath used serially (§4).
    HalfwordSerial,
    /// Three bytes of fetch, two bytes of register file and ALU, one byte of
    /// data cache (§5, Fig. 5).
    SemiParallel,
    /// Full-width datapath with skewed stages (§6, Fig. 7).
    ParallelSkewed,
    /// Full-width datapath compressed back into five stages (§6, Fig. 9).
    ParallelCompressed,
    /// The skewed pipeline with forwarding paths that let short operands skip
    /// the extra stages (§6, Fig. 10).
    SkewedBypass,
}

impl OrgKind {
    /// All organizations, baseline first.
    pub const ALL: &'static [OrgKind] = &[
        OrgKind::Baseline32,
        OrgKind::ByteSerial,
        OrgKind::HalfwordSerial,
        OrgKind::SemiParallel,
        OrgKind::ParallelSkewed,
        OrgKind::ParallelCompressed,
        OrgKind::SkewedBypass,
    ];

    /// Stable machine-readable identifier, used in sweep reports and result
    /// cache keys.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            OrgKind::Baseline32 => "baseline32",
            OrgKind::ByteSerial => "byte-serial",
            OrgKind::HalfwordSerial => "halfword-serial",
            OrgKind::SemiParallel => "semi-parallel",
            OrgKind::ParallelSkewed => "skewed",
            OrgKind::ParallelCompressed => "compressed",
            OrgKind::SkewedBypass => "skewed-bypass",
        }
    }

    /// Parses an identifier as produced by [`OrgKind::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        OrgKind::ALL.iter().copied().find(|k| k.id() == id)
    }
}

impl ConfigHash for OrgKind {
    fn config_hash(&self, hasher: &mut StableHasher) {
        hasher.write_str(self.id());
    }
}

/// The stages of the (up to) seven-deep pipelines modelled here.
///
/// Five-stage organizations use `Fetch, RegRead, Execute, Memory, Writeback`;
/// the skewed organizations add a second execute and memory stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Instruction fetch.
    Fetch,
    /// Decode and register read (low-order bytes first).
    RegRead,
    /// Execute (low-order bytes in the skewed organizations).
    Execute,
    /// Second execute stage (high-order bytes; skewed organizations only).
    ExecuteHi,
    /// Data-cache access (low-order bytes).
    Memory,
    /// Second data-cache stage (high-order bytes; skewed organizations only).
    MemoryHi,
    /// Register write-back.
    Writeback,
}

/// A pipeline organization: its stage list and per-stage datapath widths.
#[derive(Debug, Clone, PartialEq)]
pub struct Organization {
    kind: OrgKind,
    scheme: ExtScheme,
    stages: Vec<Stage>,
}

impl Organization {
    /// Builds the named organization with its paper-default parameters.
    #[must_use]
    pub fn new(kind: OrgKind) -> Self {
        let scheme = match kind {
            OrgKind::HalfwordSerial => ExtScheme::Halfword,
            _ => ExtScheme::ThreeBit,
        };
        let stages = match kind {
            OrgKind::ParallelSkewed | OrgKind::SkewedBypass => vec![
                Stage::Fetch,
                Stage::RegRead,
                Stage::Execute,
                Stage::ExecuteHi,
                Stage::Memory,
                Stage::MemoryHi,
                Stage::Writeback,
            ],
            _ => vec![
                Stage::Fetch,
                Stage::RegRead,
                Stage::Execute,
                Stage::Memory,
                Stage::Writeback,
            ],
        };
        Organization {
            kind,
            scheme,
            stages,
        }
    }

    /// Builds the named organization but with an explicit extension scheme,
    /// for design-space sweeps that cross organizations with schemes the
    /// paper did not pair them with.
    #[must_use]
    pub fn with_scheme(kind: OrgKind, scheme: ExtScheme) -> Self {
        let mut org = Self::new(kind);
        org.scheme = scheme;
        org
    }

    /// All organizations with their default parameters.
    #[must_use]
    pub fn all() -> Vec<Organization> {
        OrgKind::ALL
            .iter()
            .copied()
            .map(Organization::new)
            .collect()
    }

    /// The organization identifier.
    #[must_use]
    pub fn kind(&self) -> OrgKind {
        self.kind
    }

    /// The extension scheme the organization's datapath uses. The baseline
    /// carries extension bits nowhere, but its cost vectors are still
    /// computed under the byte scheme for comparability.
    #[must_use]
    pub fn scheme(&self) -> ExtScheme {
        self.scheme
    }

    /// Short display name used in figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self.kind {
            OrgKind::Baseline32 => "32-bit baseline",
            OrgKind::ByteSerial => "byte-serial",
            OrgKind::HalfwordSerial => "halfword-serial",
            OrgKind::SemiParallel => "byte semi-parallel",
            OrgKind::ParallelSkewed => "byte-parallel skewed",
            OrgKind::ParallelCompressed => "byte-parallel compressed",
            OrgKind::SkewedBypass => "byte-parallel skewed + bypasses",
        }
    }

    /// The ordered stage list.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of pipeline stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Index of a stage in this organization, if present.
    #[must_use]
    pub fn stage_index(&self, stage: Stage) -> Option<usize> {
        self.stages.iter().position(|&s| s == stage)
    }

    /// Whether the stages stream bytes to the next stage as they are
    /// produced: the low-order byte (plus extension bits) is handed onward
    /// after one cycle even when the stage stays busy with the remaining
    /// bytes. All of the paper's organizations work this way (§4: "while
    /// later sequential data bytes are being processed, earlier bytes can
    /// proceed up the pipeline"); the flag exists so ablation studies can
    /// turn the skew off.
    #[must_use]
    pub fn is_streamed(&self) -> bool {
        true
    }

    /// Whether this instruction counts as "short" for the bypass paths of the
    /// skewed-with-bypasses organization: every operand, result and ALU slice
    /// fits in the low-order half of the datapath, so the high-order stages
    /// have nothing to do and the instruction can skip them.
    #[must_use]
    pub fn is_short_operand(&self, cost: &InstrCost) -> bool {
        cost.max_operand_bytes() <= 2
            && cost.alu_bytes() <= 2
            && cost.result_bytes.unwrap_or(1) <= 2
            && cost.mem.is_none_or(|m| m.sig_bytes <= 2)
    }

    /// The stage at whose completion a conditional branch (or
    /// register-indirect jump) is resolved and fetch may resume.
    #[must_use]
    pub fn branch_resolve_stage(&self, cost: &InstrCost) -> Stage {
        match self.kind {
            OrgKind::ParallelSkewed => Stage::ExecuteHi,
            OrgKind::SkewedBypass => {
                if self.is_short_operand(cost) {
                    Stage::Execute
                } else {
                    Stage::ExecuteHi
                }
            }
            _ => Stage::Execute,
        }
    }

    /// The stage at whose completion an ALU result is available for bypass.
    ///
    /// In the skewed organizations the consumer is skewed the same way as the
    /// producer (it consumes low-order bytes first), so the low-order execute
    /// stage is enough to keep a dependent instruction moving — the backward
    /// bypasses the paper's §6 mentions.
    #[must_use]
    pub fn alu_result_stage(&self, _cost: &InstrCost) -> Stage {
        Stage::Execute
    }

    /// The stage at whose completion a load value is available for bypass.
    /// As with ALU results, skewed consumers pick up the low-order bytes as
    /// soon as the first memory stage delivers them.
    #[must_use]
    pub fn load_result_stage(&self, _cost: &InstrCost) -> Stage {
        Stage::Memory
    }

    /// Per-stage occupancy (in cycles) of one instruction, excluding cache
    /// miss penalties (the engine adds those from the memory hierarchy).
    ///
    /// Following the paper's description of the skewed register access
    /// (§5: the register file delivers the low-order byte and the extension
    /// bits first; further operand bytes are read while the execute stage
    /// works on the bytes already delivered), the serial and semi-parallel
    /// organizations charge the serialization of operand bytes to the execute
    /// stage: its occupancy covers both the ALU byte slices and the operand
    /// bytes it has to wait for.
    #[must_use]
    pub fn occupancy(&self, stage: Stage, cost: &InstrCost) -> u32 {
        match self.kind {
            OrgKind::Baseline32 => 1,
            OrgKind::ByteSerial => self.serial_occupancy(stage, cost, 1),
            OrgKind::HalfwordSerial => self.serial_occupancy(stage, cost, 2),
            OrgKind::SemiParallel => match stage {
                Stage::Fetch => fetch_cycles(cost, 3),
                Stage::RegRead => 1,
                Stage::Execute => div_ceil_u32(u32::from(serial_ex_bytes(cost)), 2).max(1),
                Stage::Memory => mem_cycles(cost, 1),
                Stage::Writeback => {
                    div_ceil_u32(u32::from(cost.result_bytes.unwrap_or(0)), 2).max(1)
                }
                Stage::ExecuteHi | Stage::MemoryHi => 1,
            },
            OrgKind::ParallelSkewed | OrgKind::SkewedBypass => match stage {
                Stage::Fetch => fetch_cycles(cost, 3),
                _ => 1,
            },
            OrgKind::ParallelCompressed => match stage {
                Stage::Fetch => fetch_cycles(cost, 3),
                Stage::RegRead => {
                    // The low-order bytes and the extension bits come out in
                    // the first cycle; operands that extend beyond the low
                    // halfword need one extra cycle to read the remaining
                    // bytes in parallel.
                    1 + u32::from(cost.max_operand_bytes() > 2)
                }
                Stage::Execute => 1,
                Stage::Memory => match cost.mem {
                    Some(m) if !m.is_store => 1 + u32::from(m.sig_bytes > 2),
                    _ => 1,
                },
                Stage::Writeback => 1,
                Stage::ExecuteHi | Stage::MemoryHi => 1,
            },
        }
    }

    /// Whether this organization can power-gate unused byte lanes: every
    /// compressed organization carries extension bits that mark lanes as
    /// insignificant; the 32-bit baseline has none and keeps every lane
    /// powered.
    #[must_use]
    pub fn gates_lanes(&self) -> bool {
        self.kind != OrgKind::Baseline32
    }

    /// Byte lanes the stage powers when occupied: the datapath width of the
    /// stage in this organization (the register-read stage counts both read
    /// ports). `lanes × occupancy` is the stage's powered-lane budget for
    /// one instruction; [`Organization::stage_used_bytes`] says how much of
    /// it the instruction's significant bytes actually need.
    #[must_use]
    pub fn lane_bytes(&self, stage: Stage) -> u32 {
        let (regread, execute, memory, writeback) = match self.kind {
            OrgKind::Baseline32 => (8, 4, 4, 4),
            OrgKind::ByteSerial => (2, 1, 1, 1),
            OrgKind::HalfwordSerial => (4, 2, 2, 2),
            // §5: three bytes of fetch, two bytes of register file and ALU,
            // one byte of data cache.
            OrgKind::SemiParallel => (4, 2, 1, 2),
            // Full-width datapath split into low/high halves across the
            // paired stages (§6).
            OrgKind::ParallelSkewed | OrgKind::SkewedBypass => (8, 2, 2, 4),
            OrgKind::ParallelCompressed => (8, 4, 4, 4),
        };
        match stage {
            // Three I-cache banks plus the extension bit feed every
            // compressed fetch stage (Fig. 3); the baseline fetches a word.
            Stage::Fetch => {
                if self.kind == OrgKind::Baseline32 {
                    4
                } else {
                    3
                }
            }
            Stage::RegRead => regread,
            Stage::Execute | Stage::ExecuteHi => execute,
            Stage::Memory | Stage::MemoryHi => memory,
            Stage::Writeback => writeback,
        }
    }

    /// Significant bytes one instruction streams through the stage — the
    /// lanes that must stay powered. The remainder of the stage's
    /// `lane_bytes × occupancy` budget can be gated (in the organizations
    /// where [`Organization::gates_lanes`] holds).
    #[must_use]
    pub fn stage_used_bytes(&self, stage: Stage, cost: &InstrCost) -> u32 {
        let split = matches!(self.kind, OrgKind::ParallelSkewed | OrgKind::SkewedBypass);
        let ex = u32::from(serial_ex_bytes(cost));
        let mem = cost.mem.map_or(0, |m| u32::from(m.sig_bytes));
        match stage {
            Stage::Fetch => u32::from(cost.fetch.fetch_bytes),
            Stage::RegRead => u32::from(cost.regfile_read_bytes()),
            Stage::Execute => {
                if split {
                    ex.min(2)
                } else {
                    ex
                }
            }
            Stage::ExecuteHi => ex.saturating_sub(2),
            Stage::Memory => {
                if split {
                    mem.min(2)
                } else {
                    mem
                }
            }
            Stage::MemoryHi => mem.saturating_sub(2),
            Stage::Writeback => u32::from(cost.result_bytes.unwrap_or(0)),
        }
    }

    fn serial_occupancy(&self, stage: Stage, cost: &InstrCost, width: u32) -> u32 {
        match stage {
            Stage::Fetch => fetch_cycles(cost, 3),
            Stage::RegRead => 1,
            Stage::Execute => div_ceil_u32(u32::from(serial_ex_bytes(cost)), width).max(1),
            Stage::Memory => mem_cycles(cost, width),
            Stage::Writeback => {
                div_ceil_u32(u32::from(cost.result_bytes.unwrap_or(0)), width).max(1)
            }
            Stage::ExecuteHi | Stage::MemoryHi => 1,
        }
    }
}

impl ConfigHash for Organization {
    fn config_hash(&self, hasher: &mut StableHasher) {
        self.kind.config_hash(hasher);
        self.scheme.config_hash(hasher);
    }
}

impl fmt::Display for Organization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bytes the execute stage must stream through for one instruction: the ALU
/// byte slices it operates, but never fewer than the operand bytes it has to
/// receive from the skewed register read.
fn serial_ex_bytes(cost: &InstrCost) -> u8 {
    cost.alu_bytes().max(cost.max_operand_bytes())
}

/// Cycles to fetch a compressed instruction from `banks` byte-wide I-cache
/// banks (the compressed organizations all use three banks plus the
/// extension bit, as in Fig. 3).
fn fetch_cycles(cost: &InstrCost, banks: u32) -> u32 {
    div_ceil_u32(u32::from(cost.fetch.fetch_bytes), banks).max(1)
}

/// Cycles a load/store occupies a data-cache stage `width` bytes wide.
/// Stores write all significant bytes plus the extension bits in one burst of
/// `width`-sized chunks, like loads.
fn mem_cycles(cost: &InstrCost, width: u32) -> u32 {
    match cost.mem {
        Some(m) => div_ceil_u32(u32::from(m.sig_bytes), width).max(1),
        None => 1,
    }
}

fn div_ceil_u32(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp::cost::instr_cost;
    use sigcomp::FunctRecoder;
    use sigcomp_isa::reg::{A0, T0, T1, T2};
    use sigcomp_isa::{ExecRecord, Instruction, MemAccess, Op};

    fn cost_of(instr: Instruction, rs: Option<u32>, rt: Option<u32>, wb: Option<u32>) -> InstrCost {
        let rec = ExecRecord {
            seq: 0,
            pc: 0x0040_0000,
            word: instr.encode(),
            instr,
            rs_value: rs,
            rt_value: rt,
            writeback: wb.map(|v| (T0, v)),
            mem: None,
            branch: None,
        };
        instr_cost(&rec, ExtScheme::ThreeBit, &FunctRecoder::paper_default())
    }

    fn load_cost(value: u32) -> InstrCost {
        let instr = Instruction::imm(Op::Lw, T0, A0, 0);
        let rec = ExecRecord {
            seq: 0,
            pc: 0x0040_0000,
            word: instr.encode(),
            instr,
            rs_value: Some(0x1000_0000),
            rt_value: None,
            writeback: Some((T0, value)),
            mem: Some(MemAccess {
                addr: 0x1000_0000,
                width: 4,
                is_store: false,
                value,
            }),
            branch: None,
        };
        instr_cost(&rec, ExtScheme::ThreeBit, &FunctRecoder::paper_default())
    }

    #[test]
    fn baseline_is_always_single_cycle() {
        let org = Organization::new(OrgKind::Baseline32);
        let c = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x7654_3210),
            Some(0x1234_5678u32.wrapping_add(0x7654_3210)),
        );
        for &s in org.stages() {
            assert_eq!(org.occupancy(s, &c), 1);
        }
        assert_eq!(org.depth(), 5);
    }

    #[test]
    fn byte_serial_occupancy_tracks_significant_bytes() {
        let org = Organization::new(OrgKind::ByteSerial);
        let narrow = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(5),
            Some(9),
            Some(14),
        );
        assert_eq!(org.occupancy(Stage::Fetch, &narrow), 1);
        assert_eq!(org.occupancy(Stage::RegRead, &narrow), 1);
        assert_eq!(org.occupancy(Stage::Execute, &narrow), 1);
        assert_eq!(org.occupancy(Stage::Writeback, &narrow), 1);

        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x0101_0101),
            Some(0x1335_5779),
        );
        // The register read always delivers the low byte first; the
        // serialization of the remaining bytes shows up in the execute stage.
        assert_eq!(org.occupancy(Stage::RegRead, &wide), 1);
        assert_eq!(org.occupancy(Stage::Execute, &wide), 4);
        assert_eq!(org.occupancy(Stage::Writeback, &wide), 4);
    }

    #[test]
    fn halfword_serial_halves_the_cycle_counts() {
        let byte = Organization::new(OrgKind::ByteSerial);
        let half = Organization::new(OrgKind::HalfwordSerial);
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x0101_0101),
            Some(0x1335_5779),
        );
        // The halfword cost vector is computed under the halfword scheme by
        // the engine, but even with the byte cost vector the width halves
        // the execute occupancy.
        assert_eq!(byte.occupancy(Stage::Execute, &wide), 4);
        assert_eq!(half.occupancy(Stage::Execute, &wide), 2);
    }

    #[test]
    fn semi_parallel_matches_the_paper_bandwidths() {
        let org = Organization::new(OrgKind::SemiParallel);
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x0101_0101),
            Some(0x1335_5779),
        );
        assert_eq!(org.occupancy(Stage::RegRead, &wide), 1);
        assert_eq!(org.occupancy(Stage::Execute, &wide), 2); // 4 bytes / 2
        let wide_load = load_cost(0x1234_5678);
        assert_eq!(org.occupancy(Stage::Memory, &wide_load), 4); // 1 byte/cycle
    }

    #[test]
    fn skewed_stages_are_single_cycle_but_deeper() {
        let org = Organization::new(OrgKind::ParallelSkewed);
        assert_eq!(org.depth(), 7);
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x0101_0101),
            Some(0x1335_5779),
        );
        for &s in org.stages() {
            assert_eq!(org.occupancy(s, &wide), 1);
        }
        assert_eq!(org.branch_resolve_stage(&wide), Stage::ExecuteHi);
    }

    #[test]
    fn compressed_pays_extra_cycles_only_for_wide_data() {
        let org = Organization::new(OrgKind::ParallelCompressed);
        let narrow = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(5),
            Some(9),
            Some(14),
        );
        assert_eq!(org.occupancy(Stage::RegRead, &narrow), 1);
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(2),
            Some(0x1234_567a),
        );
        assert_eq!(org.occupancy(Stage::RegRead, &wide), 2);
        assert_eq!(org.occupancy(Stage::Memory, &load_cost(5)), 1);
        assert_eq!(org.occupancy(Stage::Memory, &load_cost(0x1234_5678)), 2);
        assert!(org.is_streamed());
    }

    #[test]
    fn bypass_org_detects_short_operands() {
        let org = Organization::new(OrgKind::SkewedBypass);
        let narrow = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(5),
            Some(9),
            Some(14),
        );
        assert!(org.is_short_operand(&narrow));
        assert_eq!(org.branch_resolve_stage(&narrow), Stage::Execute);
        assert_eq!(org.load_result_stage(&narrow), Stage::Memory);
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(9),
            Some(0x1234_5681),
        );
        assert!(!org.is_short_operand(&wide));
        assert_eq!(org.branch_resolve_stage(&wide), Stage::ExecuteHi);
        // ALU results stream forward from the low execute stage either way.
        assert_eq!(org.alu_result_stage(&wide), Stage::Execute);
    }

    #[test]
    fn four_byte_instructions_need_an_extra_fetch_cycle() {
        let org = Organization::new(OrgKind::ByteSerial);
        // nor is not one of the hot recoded functs → 4 fetch bytes.
        let cold = cost_of(
            Instruction::r3(Op::Nor, T0, T1, T2),
            Some(1),
            Some(2),
            Some(!(3u32)),
        );
        assert_eq!(org.occupancy(Stage::Fetch, &cold), 2);
    }

    #[test]
    fn lane_budgets_cover_every_stage_and_only_the_baseline_never_gates() {
        for org in Organization::all() {
            assert_eq!(
                org.gates_lanes(),
                org.kind() != OrgKind::Baseline32,
                "{}",
                org.name()
            );
            for &stage in org.stages() {
                assert!(org.lane_bytes(stage) > 0, "{} {stage:?}", org.name());
            }
        }
        // The paper's §5 widths: 3 fetch bytes, 2-byte ALU, 1-byte D-cache.
        let semi = Organization::new(OrgKind::SemiParallel);
        assert_eq!(semi.lane_bytes(Stage::Fetch), 3);
        assert_eq!(semi.lane_bytes(Stage::Execute), 2);
        assert_eq!(semi.lane_bytes(Stage::Memory), 1);
        assert_eq!(
            Organization::new(OrgKind::Baseline32).lane_bytes(Stage::Fetch),
            4
        );
    }

    #[test]
    fn stage_used_bytes_follow_the_cost_vector() {
        let wide = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(0x1234_5678),
            Some(0x0101_0101),
            Some(0x1335_5779),
        );
        let narrow = cost_of(
            Instruction::r3(Op::Addu, T0, T1, T2),
            Some(5),
            Some(9),
            Some(14),
        );
        let serial = Organization::new(OrgKind::ByteSerial);
        assert_eq!(serial.stage_used_bytes(Stage::Fetch, &narrow), 3);
        assert_eq!(serial.stage_used_bytes(Stage::RegRead, &narrow), 2);
        assert_eq!(serial.stage_used_bytes(Stage::RegRead, &wide), 8);
        assert_eq!(serial.stage_used_bytes(Stage::Execute, &wide), 4);
        assert_eq!(serial.stage_used_bytes(Stage::Writeback, &narrow), 1);
        // A non-memory instruction uses no data-cache lanes at all.
        assert_eq!(serial.stage_used_bytes(Stage::Memory, &wide), 0);
        assert_eq!(
            serial.stage_used_bytes(Stage::Memory, &load_cost(0x1234_5678)),
            4
        );

        // The skewed pair splits the work: low half first, remainder above.
        let skewed = Organization::new(OrgKind::ParallelSkewed);
        assert_eq!(skewed.stage_used_bytes(Stage::Execute, &wide), 2);
        assert_eq!(skewed.stage_used_bytes(Stage::ExecuteHi, &wide), 2);
        assert_eq!(skewed.stage_used_bytes(Stage::Execute, &narrow), 1);
        assert_eq!(skewed.stage_used_bytes(Stage::ExecuteHi, &narrow), 0);
        let wide_load = load_cost(0x1234_5678);
        assert_eq!(skewed.stage_used_bytes(Stage::Memory, &wide_load), 2);
        assert_eq!(skewed.stage_used_bytes(Stage::MemoryHi, &wide_load), 2);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Organization::all().len(), 7);
        assert_eq!(
            Organization::new(OrgKind::SemiParallel).to_string(),
            "byte semi-parallel"
        );
        for org in Organization::all() {
            assert!(!org.name().is_empty());
            assert!(org.stage_index(Stage::Fetch) == Some(0));
            assert!(org.stage_index(Stage::Writeback).is_some());
        }
        assert_eq!(
            Organization::new(OrgKind::Baseline32).stage_index(Stage::ExecuteHi),
            None
        );
    }
}
