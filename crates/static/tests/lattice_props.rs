//! Property tests for the width lattice and the fixpoint solver, driven by
//! the workspace's deterministic [`SmallRng`] (seeded, so failures are
//! reproducible by seed).
//!
//! * the join is commutative, associative and idempotent (lattice laws),
//! * every transfer function is monotone in the abstract state — the
//!   property the worklist solver's termination and soundness both lean on,
//! * the fixpoint terminates on randomized programs (arbitrary branches,
//!   jumps and ALU soup) and bounds every instruction the interpreter
//!   actually reaches.

use sigcomp_isa::{program, reg, Instruction, Interpreter, Op, Program, Reg};
use sigcomp_static::{
    analyze_program, transfer, verify_trace_against_bounds, AbsState, EntryState, Width,
};
use sigcomp_workloads::SmallRng;

#[test]
fn join_is_commutative_associative_idempotent() {
    for a in Width::ALL {
        assert_eq!(a.join(a), a, "idempotence of {a:?}");
        for b in Width::ALL {
            assert_eq!(a.join(b), b.join(a), "commutativity of {a:?} {b:?}");
            for c in Width::ALL {
                assert_eq!(
                    a.join(b).join(c),
                    a.join(b.join(c)),
                    "associativity of {a:?} {b:?} {c:?}"
                );
            }
        }
    }
}

#[test]
fn join_is_an_upper_bound_and_bound_is_monotone() {
    for a in Width::ALL {
        for b in Width::ALL {
            let j = a.join(b);
            assert!(a <= j && b <= j);
            assert!(a.bound() <= j.bound());
        }
    }
}

/// A random abstract state: every register (and HI/LO) drawn independently
/// from the full chain.
fn random_state(rng: &mut SmallRng) -> AbsState {
    let mut s = AbsState::bottom();
    for i in 0..32u8 {
        s.set(Reg::new(i), Width::ALL[rng.gen_range(0..6usize)]);
    }
    s.hi = Width::ALL[rng.gen_range(0..6usize)];
    s.lo = Width::ALL[rng.gen_range(0..6usize)];
    s
}

/// A random (always encodable) instruction over the full opcode table.
fn random_instr(rng: &mut SmallRng) -> Instruction {
    let op = Op::ALL[rng.gen_range(0..Op::ALL.len())];
    let r = |rng: &mut SmallRng| Reg::new(rng.gen_range(0..32u8));
    Instruction {
        op,
        rs: r(rng),
        rt: r(rng),
        rd: r(rng),
        shamt: rng.gen_range(0..32u8),
        imm: rng.gen_range(0..=u16::MAX),
        target: rng.gen_range(0..0x0400_0000u32),
    }
}

/// Raises `state` to a pointwise-larger state by re-joining random cells
/// upward.
fn widen_randomly(rng: &mut SmallRng, state: &AbsState) -> AbsState {
    let mut wider = *state;
    for i in 0..32u8 {
        let r = Reg::new(i);
        if rng.gen_range(0..2u8) == 1 {
            wider.set(r, wider.get(r).join(Width::ALL[rng.gen_range(0..6usize)]));
        }
    }
    wider.hi = wider.hi.join(Width::ALL[rng.gen_range(0..6usize)]);
    wider.lo = wider.lo.join(Width::ALL[rng.gen_range(0..6usize)]);
    wider
}

#[test]
fn transfer_functions_are_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x5197_c0de);
    for _ in 0..2_000 {
        let instr = random_instr(&mut rng);
        let small_in = random_state(&mut rng);
        let large_in = widen_randomly(&mut rng, &small_in);
        assert!(small_in.le(&large_in));

        let mut small_out = small_in;
        let mut large_out = large_in;
        let pc = 0x0040_0000 + 4 * rng.gen_range(0..1024u32);
        let b_small = transfer(&instr, pc, &mut small_out);
        let b_large = transfer(&instr, pc, &mut large_out);

        assert!(
            small_out.le(&large_out),
            "state transfer not monotone for {instr:?}\n  small in {small_in:?}\n  large in {large_in:?}"
        );
        for (s, l) in [
            (b_small.rs, b_large.rs),
            (b_small.rt, b_large.rt),
            (b_small.result, b_large.result),
        ] {
            assert_eq!(
                s.is_some(),
                l.is_some(),
                "operand presence differs for {instr:?}"
            );
            if let (Some(s), Some(l)) = (s, l) {
                assert!(s <= l, "bounds not monotone for {instr:?}: {s:?} vs {l:?}");
            }
        }
    }
}

/// A random program whose branch and jump targets stay inside the text
/// segment, terminated by `break`.
fn random_program(rng: &mut SmallRng, len: usize) -> Program {
    let base = program::DEFAULT_TEXT_BASE;
    let mut text = Vec::with_capacity(len + 1);
    for i in 0..len {
        let mut instr = random_instr(rng);
        // Rewrite control targets so they land on one of our own slots.
        let slot = rng.gen_range(0..=len as u32);
        if instr.op.is_branch() {
            let here = i as i64 + 1;
            let delta = i64::from(slot) - here;
            instr.imm = (delta as i16) as u16;
        } else if matches!(instr.op, Op::J | Op::Jal) {
            instr.target = (base + 4 * slot) >> 2;
        }
        text.push(instr.encode());
    }
    text.push(
        Instruction {
            op: Op::Break,
            ..Instruction::NOP
        }
        .encode(),
    );
    Program {
        text_base: base,
        text,
        data_base: program::DEFAULT_DATA_BASE,
        data: vec![0u8; 64],
        entry: base,
        stack_top: program::DEFAULT_STACK_TOP,
    }
}

#[test]
fn fixpoint_terminates_on_randomized_programs_and_bounds_execution() {
    let mut rng = SmallRng::seed_from_u64(0xf1f0_1234);
    for round in 0..60 {
        let len = rng.gen_range(4..48usize);
        let p = random_program(&mut rng, len);
        // Termination is the assertion: analyze_program returning at all
        // means the worklist drained. Sanity-bound the visit count too.
        let analysis = analyze_program(&p, EntryState::KernelBoot);
        let blocks = analysis.cfg.blocks.len() as u64;
        assert!(
            analysis.iterations <= blocks.max(1) * 6 * 34 + blocks,
            "round {round}: {} visits for {blocks} blocks",
            analysis.iterations
        );

        // Differential spot-check: wherever the random program happens to
        // run without faulting, the bounds must hold.
        let mut interp = Interpreter::new(&p);
        if let Ok(trace) = interp.run(2_000) {
            verify_trace_against_bounds(&analysis, trace.records())
                .expect("random execution exceeded a static bound");
        }
    }
}

#[test]
fn kernel_boot_entry_state_is_narrower_than_unknown() {
    let mut rng = SmallRng::seed_from_u64(42);
    let p = random_program(&mut rng, 12);
    let boot = AbsState::kernel_boot(p.stack_top, p.data_base);
    let unknown = AbsState::unknown();
    assert!(boot.le(&unknown));
    assert_eq!(unknown.get(reg::ZERO), Width::B1);
}
