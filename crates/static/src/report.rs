//! Aggregated width-bound summaries: the static counterpart of the dynamic
//! [`sigcomp::SigStats`] tables.
//!
//! A [`WidthReport`] collapses a [`StaticAnalysis`] into per-opcode and
//! per-register bound summaries plus a predicted significance distribution
//! (the fraction of operand slots proven to fit 1–4 bytes). The dynamic
//! distribution weights instructions by execution frequency and the static
//! one counts each reachable instruction once, so the two are comparable in
//! shape but not interchangeable — the report exists to put them side by
//! side, and the differential verifier (not the distributions) carries the
//! soundness claim.

use crate::analysis::StaticAnalysis;
use crate::lattice::Width;
use sigcomp_isa::{Op, Reg};

/// Width summary for one opcode across all its reachable occurrences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpWidthRow {
    /// The opcode.
    pub op: Op,
    /// Reachable occurrences in the text segment.
    pub count: u64,
    /// Join of the result bounds across occurrences, when the opcode
    /// produces a value.
    pub result: Option<Width>,
    /// Mean bound, in bytes, over every operand slot (sources and results)
    /// of every occurrence.
    pub mean_operand_bytes: f64,
}

/// The static width summary for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct WidthReport {
    /// Display name of the analyzed program (workload or trace file).
    pub target: String,
    /// Total basic blocks in the CFG.
    pub blocks: usize,
    /// Blocks the fixpoint proved reachable.
    pub reachable_blocks: usize,
    /// Reachable (bounded) instructions.
    pub instructions: u64,
    /// Operand slots whose proven bound is exactly `k` bytes
    /// (`width_counts[k-1]`; ⊤ counts as 4).
    pub width_counts: [u64; 4],
    /// Per-opcode summaries, in [`Op::ALL`] declaration order, present ops
    /// only.
    pub per_op: Vec<OpWidthRow>,
    /// Join of the bounds written to each architectural register, `None`
    /// for registers no reachable instruction writes.
    pub per_reg: [Option<Width>; 32],
}

impl WidthReport {
    /// Builds the report from a finished analysis.
    #[must_use]
    pub fn from_analysis(target: &str, analysis: &StaticAnalysis) -> WidthReport {
        let mut width_counts = [0u64; 4];
        let mut per_reg: [Option<Width>; 32] = [None; 32];
        let mut op_count = vec![0u64; Op::ALL.len()];
        let mut op_result: Vec<Option<Width>> = vec![None; Op::ALL.len()];
        let mut op_slot_bytes = vec![0u64; Op::ALL.len()];
        let mut op_slots = vec![0u64; Op::ALL.len()];

        for bounds in analysis.bounds.values() {
            let idx = bounds.instr.op as usize;
            op_count[idx] += 1;
            for w in bounds.operand_bounds() {
                let b = w.bound().clamp(1, 4);
                width_counts[usize::from(b) - 1] += 1;
                op_slot_bytes[idx] += u64::from(b);
                op_slots[idx] += 1;
            }
            if let Some(result) = bounds.result {
                op_result[idx] = Some(op_result[idx].map_or(result, |w| w.join(result)));
                if let Some(dest) = bounds.instr.dest_reg() {
                    let slot = &mut per_reg[usize::from(dest.index())];
                    *slot = Some(slot.map_or(result, |w| w.join(result)));
                }
            }
        }

        let per_op = Op::ALL
            .iter()
            .filter(|&&op| op_count[op as usize] > 0)
            .map(|&op| {
                let idx = op as usize;
                OpWidthRow {
                    op,
                    count: op_count[idx],
                    result: op_result[idx],
                    mean_operand_bytes: if op_slots[idx] == 0 {
                        0.0
                    } else {
                        op_slot_bytes[idx] as f64 / op_slots[idx] as f64
                    },
                }
            })
            .collect();

        WidthReport {
            target: target.to_string(),
            blocks: analysis.cfg.blocks.len(),
            reachable_blocks: analysis.reachable_blocks,
            instructions: analysis.bounds.len() as u64,
            width_counts,
            per_op,
            per_reg,
        }
    }

    /// Total bounded operand slots.
    #[must_use]
    pub fn operand_slots(&self) -> u64 {
        self.width_counts.iter().sum()
    }

    /// The predicted significance distribution: fraction of operand slots
    /// proven to need exactly `k` bytes (`fractions()[k-1]`).
    #[must_use]
    pub fn width_fractions(&self) -> [f64; 4] {
        let total = self.operand_slots();
        if total == 0 {
            return [0.0; 4];
        }
        self.width_counts.map(|c| c as f64 / total as f64)
    }

    /// Mean proven operand width, in bytes (4.0 when nothing was bounded —
    /// no claim is the widest claim).
    #[must_use]
    pub fn mean_bound_bytes(&self) -> f64 {
        let total = self.operand_slots();
        if total == 0 {
            return 4.0;
        }
        let bytes: u64 = self
            .width_counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u64 + 1) * c)
            .sum();
        bytes as f64 / total as f64
    }

    /// The statically predicted fraction of operand bytes a significance-
    /// compressed datapath could skip: `1 − mean_bound/4`. An upper-bound
    /// flavored estimate used by the sweep pre-screen, not an energy model.
    #[must_use]
    pub fn predicted_saving(&self) -> f64 {
        1.0 - self.mean_bound_bytes() / 4.0
    }

    /// Histogram rows (`label, percent`) for the shared significance
    /// histogram formatter.
    #[must_use]
    pub fn histogram_rows(&self) -> Vec<(String, f64)> {
        self.width_fractions()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    format!("<={} byte{}", i + 1, if i == 0 { "" } else { "s" }),
                    f * 100.0,
                )
            })
            .collect()
    }

    /// CSV export: one row per opcode plus a trailing `total` row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("op,count,mean_operand_bytes,result_bound\n");
        for row in &self.per_op {
            out.push_str(&format!(
                "{},{},{:.4},{}\n",
                row.op.mnemonic(),
                row.count,
                row.mean_operand_bytes,
                row.result.map_or("-", Width::label),
            ));
        }
        out.push_str(&format!(
            "total,{},{:.4},-\n",
            self.instructions,
            self.mean_bound_bytes()
        ));
        out
    }

    /// JSON export: the full report as a single object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", escape(&self.target)));
        out.push_str(&format!("  \"blocks\": {},\n", self.blocks));
        out.push_str(&format!(
            "  \"reachable_blocks\": {},\n",
            self.reachable_blocks
        ));
        out.push_str(&format!("  \"instructions\": {},\n", self.instructions));
        out.push_str(&format!("  \"operand_slots\": {},\n", self.operand_slots()));
        out.push_str(&format!(
            "  \"width_counts\": [{}],\n",
            self.width_counts.map(|c| c.to_string()).join(",")
        ));
        out.push_str(&format!(
            "  \"mean_bound_bytes\": {:.6},\n",
            self.mean_bound_bytes()
        ));
        out.push_str(&format!(
            "  \"predicted_saving\": {:.6},\n",
            self.predicted_saving()
        ));
        out.push_str("  \"per_op\": [\n");
        for (i, row) in self.per_op.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"count\": {}, \"mean_operand_bytes\": {:.6}, \"result_bound\": {}}}{}\n",
                row.op.mnemonic(),
                row.count,
                row.mean_operand_bytes,
                row.result
                    .map_or_else(|| "null".to_string(), |w| format!("\"{}\"", w.label())),
                if i + 1 == self.per_op.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"per_reg\": {");
        let mut first = true;
        for (i, slot) in self.per_reg.iter().enumerate() {
            if let Some(w) = slot {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\": \"{}\"",
                    Reg::new(i as u8).name(),
                    w.label()
                ));
            }
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_program, EntryState};
    use sigcomp_isa::{program, reg, Instruction, Program};

    fn report_for(instrs: &[Instruction]) -> WidthReport {
        let p = Program {
            text_base: program::DEFAULT_TEXT_BASE,
            text: instrs.iter().map(Instruction::encode).collect(),
            data_base: program::DEFAULT_DATA_BASE,
            data: Vec::new(),
            entry: program::DEFAULT_TEXT_BASE,
            stack_top: program::DEFAULT_STACK_TOP,
        };
        WidthReport::from_analysis("unit", &analyze_program(&p, EntryState::KernelBoot))
    }

    #[test]
    fn narrow_kernel_predicts_high_saving() {
        let r = report_for(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::r3(Op::Addu, reg::T1, reg::T0, reg::T0),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        assert_eq!(r.instructions, 3);
        assert!(r.mean_bound_bytes() <= 2.0, "mean {}", r.mean_bound_bytes());
        assert!(r.predicted_saving() >= 0.5);
        assert_eq!(r.per_reg[usize::from(reg::T0.index())], Some(Width::B2));
    }

    #[test]
    fn exports_are_well_formed() {
        let r = report_for(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let csv = r.to_csv();
        assert!(csv.starts_with("op,count,"));
        assert!(csv.lines().last().unwrap().starts_with("total,"));
        let json = r.to_json();
        assert!(json.contains("\"predicted_saving\""));
        assert!(json.contains("\"addiu\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = report_for(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 300),
            Instruction::imm(Op::Lui, reg::T1, reg::ZERO, 0x7fff),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let sum: f64 = r.width_fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
