//! The byte-significance lattice.
//!
//! An abstract register value is a *width*: an upper bound on
//! [`significant_bytes_prefix`] of every concrete value the register can
//! hold at that program point. The lattice is the six-element chain
//!
//! ```text
//! ⊥  <  1  <  2  <  3  <  4  <  ⊤
//! ```
//!
//! ordered by "bounds fewer values": ⊥ is the empty set of values (dead /
//! unreachable), width *k* is "sign-extending the low *k* bytes reproduces
//! the value", and ⊤ is "no information" — which for a 32-bit machine
//! *bounds* the same values as width 4 but records that nothing was proven.
//! A chain makes the join a `max`, so commutativity, associativity and
//! idempotence are inherited from `Ord` (and pinned by property tests).

use sigcomp::ext::significant_bytes_prefix;
use sigcomp_isa::{reg, Reg};

/// An abstract byte width: an upper bound on a value's significance prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// No value reaches this point (dead or unreachable).
    Bottom,
    /// Sign-extending the low byte reproduces the value.
    B1,
    /// Sign-extending the low two bytes reproduces the value.
    B2,
    /// Sign-extending the low three bytes reproduces the value.
    B3,
    /// The value may need all four bytes (proven trivially).
    B4,
    /// Nothing is known; bounds the same values as [`Width::B4`].
    Top,
}

impl Width {
    /// Every lattice element, in chain order.
    pub const ALL: [Width; 6] = [
        Width::Bottom,
        Width::B1,
        Width::B2,
        Width::B3,
        Width::B4,
        Width::Top,
    ];

    /// The least upper bound — `max` on the chain.
    #[must_use]
    pub fn join(self, other: Width) -> Width {
        self.max(other)
    }

    /// The concrete byte bound this element certifies: any value described
    /// by `self` has `significant_bytes_prefix(value) <= bound()`. ⊥ bounds
    /// the empty set, so its bound is 0.
    #[must_use]
    pub fn bound(self) -> u8 {
        match self {
            Width::Bottom => 0,
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B3 => 3,
            Width::B4 | Width::Top => 4,
        }
    }

    /// The narrowest proven element with `bound() >= bytes` (clamped to
    /// [`Width::B4`]; use [`Width::Top`] explicitly for "unknown").
    #[must_use]
    pub fn from_bound(bytes: u8) -> Width {
        match bytes {
            0 => Width::Bottom,
            1 => Width::B1,
            2 => Width::B2,
            3 => Width::B3,
            _ => Width::B4,
        }
    }

    /// The exact abstraction of a known constant.
    #[must_use]
    pub fn of_const(value: u32) -> Width {
        Width::from_bound(significant_bytes_prefix(value))
    }

    /// Short human label (`⊥`, `≤1B` … `≤4B`, `⊤`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Width::Bottom => "bot",
            Width::B1 => "<=1B",
            Width::B2 => "<=2B",
            Width::B3 => "<=3B",
            Width::B4 => "<=4B",
            Width::Top => "top",
        }
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The abstract machine state at one program point: a width per
/// architectural register plus the HI/LO multiply-divide pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsState {
    regs: [Width; 32],
    /// Abstract width of the HI register.
    pub hi: Width,
    /// Abstract width of the LO register.
    pub lo: Width,
}

impl AbsState {
    /// The empty state: nothing reachable, everything ⊥.
    #[must_use]
    pub fn bottom() -> AbsState {
        AbsState {
            regs: [Width::Bottom; 32],
            hi: Width::Bottom,
            lo: Width::Bottom,
        }
    }

    /// The interpreter's boot state: every register zeroed (width 1) except
    /// `$sp`/`$gp`, which hold the exact constants the loader installs.
    #[must_use]
    pub fn kernel_boot(stack_top: u32, data_base: u32) -> AbsState {
        let mut s = AbsState {
            regs: [Width::B1; 32],
            hi: Width::B1,
            lo: Width::B1,
        };
        s.regs[usize::from(reg::SP.index())] = Width::of_const(stack_top);
        s.regs[usize::from(reg::GP.index())] = Width::of_const(data_base);
        s
    }

    /// A state with no register information at all (entry for programs
    /// reconstructed from traces, whose boot state is unknown). `$zero`
    /// still reads as zero.
    #[must_use]
    pub fn unknown() -> AbsState {
        let mut s = AbsState {
            regs: [Width::Top; 32],
            hi: Width::Top,
            lo: Width::Top,
        };
        s.regs[0] = Width::B1;
        s
    }

    /// The abstract width of `reg` (`$zero` is pinned to width 1).
    #[must_use]
    pub fn get(&self, reg: Reg) -> Width {
        self.regs[usize::from(reg.index())]
    }

    /// Bounds `reg` by `width`; writes to `$zero` are discarded, mirroring
    /// the interpreter's register file.
    pub fn set(&mut self, reg: Reg, width: Width) {
        if !reg.is_zero() {
            self.regs[usize::from(reg.index())] = width;
        }
    }

    /// Pointwise join of two states.
    #[must_use]
    pub fn join(&self, other: &AbsState) -> AbsState {
        let mut out = *self;
        for (slot, w) in out.regs.iter_mut().zip(other.regs) {
            *slot = slot.join(w);
        }
        out.hi = out.hi.join(other.hi);
        out.lo = out.lo.join(other.lo);
        out
    }

    /// Pointwise partial order: `self` describes a subset of the machine
    /// states `other` describes.
    #[must_use]
    pub fn le(&self, other: &AbsState) -> bool {
        self.regs.iter().zip(other.regs).all(|(a, b)| *a <= b)
            && self.hi <= other.hi
            && self.lo <= other.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_order_and_bounds() {
        for pair in Width::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].bound() <= pair[1].bound());
        }
        assert_eq!(Width::Bottom.bound(), 0);
        assert_eq!(Width::Top.bound(), 4);
        assert_eq!(Width::from_bound(3), Width::B3);
        assert_eq!(Width::from_bound(9), Width::B4);
    }

    #[test]
    fn const_abstraction_matches_prefix() {
        assert_eq!(Width::of_const(0), Width::B1);
        assert_eq!(Width::of_const(0x7f), Width::B1);
        assert_eq!(Width::of_const(0x80), Width::B2);
        assert_eq!(Width::of_const(0xffff_ffff), Width::B1);
        assert_eq!(Width::of_const(0x7fff_fff0), Width::B4);
    }

    #[test]
    fn zero_register_is_pinned() {
        let mut s = AbsState::kernel_boot(0x7fff_fff0, 0x1000_0000);
        s.set(reg::ZERO, Width::Top);
        assert_eq!(s.get(reg::ZERO), Width::B1);
        assert_eq!(s.get(reg::SP), Width::B4);
    }

    #[test]
    fn state_join_is_pointwise() {
        let boot = AbsState::kernel_boot(0x7fff_fff0, 0x1000_0000);
        let unknown = AbsState::unknown();
        let j = boot.join(&unknown);
        assert!(boot.le(&j) && unknown.le(&j));
        assert_eq!(j.get(reg::ZERO), Width::B1);
        assert_eq!(j.get(reg::RA), Width::Top);
    }
}
