//! The worklist fixpoint solver and its per-instruction results.
//!
//! Block in-states start at ⊥ (unreachable); the entry block gets the
//! abstract boot state. Each solver step runs the transfer functions over a
//! block and joins the out-state into every successor, re-queueing
//! successors whose in-state grew. The lattice is finite (each of 34 state
//! cells climbs a six-element chain) and every transfer function is
//! monotone, so the loop terminates; the property tests exercise this on
//! randomized programs.

use crate::cfg::Cfg;
use crate::lattice::AbsState;
use crate::transfer::{transfer, InstrBounds};
use sigcomp_isa::{ExecRecord, Instruction, Op, Program};
use std::collections::{BTreeMap, VecDeque};

/// What the analysis may assume about registers at the program entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// The interpreter's boot state: zeroed registers, `$sp`/`$gp` holding
    /// the program's stack top and data base (how kernels actually start).
    KernelBoot,
    /// Nothing known (programs reconstructed from a trace, which may begin
    /// mid-execution).
    Unknown,
}

/// The fixpoint result: a static width bound for every reachable
/// instruction.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// The CFG the bounds were computed over.
    pub cfg: Cfg,
    /// Per-instruction bounds, keyed by address; reachable instructions
    /// only. Deterministic iteration order (ascending pc).
    pub bounds: BTreeMap<u32, InstrBounds>,
    /// Number of blocks the fixpoint proved reachable.
    pub reachable_blocks: usize,
    /// Solver block-visits until the fixpoint stabilized.
    pub iterations: u64,
}

impl StaticAnalysis {
    /// The bounds proven for the instruction at `pc`, if it is reachable.
    #[must_use]
    pub fn bounds_at(&self, pc: u32) -> Option<&InstrBounds> {
        self.bounds.get(&pc)
    }
}

/// Runs the abstract interpretation over `program` to a fixpoint.
#[must_use]
pub fn analyze_program(program: &Program, entry: EntryState) -> StaticAnalysis {
    let cfg = Cfg::build(program);
    let entry_state = match entry {
        EntryState::KernelBoot => AbsState::kernel_boot(program.stack_top, program.data_base),
        EntryState::Unknown => AbsState::unknown(),
    };

    let mut in_states: Vec<Option<AbsState>> = vec![None; cfg.blocks.len()];
    let mut worklist: VecDeque<usize> = VecDeque::new();
    let mut queued = vec![false; cfg.blocks.len()];
    let mut iterations: u64 = 0;

    if let Some(entry_block) = cfg.entry {
        in_states[entry_block] = Some(entry_state);
        worklist.push_back(entry_block);
        queued[entry_block] = true;
    }

    while let Some(idx) = worklist.pop_front() {
        queued[idx] = false;
        iterations += 1;
        let Some(mut state) = in_states[idx] else {
            continue;
        };
        let block = &cfg.blocks[idx];
        let mut pc = block.start;
        for instr in &block.instrs {
            transfer(instr, pc, &mut state);
            pc = pc.wrapping_add(4);
        }
        for &succ in &block.succs {
            let grew = match &in_states[succ] {
                None => {
                    in_states[succ] = Some(state);
                    true
                }
                Some(old) if !state.le(old) => {
                    in_states[succ] = Some(old.join(&state));
                    true
                }
                Some(_) => false,
            };
            if grew && !queued[succ] {
                worklist.push_back(succ);
                queued[succ] = true;
            }
        }
    }

    // Final pass: materialize per-instruction bounds from the stable
    // in-states, for reachable blocks only.
    let mut bounds = BTreeMap::new();
    let mut reachable_blocks = 0;
    for (idx, block) in cfg.blocks.iter().enumerate() {
        let Some(mut state) = in_states[idx] else {
            continue;
        };
        reachable_blocks += 1;
        let mut pc = block.start;
        for instr in &block.instrs {
            bounds.insert(pc, transfer(instr, pc, &mut state));
            pc = pc.wrapping_add(4);
        }
    }

    StaticAnalysis {
        cfg,
        bounds,
        reachable_blocks,
        iterations,
    }
}

/// Rebuilds an executable [`Program`] image from a trace's `(pc, word)`
/// pairs, so recorded streams can be analyzed without the original binary.
///
/// The text segment spans `[min pc, max pc]`; addresses the trace never
/// visited are filled with `break` (they contribute no edges and no
/// reachable instructions, and the trace itself proves execution never
/// fetched them). The entry is the first record's pc. Returns `None` for an
/// empty record stream.
#[must_use]
pub fn program_from_records(records: &[ExecRecord]) -> Option<Program> {
    let mut words: BTreeMap<u32, u32> = BTreeMap::new();
    for r in records {
        words.insert(r.pc, r.word);
    }
    let (&first, _) = words.first_key_value()?;
    let (&last, _) = words.last_key_value()?;
    let hole = Instruction {
        op: Op::Break,
        ..Instruction::NOP
    }
    .encode();
    let len = (last - first) / 4 + 1;
    let mut text = vec![hole; len as usize];
    for (&pc, &word) in &words {
        text[((pc - first) / 4) as usize] = word;
    }
    Some(Program {
        text_base: first,
        text,
        data_base: sigcomp_isa::program::DEFAULT_DATA_BASE,
        data: Vec::new(),
        entry: records[0].pc,
        stack_top: sigcomp_isa::program::DEFAULT_STACK_TOP,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Width;
    use sigcomp_isa::{reg, Interpreter};

    fn run_program(instrs: &[Instruction]) -> Program {
        Program {
            text_base: sigcomp_isa::program::DEFAULT_TEXT_BASE,
            text: instrs.iter().map(Instruction::encode).collect(),
            data_base: sigcomp_isa::program::DEFAULT_DATA_BASE,
            data: Vec::new(),
            entry: sigcomp_isa::program::DEFAULT_TEXT_BASE,
            stack_top: sigcomp_isa::program::DEFAULT_STACK_TOP,
        }
    }

    #[test]
    fn loop_widens_to_fixpoint() {
        // addiu $t0, $zero, 0
        // loop: addiu $t0, $t0, 1
        //       bne $t0, $zero, loop (-2)
        //       break
        let p = run_program(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 0),
            Instruction::imm(Op::Addiu, reg::T0, reg::T0, 1),
            Instruction::imm(Op::Bne, reg::ZERO, reg::T0, 0xfffeu32 as u16),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let a = analyze_program(&p, EntryState::KernelBoot);
        // The loop body re-enters with ever wider $t0 until it saturates.
        let add_pc = p.text_base + 4;
        assert_eq!(a.bounds_at(add_pc).unwrap().result, Some(Width::B4));
        assert_eq!(a.reachable_blocks, a.cfg.blocks.len());
    }

    #[test]
    fn unreachable_code_gets_no_bounds() {
        // j +2 (skip the middle instruction)
        let base = sigcomp_isa::program::DEFAULT_TEXT_BASE;
        let p = run_program(&[
            Instruction::jump(Op::J, (base + 8) >> 2),
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let a = analyze_program(&p, EntryState::KernelBoot);
        assert!(a.bounds_at(base + 4).is_none());
        assert!(a.bounds_at(base).is_some());
    }

    #[test]
    fn reconstructed_trace_program_reanalyzes() {
        let p = run_program(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 300),
            Instruction::r3(Op::Addu, reg::T1, reg::T0, reg::T0),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let mut interp = Interpreter::new(&p);
        let trace = interp.run(1000).expect("runs to break");
        let rebuilt = program_from_records(trace.records()).expect("non-empty");
        assert_eq!(rebuilt.text_base, p.text_base);
        let a = analyze_program(&rebuilt, EntryState::Unknown);
        for r in trace.records() {
            assert!(a.bounds_at(r.pc).is_some());
        }
    }
}
