//! Control-flow graph construction over a decoded text segment.
//!
//! Leaders are the program entry, every static branch/jump target inside
//! the text segment, and the instruction after any control-transfer op
//! (fall-through paths and call-return points). Indirect jumps (`jr` /
//! `jalr`) cannot be resolved without value tracking, so they
//! conservatively target **every** block — sound for the width analysis,
//! which only ever over-approximates the states flowing into a block.

use sigcomp_isa::{Instruction, Op, Program};
use std::collections::BTreeSet;

/// One basic block: a maximal straight-line run of decodable instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Address of the first instruction.
    pub start: u32,
    /// Decoded instructions, in address order.
    pub instrs: Vec<Instruction>,
    /// Indices of successor blocks in [`Cfg::blocks`].
    pub succs: Vec<usize>,
}

impl Block {
    /// Address one past the last instruction.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.start + 4 * self.instrs.len() as u32
    }
}

/// A control-flow graph over a program's text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in ascending address order.
    pub blocks: Vec<Block>,
    /// Index of the block holding the program entry point, when the entry
    /// lands on a decodable instruction.
    pub entry: Option<usize>,
    /// Words in the text segment that failed to decode (their addresses).
    /// Execution cannot proceed past them, so blocks stop there.
    pub undecodable: Vec<u32>,
}

/// The static control successors of `instr` at `pc`.
///
/// `None` means "every block" (indirect jump). `Some(vec)` lists direct
/// successor addresses; empty for `break` and for targets that leave the
/// text segment (the interpreter faults there, so no edge is needed).
fn successor_pcs(instr: &Instruction, pc: u32) -> Option<Vec<u32>> {
    let op = instr.op;
    let next = pc.wrapping_add(4);
    if op.is_branch() {
        let target = next.wrapping_add((instr.imm_se() as u32) << 2);
        return Some(vec![next, target]);
    }
    match op {
        Op::J | Op::Jal => {
            let target = (next & 0xf000_0000) | (instr.target << 2);
            Some(vec![target])
        }
        Op::Jr | Op::Jalr => None,
        Op::Break => Some(Vec::new()),
        _ => Some(vec![next]),
    }
}

impl Cfg {
    /// Builds the CFG for `program`'s text segment.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let base = program.text_base;
        let decoded: Vec<Option<Instruction>> = program
            .text
            .iter()
            .map(|&word| Instruction::decode(word).ok())
            .collect();
        let in_text =
            |pc: u32| pc >= base && pc < base + 4 * decoded.len() as u32 && pc.is_multiple_of(4);

        // Pass 1: leaders.
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        if in_text(program.entry) {
            leaders.insert(program.entry);
        }
        for (i, slot) in decoded.iter().enumerate() {
            let pc = base + 4 * i as u32;
            let Some(instr) = slot else {
                // The word after an undecodable one starts fresh, should a
                // jump land there.
                continue;
            };
            if instr.op.is_control() {
                let next = pc.wrapping_add(4);
                if in_text(next) {
                    leaders.insert(next);
                }
                if let Some(targets) = successor_pcs(instr, pc) {
                    for t in targets {
                        if in_text(t) {
                            leaders.insert(t);
                        }
                    }
                }
            }
        }

        // Pass 2: carve blocks between leaders / control ops / decode holes.
        let mut blocks: Vec<Block> = Vec::new();
        let mut undecodable = Vec::new();
        let mut current: Option<Block> = None;
        for (i, slot) in decoded.iter().enumerate() {
            let pc = base + 4 * i as u32;
            let Some(instr) = slot else {
                undecodable.push(pc);
                if let Some(block) = current.take() {
                    blocks.push(block);
                }
                continue;
            };
            if leaders.contains(&pc) {
                if let Some(block) = current.take() {
                    blocks.push(block);
                }
            }
            let block = current.get_or_insert_with(|| Block {
                start: pc,
                instrs: Vec::new(),
                succs: Vec::new(),
            });
            block.instrs.push(*instr);
            if instr.op.is_control() {
                blocks.push(current.take().unwrap());
            }
        }
        if let Some(block) = current.take() {
            blocks.push(block);
        }

        // Pass 3: successor edges. Blocks all start at leaders, so the
        // conservative indirect-jump target set is "every block".
        let index_of = |pc: u32| blocks.binary_search_by_key(&pc, |b| b.start).ok();
        let mut succ_lists: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
        for block in &blocks {
            let last = block.instrs.last().expect("blocks are built non-empty");
            let last_pc = block.end() - 4;
            // Successor addresses that are not block starts (left the text
            // segment, or ran into an undecodable word) fault in the
            // interpreter, so dropping them is sound.
            let succs = match successor_pcs(last, last_pc) {
                Some(pcs) => pcs.iter().filter_map(|&pc| index_of(pc)).collect(),
                None => (0..blocks.len()).collect(),
            };
            succ_lists.push(succs);
        }
        let entry = index_of(program.entry);
        for (block, succs) in blocks.iter_mut().zip(succ_lists) {
            block.succs = succs;
        }

        Cfg {
            blocks,
            entry,
            undecodable,
        }
    }

    /// Total decoded instructions across all blocks.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::{program, reg, Reg};

    fn program(instrs: &[Instruction]) -> Program {
        Program {
            text_base: program::DEFAULT_TEXT_BASE,
            text: instrs.iter().map(Instruction::encode).collect(),
            data_base: program::DEFAULT_DATA_BASE,
            data: Vec::new(),
            entry: program::DEFAULT_TEXT_BASE,
            stack_top: program::DEFAULT_STACK_TOP,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = program(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::imm(Op::Addiu, reg::T1, reg::ZERO, 2),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.entry, Some(0));
        assert_eq!(cfg.blocks[0].instrs.len(), 3);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_and_targets() {
        // 0: beq $zero, $zero, +1   (target = 8)
        // 4: addiu $t0, $zero, 1
        // 8: break
        let p = program(&[
            Instruction::imm(Op::Beq, reg::ZERO, reg::ZERO, 1),
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks[1].succs, vec![2]);
    }

    #[test]
    fn indirect_jump_targets_every_block() {
        let p = program(&[
            Instruction::r3(Op::Jr, reg::ZERO, reg::RA, reg::ZERO),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks[0].succs, vec![0, 1]);
    }

    #[test]
    fn undecodable_word_ends_the_block() {
        let mut p = program(&[Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1)]);
        p.text.push(0xffff_ffff);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.undecodable, vec![program::DEFAULT_TEXT_BASE + 4]);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn jalr_uses_rd_and_returns_everywhere() {
        let t0: Reg = reg::T0;
        let p = program(&[
            Instruction::r3(Op::Jalr, reg::RA, t0, reg::ZERO),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![0, 1]);
    }
}
