//! The differential verifier: dynamic execution vs. static bounds.
//!
//! The analysis asserts, for every reachable instruction, an upper bound on
//! the significance prefix of each operand the interpreter will ever record
//! there. This module checks that claim against real traces, record by
//! record. A violation means the interpreter, the cost model's notion of
//! significance, or a transfer function drifted apart — exactly the class
//! of silent bug a paper reproduction cannot afford.
//!
//! The check is scheme-independent: all three extension schemes encode at
//! least the sign-extension prefix, so `significant_bytes_prefix(value) <=
//! bound` subsumes them.

use crate::analysis::StaticAnalysis;
use crate::lattice::Width;
use sigcomp::ext::significant_bytes_prefix;
use sigcomp_isa::{ExecRecord, Op};
use std::fmt;

/// Which recorded operand broke its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandKind {
    /// The `rs` source value.
    Rs,
    /// The `rt` source value.
    Rt,
    /// The produced value (register writeback or loaded word).
    Result,
}

impl OperandKind {
    fn label(self) -> &'static str {
        match self {
            OperandKind::Rs => "rs",
            OperandKind::Rt => "rt",
            OperandKind::Result => "result",
        }
    }
}

/// A failed cross-check between a trace and the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The trace executed an address the analysis proved unreachable (or
    /// never saw at all) — the CFG or solver is wrong.
    UnanalyzedPc {
        /// Record sequence number.
        seq: u64,
        /// The offending address.
        pc: u32,
    },
    /// The decoded instruction in the trace differs from the one the
    /// analysis bounded at the same address (self-modifying text or a
    /// decode divergence).
    InstructionMismatch {
        /// Record sequence number.
        seq: u64,
        /// The offending address.
        pc: u32,
        /// What the analysis decoded there.
        analyzed: Op,
        /// What the trace recorded there.
        traced: Op,
    },
    /// An operand value exceeded its proven width bound.
    BoundExceeded {
        /// Record sequence number.
        seq: u64,
        /// The offending address.
        pc: u32,
        /// The opcode at that address.
        op: Op,
        /// Which operand broke the bound.
        operand: OperandKind,
        /// The recorded value.
        value: u32,
        /// Its actual significance prefix, in bytes.
        actual: u8,
        /// The static bound it was supposed to respect.
        bound: Width,
    },
    /// The trace recorded an operand the analysis says the opcode does not
    /// have (metadata drift between `Op` tables and the interpreter).
    UnexpectedOperand {
        /// Record sequence number.
        seq: u64,
        /// The offending address.
        pc: u32,
        /// The operand with no static counterpart.
        operand: OperandKind,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnanalyzedPc { seq, pc } => {
                write!(f, "record {seq}: pc {pc:#010x} was never analyzed (statically unreachable?)")
            }
            VerifyError::InstructionMismatch { seq, pc, analyzed, traced } => write!(
                f,
                "record {seq}: pc {pc:#010x} decodes as {} statically but {} dynamically",
                analyzed.mnemonic(),
                traced.mnemonic()
            ),
            VerifyError::BoundExceeded { seq, pc, op, operand, value, actual, bound } => write!(
                f,
                "record {seq}: {} {} value {value:#010x} at pc {pc:#010x} has {actual}-byte prefix, bound {bound}",
                op.mnemonic(),
                operand.label()
            ),
            VerifyError::UnexpectedOperand { seq, pc, operand } => write!(
                f,
                "record {seq}: pc {pc:#010x} recorded a {} operand the static model says cannot exist",
                operand.label()
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Summary of a successful differential run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Trace records checked.
    pub records: u64,
    /// Individual operand values compared against a bound.
    pub values_checked: u64,
}

impl VerifyReport {
    /// Folds another report into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.records += other.records;
        self.values_checked += other.values_checked;
    }
}

fn check(
    report: &mut VerifyReport,
    r: &ExecRecord,
    operand: OperandKind,
    value: Option<u32>,
    bound: Option<Width>,
) -> Result<(), Box<VerifyError>> {
    let Some(value) = value else { return Ok(()) };
    let Some(bound) = bound else {
        return Err(Box::new(VerifyError::UnexpectedOperand {
            seq: r.seq,
            pc: r.pc,
            operand,
        }));
    };
    let actual = significant_bytes_prefix(value);
    report.values_checked += 1;
    if actual > bound.bound() {
        return Err(Box::new(VerifyError::BoundExceeded {
            seq: r.seq,
            pc: r.pc,
            op: r.instr.op,
            operand,
            value,
            actual,
            bound,
        }));
    }
    Ok(())
}

/// Checks every record of a dynamic trace against the static bounds,
/// failing on the first violation.
///
/// For each record this compares the `rs`/`rt` source values, the register
/// writeback, and (for loads) the value read from memory against the
/// instruction's proven widths. Store values are the `rt` source and need
/// no extra check.
pub fn verify_trace_against_bounds<'a, I>(
    analysis: &StaticAnalysis,
    records: I,
) -> Result<VerifyReport, Box<VerifyError>>
where
    I: IntoIterator<Item = &'a ExecRecord>,
{
    let mut report = VerifyReport::default();
    for r in records {
        let Some(bounds) = analysis.bounds_at(r.pc) else {
            return Err(Box::new(VerifyError::UnanalyzedPc {
                seq: r.seq,
                pc: r.pc,
            }));
        };
        if bounds.instr.op != r.instr.op {
            return Err(Box::new(VerifyError::InstructionMismatch {
                seq: r.seq,
                pc: r.pc,
                analyzed: bounds.instr.op,
                traced: r.instr.op,
            }));
        }
        report.records += 1;
        check(&mut report, r, OperandKind::Rs, r.rs_value, bounds.rs)?;
        check(&mut report, r, OperandKind::Rt, r.rt_value, bounds.rt)?;
        let written = r.writeback.map(|(_, v)| v);
        check(&mut report, r, OperandKind::Result, written, bounds.result)?;
        if let Some(mem) = &r.mem {
            if !mem.is_store {
                check(
                    &mut report,
                    r,
                    OperandKind::Result,
                    Some(mem.value),
                    bounds.result,
                )?;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze_program, EntryState};
    use sigcomp_isa::{program, reg, Instruction, Interpreter, Program};

    fn build(instrs: &[Instruction]) -> Program {
        Program {
            text_base: program::DEFAULT_TEXT_BASE,
            text: instrs.iter().map(Instruction::encode).collect(),
            data_base: program::DEFAULT_DATA_BASE,
            data: vec![0x12, 0x34, 0x56, 0x78],
            entry: program::DEFAULT_TEXT_BASE,
            stack_top: program::DEFAULT_STACK_TOP,
        }
    }

    #[test]
    fn interpreter_respects_bounds_on_a_small_kernel() {
        let p = build(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 257),
            Instruction::r3(Op::Addu, reg::T1, reg::T0, reg::T0),
            Instruction::imm(Op::Lw, reg::T2, reg::GP, 0),
            Instruction::imm(Op::Sw, reg::T2, reg::GP, 4),
            Instruction::r3(Op::Slt, reg::T3, reg::T1, reg::T2),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let analysis = analyze_program(&p, EntryState::KernelBoot);
        let mut interp = Interpreter::new(&p);
        let trace = interp.run(1_000).expect("kernel halts");
        let report = verify_trace_against_bounds(&analysis, trace.records()).expect("no violation");
        assert_eq!(report.records, trace.records().len() as u64);
        assert!(report.values_checked > report.records);
    }

    #[test]
    fn a_widened_value_is_caught() {
        let p = build(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 257),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let analysis = analyze_program(&p, EntryState::KernelBoot);
        let mut interp = Interpreter::new(&p);
        let trace = interp.run(1_000).expect("kernel halts");
        let mut records = trace.records().to_vec();
        // Forge a writeback wider than the proven bound (addiu from $zero
        // of a two-byte immediate is at most three bytes).
        records[0].writeback = Some((reg::T0, 0x7fff_ffff));
        let err = verify_trace_against_bounds(&analysis, records.iter()).unwrap_err();
        assert!(matches!(*err, VerifyError::BoundExceeded { .. }));
        assert!(err.to_string().contains("prefix"));
    }

    #[test]
    fn unanalyzed_pc_is_a_hard_error() {
        let p = build(&[
            Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 1),
            Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
        ]);
        let analysis = analyze_program(&p, EntryState::KernelBoot);
        let mut interp = Interpreter::new(&p);
        let trace = interp.run(1_000).expect("kernel halts");
        let mut records = trace.records().to_vec();
        records[0].pc = 0xdead_0000;
        let err = verify_trace_against_bounds(&analysis, records.iter()).unwrap_err();
        assert!(matches!(*err, VerifyError::UnanalyzedPc { .. }));
    }
}
