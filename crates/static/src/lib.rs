//! # sigcomp-static
//!
//! Static significance analysis: an abstract interpretation that proves,
//! per instruction, an upper bound on how many low-order bytes each
//! operand can ever need — the *static* counterpart of the dynamic
//! significance counting the paper's energy argument is built on
//! (Canal, González & Smith, MICRO 2000, §2).
//!
//! The pipeline is classic dataflow analysis:
//!
//! * [`Cfg`] — basic blocks over the decoded text segment, with successor
//!   edges from branch/jump resolution (indirect jumps conservatively
//!   target every block),
//! * [`Width`] / [`AbsState`] — the byte-significance lattice, a six-step
//!   chain `⊥ < 1 < 2 < 3 < 4 < ⊤` per register plus HI/LO,
//! * [`transfer`] — per-opcode transfer functions mirroring the
//!   interpreter's `DISPATCH` semantics (each rule carries its soundness
//!   argument),
//! * [`analyze_program`] — the worklist fixpoint solver, yielding
//!   [`InstrBounds`] for every reachable instruction,
//! * [`WidthReport`] — per-opcode/per-register summaries and a predicted
//!   significance distribution comparable against dynamic
//!   [`sigcomp::SigStats`], with CSV/JSON export,
//! * [`verify_trace_against_bounds`] — the differential verifier: every
//!   dynamically recorded operand must respect its static bound, over the
//!   entire golden corpus, in CI.
//!
//! # Example
//!
//! ```
//! use sigcomp_static::{analyze_program, verify_trace_against_bounds, EntryState, WidthReport};
//! use sigcomp_isa::{program, reg, Instruction, Interpreter, Op, Program};
//!
//! let program = Program {
//!     text_base: program::DEFAULT_TEXT_BASE,
//!     text: [
//!         Instruction::imm(Op::Addiu, reg::T0, reg::ZERO, 42),
//!         Instruction::r3(Op::Addu, reg::T1, reg::T0, reg::T0),
//!         Instruction::r3(Op::Break, reg::ZERO, reg::ZERO, reg::ZERO),
//!     ]
//!     .iter()
//!     .map(Instruction::encode)
//!     .collect(),
//!     data_base: program::DEFAULT_DATA_BASE,
//!     data: vec![],
//!     entry: program::DEFAULT_TEXT_BASE,
//!     stack_top: program::DEFAULT_STACK_TOP,
//! };
//! let analysis = analyze_program(&program, EntryState::KernelBoot);
//! let report = WidthReport::from_analysis("example", &analysis);
//! assert!(report.predicted_saving() > 0.0);
//!
//! // The interpreter can never exceed the proven bounds.
//! let trace = Interpreter::new(&program).run(100).unwrap();
//! verify_trace_against_bounds(&analysis, trace.records()).unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod cfg;
pub mod lattice;
pub mod report;
pub mod transfer;
pub mod verify;

pub use analysis::{analyze_program, program_from_records, EntryState, StaticAnalysis};
pub use cfg::{Block, Cfg};
pub use lattice::{AbsState, Width};
pub use report::{OpWidthRow, WidthReport};
pub use transfer::{transfer, InstrBounds};
pub use verify::{verify_trace_against_bounds, OperandKind, VerifyError, VerifyReport};
