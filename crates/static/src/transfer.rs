//! Per-opcode transfer functions over [`AbsState`].
//!
//! Each rule is a sound abstraction of the matching `DISPATCH` entry in
//! `sigcomp_isa::interp`: if every concrete input value satisfies its input
//! width (sign-extending the low *k* bytes reproduces it), the concrete
//! result satisfies the output width. The proofs lean on one fact: width
//! *k* means bits `[8k-1, 31]` are all copies of the sign bit, i.e.
//! `|value| < 2^(8k-1)` as a signed quantity.
//!
//! * add/sub (`|a±b| < 2^(8k)`): widen the wider input by one byte;
//! * bitwise ops: upper replicated regions stay replicated, so `max`;
//! * set-on-compare: the result is 0 or 1, width 1;
//! * constant producers (`lui`, link registers): exact prefix of the value;
//! * immediate shifts: shift the replicated region by whole bytes;
//! * variable shifts: unknown amount — width 4, except arithmetic right
//!   shift which can only narrow;
//! * loads: bounded by the access width (unsigned loads may gain a zero
//!   sign byte: `lbu` of `0x80` is a two-byte-prefix value);
//! * signed multiply: a product of magnitudes below `2^(8j-1)·2^(8k-1)`
//!   fits `j+k` bytes, and when that fits one word HI is pure sign;
//! * signed divide: `|quotient| ≤ |rs|` (the `MIN/-1` wrap lands back on
//!   `MIN`, same width) and `|remainder| < |rt|`, with the divide-by-zero
//!   convention (`lo = 0`, `hi = rs`) folded in;
//! * **un**signed multiply/divide get no bound: signed-prefix widths say
//!   nothing about unsigned magnitudes (`0xffff_ffff` has prefix 1 but
//!   unsigned value `2^32 − 1`).

use crate::lattice::{AbsState, Width};
use sigcomp_isa::{Instruction, Op};

/// Static width bounds for one instruction: upper bounds on the
/// significance prefix of each dynamic operand the interpreter records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrBounds {
    /// Address of the instruction.
    pub pc: u32,
    /// The decoded instruction the bounds were derived for.
    pub instr: Instruction,
    /// Bound on the `rs` source value, when the opcode reads `rs`.
    pub rs: Option<Width>,
    /// Bound on the `rt` source value, when the opcode reads `rt`.
    pub rt: Option<Width>,
    /// Bound on the produced value (register writeback or loaded word),
    /// when the opcode produces one.
    pub result: Option<Width>,
}

impl InstrBounds {
    /// Every bound this instruction asserts, for histogram aggregation.
    pub fn operand_bounds(&self) -> impl Iterator<Item = Width> + '_ {
        [self.rs, self.rt, self.result].into_iter().flatten()
    }
}

/// `max(inputs)` widened by one byte, for add/subtract carries.
fn widen1(a: Width, b: Width) -> Width {
    Width::from_bound((a.bound().max(b.bound()) + 1).min(4))
}

/// Left shift by a known amount: the replicated region moves up `s` bits.
fn shl_width(w: Width, s: u8) -> Width {
    if s == 0 {
        w
    } else {
        Width::from_bound((u32::from(w.bound()) * 8 + u32::from(s)).div_ceil(8).min(4) as u8)
    }
}

/// Logical right shift by a known amount: the top `s` bits become zeros.
fn srl_width(w: Width, s: u8) -> Width {
    if s == 0 {
        w
    } else {
        Width::from_bound((33 - u32::from(s)).div_ceil(8).min(4) as u8)
    }
}

/// Arithmetic right shift by a known amount: the replicated region grows
/// downward by `s` bits (never below one byte).
fn sra_width(w: Width, s: u8) -> Width {
    if s == 0 {
        w
    } else {
        Width::from_bound(
            (u32::from(w.bound()) * 8)
                .saturating_sub(u32::from(s))
                .div_ceil(8)
                .max(1) as u8,
        )
    }
}

/// Applies `instr` at `pc` to `state`, returning the operand bounds at this
/// program point. Mirrors the interpreter's effect structure: source bounds
/// are read from the pre-state, the destination register (or HI/LO) is then
/// updated in place.
pub fn transfer(instr: &Instruction, pc: u32, state: &mut AbsState) -> InstrBounds {
    let op = instr.op;
    let rs_w = op.reads_rs().then(|| state.get(instr.rs));
    let rt_w = op.reads_rt().then(|| state.get(instr.rt));
    let rs = rs_w.unwrap_or(Width::Bottom);
    let rt = rt_w.unwrap_or(Width::Bottom);

    let mut hi_lo: Option<(Width, Width)> = None;
    let result = match op {
        Op::Add | Op::Addu | Op::Sub | Op::Subu => Some(widen1(rs, rt)),
        Op::Addi | Op::Addiu => Some(widen1(rs, Width::of_const(instr.imm_se() as u32))),
        Op::And | Op::Or | Op::Xor | Op::Nor => Some(rs.join(rt)),
        Op::Andi | Op::Ori | Op::Xori => Some(rs.join(Width::of_const(instr.imm_ze()))),
        Op::Slt | Op::Sltu | Op::Slti | Op::Sltiu => Some(Width::B1),
        Op::Lui => Some(Width::of_const(instr.imm_ze() << 16)),
        Op::Sll => Some(shl_width(rt, instr.shamt)),
        Op::Srl => Some(srl_width(rt, instr.shamt)),
        Op::Sra => Some(sra_width(rt, instr.shamt)),
        Op::Sllv | Op::Srlv => Some(Width::B4),
        Op::Srav => Some(rt),
        Op::Lb => Some(Width::B1),
        Op::Lbu | Op::Lh => Some(Width::B2),
        Op::Lhu => Some(Width::B3),
        Op::Lw => Some(Width::B4),
        Op::Jal | Op::Jalr => Some(Width::of_const(pc.wrapping_add(4))),
        Op::Mfhi => Some(state.hi),
        Op::Mflo => Some(state.lo),
        Op::Mult => {
            let sum = rs.bound() + rt.bound();
            hi_lo = if sum <= 4 {
                Some((Width::B1, Width::from_bound(sum)))
            } else {
                Some((Width::B4, Width::B4))
            };
            None
        }
        Op::Multu => {
            hi_lo = Some((Width::B4, Width::B4));
            None
        }
        Op::Div => {
            let j = rs.bound().max(1);
            let k = rt.bound().max(1);
            hi_lo = Some((Width::from_bound(j.max(k)), Width::from_bound(j)));
            None
        }
        Op::Divu => {
            hi_lo = Some((Width::B4, Width::B4));
            None
        }
        Op::Mthi => {
            hi_lo = Some((rs, state.lo));
            None
        }
        Op::Mtlo => {
            hi_lo = Some((state.hi, rs));
            None
        }
        // Branches, plain jumps, stores and break produce no register value.
        _ => None,
    };

    if let Some((hi, lo)) = hi_lo {
        state.hi = hi;
        state.lo = lo;
    }
    if let (Some(width), Some(dest)) = (result, instr.dest_reg()) {
        state.set(dest, width);
    }

    InstrBounds {
        pc,
        instr: *instr,
        rs: rs_w,
        rt: rt_w,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::{reg, Reg};

    fn state_with(reg: Reg, w: Width) -> AbsState {
        let mut s = AbsState::kernel_boot(0x7fff_fff0, 0x1000_0000);
        s.set(reg, w);
        s
    }

    #[test]
    fn add_widens_by_one_byte() {
        let t0 = Reg::new(8);
        let t1 = Reg::new(9);
        let mut s = state_with(t0, Width::B2);
        s.set(t1, Width::B1);
        let b = transfer(&Instruction::r3(Op::Addu, t0, t0, t1), 0, &mut s);
        assert_eq!(b.result, Some(Width::B3));
        assert_eq!(s.get(t0), Width::B3);
    }

    #[test]
    fn bitwise_takes_the_max() {
        let t0 = Reg::new(8);
        let t1 = Reg::new(9);
        let mut s = state_with(t0, Width::B3);
        s.set(t1, Width::B2);
        let b = transfer(&Instruction::r3(Op::Xor, t0, t0, t1), 0, &mut s);
        assert_eq!(b.result, Some(Width::B3));
    }

    #[test]
    fn lui_is_exact() {
        let t0 = Reg::new(8);
        let mut s = AbsState::kernel_boot(0x7fff_fff0, 0x1000_0000);
        let b = transfer(&Instruction::imm(Op::Lui, t0, reg::ZERO, 0x1000), 0, &mut s);
        assert_eq!(b.result, Some(Width::of_const(0x1000_0000)));
        let b = transfer(&Instruction::imm(Op::Lui, t0, reg::ZERO, 0), 0, &mut s);
        assert_eq!(b.result, Some(Width::B1));
    }

    #[test]
    fn shifts_move_whole_bytes() {
        assert_eq!(shl_width(Width::B1, 8), Width::B2);
        assert_eq!(shl_width(Width::B1, 4), Width::B2);
        assert_eq!(shl_width(Width::B3, 16), Width::B4);
        assert_eq!(srl_width(Width::B4, 24), Width::B2);
        assert_eq!(srl_width(Width::B4, 25), Width::B1);
        assert_eq!(sra_width(Width::B4, 8), Width::B3);
        assert_eq!(sra_width(Width::B1, 31), Width::B1);
        for w in Width::ALL {
            assert_eq!(shl_width(w, 0), w);
            assert_eq!(srl_width(w, 0), w);
            assert_eq!(sra_width(w, 0), w);
        }
    }

    #[test]
    fn unsigned_muldiv_gets_no_bound() {
        let t0 = Reg::new(8);
        let mut s = state_with(t0, Width::B1);
        transfer(&Instruction::r3(Op::Multu, t0, t0, reg::ZERO), 0, &mut s);
        assert_eq!(s.lo, Width::B4);
        assert_eq!(s.hi, Width::B4);
    }

    #[test]
    fn signed_mult_narrow_inputs_keep_hi_pure_sign() {
        let t0 = Reg::new(8);
        let t1 = Reg::new(9);
        let mut s = state_with(t0, Width::B2);
        s.set(t1, Width::B2);
        transfer(&Instruction::r3(Op::Mult, t0, t0, t1), 0, &mut s);
        assert_eq!(s.lo, Width::B4);
        assert_eq!(s.hi, Width::B1);
    }

    #[test]
    fn link_value_is_the_exact_return_address() {
        let mut s = AbsState::kernel_boot(0x7fff_fff0, 0x1000_0000);
        let b = transfer(
            &Instruction::jump(Op::Jal, 0x0010_0000),
            0x0040_0000,
            &mut s,
        );
        assert_eq!(b.result, Some(Width::of_const(0x0040_0004)));
        assert_eq!(s.get(reg::RA), Width::of_const(0x0040_0004));
    }
}
