//! RAII span timers: start one at the top of a scope, and on drop it
//! records the scope's wall time (in microseconds) into the registry
//! histogram of the same name, plus one JSONL event when a sink is
//! attached.

use crate::histogram::Histogram;
use crate::registry::{Registry, SinkState};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// A live span; created by [`Registry::span`](crate::Registry::span) or the
/// [`span!`](crate::span) macro. Dropping it records the measurement.
pub struct Span {
    name: String,
    start: Instant,
    histogram: Histogram,
    sink: Arc<SinkState>,
    epoch: Instant,
    /// Only populated when the sink is active — fields exist solely for the
    /// JSONL stream, so without a sink they cost nothing.
    fields: Vec<(&'static str, String)>,
}

impl Span {
    pub(crate) fn new(
        name: &str,
        histogram: Histogram,
        sink: Arc<SinkState>,
        epoch: Instant,
    ) -> Span {
        Span {
            name: name.to_owned(),
            start: Instant::now(),
            histogram,
            sink,
            epoch,
            fields: Vec::new(),
        }
    }

    /// Attaches a key/value field to the span's JSONL event. A no-op unless
    /// an event sink is attached (the histogram never sees fields).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: &dyn std::fmt::Display) -> Span {
        if Registry::is_sink_active(&self.sink) {
            self.fields.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.histogram.observe(us);
        if Registry::is_sink_active(&self.sink) {
            let ts = u64::try_from(self.start.duration_since(self.epoch).as_micros())
                .unwrap_or(u64::MAX);
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"span\": \"{}\", \"ts_us\": {ts}, \"dur_us\": {us}",
                escape(&self.name)
            );
            for (key, value) in &self.fields {
                let _ = write!(line, ", \"{}\": \"{}\"", escape(key), escape(value));
            }
            line.push('}');
            Registry::log_line(&self.sink, &line);
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Starts an RAII span on the [`global()`](crate::global) registry.
///
/// ```
/// let job_id = 7u64;
/// {
///     let _span = sigcomp_obs::span!("replay.job", job_id);
///     // ... timed work ...
/// } // drop records into the "replay.job" histogram
/// ```
///
/// Forms: `span!("name")`, `span!("name", field_ident)` (field named after
/// the variable), and `span!("name", key = expr)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::global().span($name)$(.field(stringify!($key), &$value))+
    };
    ($name:expr, $($key:ident),+ $(,)?) => {
        $crate::global().span($name)$(.field(stringify!($key), &$key))+
    };
}

#[cfg(test)]
mod tests {
    use crate::Registry;
    use std::sync::{Arc, Mutex};

    /// A Write sink the test can inspect afterwards.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn span_records_into_histogram_on_drop() {
        let r = Registry::new();
        {
            let _span = r.span("unit.work");
        }
        {
            let _span = r.span("unit.work");
        }
        assert_eq!(r.snapshot().histograms["unit.work"].count, 2);
    }

    #[test]
    fn spans_emit_jsonl_events_with_fields_when_sink_attached() {
        let r = Registry::new();
        let sink = Shared::default();
        r.set_jsonl_writer(Box::new(sink.clone()));
        {
            let _span = r
                .span("unit.work")
                .field("job_id", &42)
                .field("note", &"a\"b");
        }
        let log = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let mut lines = log.lines();
        assert_eq!(lines.next(), Some("{\"obs_log\": \"sigcomp-obs v1\"}"));
        let event = lines.next().expect("span event line");
        assert!(event.starts_with("{\"span\": \"unit.work\", \"ts_us\": "));
        assert!(event.contains("\"dur_us\": "));
        assert!(event.contains("\"job_id\": \"42\""));
        assert!(event.contains("\"note\": \"a\\\"b\""));
    }

    #[test]
    fn fields_are_skipped_without_a_sink() {
        let r = Registry::new();
        let span = r.span("unit.work").field("job_id", &42);
        assert!(span.fields.is_empty());
    }
}
