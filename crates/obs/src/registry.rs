//! The metric registry: named counters, gauges, and histograms behind
//! cheap cloneable handles, plus the optional JSONL structured-event sink
//! that spans write through.
//!
//! Handle lookup takes a short mutex on a `BTreeMap`; the handles
//! themselves are `Arc`-backed atomics, so hot paths fetch a handle once
//! and then record lock-free. A process-wide registry is available via
//! [`global()`](crate::global) — workers snapshot it onto their stdout
//! protocol, parents merge shard snapshots back into theirs.

use crate::histogram::Histogram;
use crate::snapshot::{Snapshot, SnapshotError};
use crate::span::Span;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic counter handle. Clones share the same underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins gauge handle. Clones share the same atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher than the current one.
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state for the optional JSONL event sink. The `active` flag is the
/// span fast path: when no sink is attached, emitting an event is one
/// relaxed load.
pub(crate) struct SinkState {
    pub(crate) active: AtomicBool,
    writer: Mutex<Option<Box<dyn Write + Send>>>,
}

/// A registry of named metrics. Independent registries are fully isolated —
/// tests construct their own instead of asserting on [`global()`]
/// (`crate::global`), which other threads share.
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    pub(crate) sink: Arc<SinkState>,
    pub(crate) epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty() && name.chars().all(|c| !c.is_whitespace()),
        "metric names must be non-empty and whitespace-free: {name:?}"
    );
}

impl Registry {
    /// An empty registry with no event sink.
    #[must_use]
    pub fn new() -> Registry {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            sink: Arc::new(SinkState {
                active: AtomicBool::new(false),
                writer: Mutex::new(None),
            }),
            epoch: Instant::now(),
        }
    }

    /// Returns (creating on first use) the counter with this name.
    ///
    /// # Panics
    /// On names containing whitespace — they would corrupt the wire form.
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut map = self.counters.lock().expect("obs counter map poisoned");
        if let Some(c) = map.get(name) {
            c.clone()
        } else {
            let c = Counter::default();
            map.insert(name.to_owned(), c.clone());
            c
        }
    }

    /// Returns (creating on first use) the gauge with this name.
    ///
    /// # Panics
    /// On names containing whitespace.
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut map = self.gauges.lock().expect("obs gauge map poisoned");
        if let Some(g) = map.get(name) {
            g.clone()
        } else {
            let g = Gauge::default();
            map.insert(name.to_owned(), g.clone());
            g
        }
    }

    /// Returns (creating on first use) the histogram with this name.
    /// The first caller fixes the bucket bounds; later callers receive the
    /// existing histogram regardless of the bounds they pass.
    ///
    /// # Panics
    /// On names containing whitespace, or unusable bounds at creation.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        check_name(name);
        let mut map = self.histograms.lock().expect("obs histogram map poisoned");
        if let Some(h) = map.get(name) {
            h.clone()
        } else {
            let h = Histogram::new(bounds);
            map.insert(name.to_owned(), h.clone());
            h
        }
    }

    /// Registers an externally constructed histogram under `name`, so a
    /// subsystem can own its histogram directly (no registry lookups on the
    /// hot path) while still appearing in snapshots. Replaces any previous
    /// histogram with that name.
    ///
    /// # Panics
    /// On names containing whitespace.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        check_name(name);
        self.histograms
            .lock()
            .expect("obs histogram map poisoned")
            .insert(name.to_owned(), histogram.clone());
    }

    /// Starts an RAII span timer that records its wall time (µs) into the
    /// histogram named `name` on drop, and emits a JSONL event if a sink is
    /// attached. Prefer the [`span!`](crate::span) macro, which targets the
    /// global registry and attaches fields.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        Span::new(
            name,
            self.histogram(name, crate::DEFAULT_SPAN_BOUNDS_US),
            Arc::clone(&self.sink),
            self.epoch,
        )
    }

    /// Freezes every metric into a [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs counter map poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("obs gauge map poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs histogram map poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Folds a shard snapshot into the live registry: counters add, gauges
    /// take the max, histogram buckets add. Histograms unknown to this
    /// registry are created with the snapshot's bounds.
    ///
    /// # Errors
    /// If a histogram exists here with different bounds.
    pub fn merge_snapshot(&self, snap: &Snapshot) -> Result<(), SnapshotError> {
        for (name, value) in &snap.counters {
            self.counter(name).add(*value);
        }
        for (name, value) in &snap.gauges {
            self.gauge(name).set_max(*value);
        }
        for (name, hist) in &snap.histograms {
            let live = self.histogram(name, &hist.bounds);
            live.absorb(hist)
                .map_err(|detail| SnapshotError::BoundsMismatch {
                    name: name.clone(),
                    detail,
                })?;
        }
        Ok(())
    }

    /// Attaches a JSONL event sink writing to `path` (created or
    /// truncated). The first line is a schema header; every span drop then
    /// appends one event object.
    ///
    /// # Errors
    /// If the file cannot be created.
    pub fn open_jsonl_log(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.set_jsonl_writer(Box::new(std::io::BufWriter::new(file)));
        Ok(())
    }

    /// Attaches an arbitrary JSONL sink (used by tests; [`Registry::
    /// open_jsonl_log`] is the file-backed convenience).
    pub fn set_jsonl_writer(&self, mut writer: Box<dyn Write + Send>) {
        let _ = writeln!(writer, "{{\"obs_log\": \"sigcomp-obs v1\"}}");
        let _ = writer.flush();
        *self.sink.writer.lock().expect("obs sink poisoned") = Some(writer);
        self.sink.active.store(true, Ordering::Release);
    }

    /// Writes one pre-rendered JSONL line to the sink, if attached.
    pub(crate) fn is_sink_active(sink: &SinkState) -> bool {
        sink.active.load(Ordering::Acquire)
    }

    pub(crate) fn log_line(sink: &SinkState, line: &str) {
        if let Some(writer) = sink.writer.lock().expect("obs sink poisoned").as_mut() {
            let _ = writeln!(writer, "{line}");
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage_and_snapshots_see_them() {
        let r = Registry::new();
        let a = r.counter("jobs");
        let b = r.counter("jobs");
        a.incr();
        b.add(2);
        r.gauge("workers").set(4);
        r.gauge("workers").set_max(2); // lower: no effect
        let snap = r.snapshot();
        assert_eq!(snap.counter("jobs"), 3);
        assert_eq!(snap.gauges["workers"], 4);
    }

    #[test]
    fn merge_snapshot_folds_counters_gauges_histograms() {
        let parent = Registry::new();
        parent.counter("jobs").add(5);
        parent.histogram("lat", &[10]).observe(3);

        let shard = Registry::new();
        shard.counter("jobs").add(7);
        shard.gauge("workers").set(9);
        shard.histogram("lat", &[10]).observe(30);

        parent.merge_snapshot(&shard.snapshot()).unwrap();
        let snap = parent.snapshot();
        assert_eq!(snap.counter("jobs"), 12);
        assert_eq!(snap.gauges["workers"], 9);
        assert_eq!(snap.histograms["lat"].count, 2);

        // Bounds conflicts are surfaced, not silently dropped.
        let odd = Registry::new();
        odd.histogram("lat", &[99]).observe(1);
        assert!(parent.merge_snapshot(&odd.snapshot()).is_err());
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn names_with_whitespace_are_rejected() {
        let _ = Registry::new().counter("bad name");
    }
}
