//! Point-in-time registry snapshots: plain data with a commutative merge
//! and a line-oriented wire form, so worker shards can ship their metrics
//! over the existing stdout protocol and the parent can fold them in any
//! order with identical results.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Why a snapshot merge or wire parse was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Two histograms with the same name disagree on bucket bounds.
    BoundsMismatch {
        /// Histogram name.
        name: String,
        /// Underlying mismatch description.
        detail: String,
    },
    /// A wire line did not match the `counter|gauge|hist` grammar.
    Malformed {
        /// The offending line, verbatim.
        line: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BoundsMismatch { name, detail } => {
                write!(f, "histogram '{name}': {detail}")
            }
            SnapshotError::Malformed { line, reason } => {
                write!(f, "bad obs line '{line}': {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A frozen copy of a [`Registry`](crate::Registry): every counter, gauge,
/// and histogram by name, in deterministic (sorted) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Convenience: a counter's value, 0 when absent.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters and histogram buckets sum,
    /// gauges take the maximum (a gauge from any shard is a sample of the
    /// same quantity, and max is the only commutative choice that never
    /// under-reports). Order-independent by construction.
    ///
    /// # Errors
    /// If a histogram name appears in both with different bucket bounds.
    pub fn merge(&mut self, other: &Snapshot) -> Result<(), SnapshotError> {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
                Some(mine) => {
                    mine.merge(hist)
                        .map_err(|detail| SnapshotError::BoundsMismatch {
                            name: name.clone(),
                            detail,
                        })?;
                }
            }
        }
        Ok(())
    }

    /// Serializes to the line-oriented wire form:
    ///
    /// ```text
    /// counter NAME VALUE
    /// gauge NAME VALUE
    /// hist NAME count=N sum=S min=M max=X bounds=a,b,c buckets=w,x,y,z
    /// ```
    ///
    /// Names must not contain whitespace (enforced at registration).
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} min={} max={} bounds={} buckets={}",
                h.count,
                h.sum,
                h.min,
                h.max,
                join(&h.bounds),
                join(&h.buckets),
            );
        }
        out
    }

    /// Parses one wire line (as produced by [`Snapshot::to_wire`]) into the
    /// snapshot. Rejects anything that does not match the grammar — the
    /// worker protocol is strict by design.
    ///
    /// # Errors
    /// [`SnapshotError::Malformed`] with the offending line and reason.
    pub fn parse_wire_line(&mut self, line: &str) -> Result<(), SnapshotError> {
        let bad = |reason: &str| SnapshotError::Malformed {
            line: line.to_owned(),
            reason: reason.to_owned(),
        };
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or_else(|| bad("empty line"))?;
        let name = parts.next().ok_or_else(|| bad("missing metric name"))?;
        match kind {
            "counter" | "gauge" => {
                let value: u64 = parts
                    .next()
                    .ok_or_else(|| bad("missing value"))?
                    .parse()
                    .map_err(|_| bad("value is not a u64"))?;
                if parts.next().is_some() {
                    return Err(bad("trailing tokens"));
                }
                if kind == "counter" {
                    *self.counters.entry(name.to_owned()).or_insert(0) += value;
                } else {
                    let slot = self.gauges.entry(name.to_owned()).or_insert(0);
                    *slot = (*slot).max(value);
                }
            }
            "hist" => {
                let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
                for tok in parts {
                    let (key, value) = tok
                        .split_once('=')
                        .ok_or_else(|| bad("token without '='"))?;
                    if fields.insert(key, value).is_some() {
                        return Err(bad("duplicate field"));
                    }
                }
                let scalar = |key: &str| -> Result<u64, SnapshotError> {
                    fields
                        .get(key)
                        .ok_or_else(|| bad(&format!("missing field '{key}'")))?
                        .parse()
                        .map_err(|_| bad(&format!("field '{key}' is not a u64")))
                };
                let list = |key: &str| -> Result<Vec<u64>, SnapshotError> {
                    fields
                        .get(key)
                        .ok_or_else(|| bad(&format!("missing field '{key}'")))?
                        .split(',')
                        .map(|v| {
                            v.parse()
                                .map_err(|_| bad(&format!("field '{key}' has a non-u64 entry")))
                        })
                        .collect()
                };
                let parsed = HistogramSnapshot {
                    bounds: list("bounds")?,
                    buckets: list("buckets")?,
                    count: scalar("count")?,
                    sum: scalar("sum")?,
                    min: scalar("min")?,
                    max: scalar("max")?,
                };
                if parsed.buckets.len() != parsed.bounds.len() + 1 {
                    return Err(bad("bucket count must be bounds count + 1"));
                }
                if !parsed.bounds.windows(2).all(|w| w[0] < w[1]) {
                    return Err(bad("bounds are not strictly increasing"));
                }
                match self.histograms.get_mut(name) {
                    None => {
                        self.histograms.insert(name.to_owned(), parsed);
                    }
                    Some(mine) => {
                        mine.merge(&parsed)
                            .map_err(|detail| SnapshotError::BoundsMismatch {
                                name: name.to_owned(),
                                detail,
                            })?;
                    }
                }
            }
            other => return Err(bad(&format!("unknown metric kind '{other}'"))),
        }
        Ok(())
    }

    /// Parses a whole wire document (one line per metric).
    ///
    /// # Errors
    /// On the first malformed line.
    pub fn from_wire(text: &str) -> Result<Snapshot, SnapshotError> {
        let mut snap = Snapshot::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            snap.parse_wire_line(line)?;
        }
        Ok(snap)
    }

    /// Renders the snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{name}\": {value}");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{name}\": {value}");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {}", hist.to_json());
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn shard(counter: u64, observations: &[u64]) -> Snapshot {
        let r = Registry::new();
        r.counter("jobs").add(counter);
        r.gauge("workers").set(counter + 1);
        let h = r.histogram("lat", &[10, 100]);
        for &v in observations {
            h.observe(v);
        }
        r.snapshot()
    }

    #[test]
    fn wire_round_trips_exactly() {
        let snap = shard(3, &[5, 50, 500]);
        let parsed = Snapshot::from_wire(&snap.to_wire()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn merge_is_order_independent() {
        let shards = [shard(1, &[5]), shard(10, &[50, 50]), shard(7, &[500])];
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 2, 0]];
        let mut merged: Vec<Snapshot> = Vec::new();
        for order in orders {
            let mut total = Snapshot::default();
            for i in order {
                total.merge(&shards[i]).unwrap();
            }
            merged.push(total);
        }
        assert_eq!(merged[0], merged[1]);
        assert_eq!(merged[0], merged[2]);
        assert_eq!(merged[0].counter("jobs"), 18);
        assert_eq!(merged[0].gauges["workers"], 11);
        let h = &merged[0].histograms["lat"];
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets, vec![1, 2, 1]);
    }

    #[test]
    fn malformed_wire_lines_are_rejected_with_reasons() {
        let mut s = Snapshot::default();
        for (line, needle) in [
            ("counter x", "missing value"),
            ("counter x 1 2", "trailing tokens"),
            ("gauge x nope", "not a u64"),
            ("widget x 1", "unknown metric kind"),
            (
                "hist h count=1 sum=1 min=1 max=1 bounds=10",
                "missing field 'buckets'",
            ),
            (
                "hist h count=1 sum=1 min=1 max=1 bounds=10 buckets=1",
                "bucket count",
            ),
            (
                "hist h count=1 sum=1 min=1 max=1 bounds=10,5 buckets=0,1,0",
                "strictly increasing",
            ),
        ] {
            let err = s.parse_wire_line(line).unwrap_err().to_string();
            assert!(err.contains(needle), "line '{line}': got '{err}'");
        }
    }

    #[test]
    fn merging_mismatched_bounds_fails() {
        let a = shard(1, &[5]);
        let r = Registry::new();
        r.histogram("lat", &[7]).observe(1);
        let mut total = a;
        let err = total.merge(&r.snapshot()).unwrap_err();
        assert!(err.to_string().contains("lat"));
    }
}
