//! `sigcomp-obs`: the workspace's dependency-free observability substrate.
//!
//! Three pieces, all `std`-only:
//!
//! - a [`Registry`] of named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s with p50/p95/p99 estimation, and [`Snapshot`]s whose
//!   merge is commutative — shard registries fold into the parent's in any
//!   order with identical totals and quantiles;
//! - RAII [`Span`] timers ([`span!`]) that record wall time into the
//!   registry and optionally emit a JSONL structured-event stream
//!   (`--obs-log FILE` in the CLI);
//! - a line-oriented wire form ([`Snapshot::to_wire`]) so `repro worker`
//!   subprocesses can ship their metrics over the existing verified stdout
//!   protocol.
//!
//! Hot paths fetch handles once and record lock-free; registry lookups take
//! a short mutex. Tests should build their own [`Registry`] rather than
//! asserting exact values on [`global()`], which every thread in the
//! process shares.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod registry;
mod snapshot;
mod span;

pub use histogram::{bucket_label, Histogram, HistogramSnapshot, DEFAULT_SPAN_BOUNDS_US};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{Snapshot, SnapshotError};
pub use span::Span;

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Created on first use; never torn down.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_targets_the_global_registry() {
        {
            let job_id = 9u64;
            let _a = crate::span!("obs.selftest");
            let _b = crate::span!("obs.selftest", job_id);
            let _c = crate::span!("obs.selftest", id = job_id + 1);
        }
        // ≥ 3, not == 3: the global registry is shared with other tests.
        assert!(crate::global().snapshot().histograms["obs.selftest"].count >= 3);
    }
}
