//! Fixed-bucket histograms with mergeable snapshots and interpolated
//! quantiles.
//!
//! Buckets are defined by a strictly increasing slice of exclusive upper
//! bounds (a value lands in the first bucket whose bound it is *below*),
//! plus an implicit overflow bucket. Observation is a handful of relaxed
//! atomic adds — safe to share across threads and cheap enough for hot
//! loops. Snapshots carry the bounds with them so shard snapshots can be
//! merged and re-quantiled without access to the live histogram.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bucket bounds (exclusive, microseconds) for span/latency
/// histograms: five sub-millisecond buckets, then roughly half-decade steps
/// out to ten seconds.
pub const DEFAULT_SPAN_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000,
];

struct HistogramInner {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A shareable fixed-bucket histogram. Cloning is cheap (`Arc` inside) and
/// all clones observe into the same storage.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.inner.bounds)
            .field("count", &self.inner.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Histogram {
    /// Creates a histogram from exclusive upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing — bounds are
    /// compile-time constants in practice, so this is a programming error,
    /// not an input error.
    #[must_use]
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// The exclusive upper bounds this histogram was built with.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let i = bucket_index(&self.inner.bounds, value);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a clamped sum skews the mean, a wrapped
        // one fabricates it.
        let _ = self
            .inner
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.inner.min.fetch_min(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Captures the current state. Relaxed loads: concurrent observers may
    /// be mid-flight, which shifts a statistic by an observation, never
    /// corrupts it.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            buckets: self.inner.buckets.iter().map(load).collect(),
            count: load(&self.inner.count),
            sum: load(&self.inner.sum),
            min: load(&self.inner.min),
            max: load(&self.inner.max),
        }
    }

    /// Folds a snapshot (e.g. from a worker shard) into the live histogram.
    ///
    /// # Errors
    /// If the snapshot's bounds differ from this histogram's.
    pub fn absorb(&self, snap: &HistogramSnapshot) -> Result<(), String> {
        if snap.bounds != self.inner.bounds {
            return Err(format!(
                "histogram bounds mismatch: have {:?}, snapshot has {:?}",
                self.inner.bounds, snap.bounds
            ));
        }
        for (slot, &n) in self.inner.buckets.iter().zip(&snap.buckets) {
            slot.fetch_add(n, Ordering::Relaxed);
        }
        self.inner.count.fetch_add(snap.count, Ordering::Relaxed);
        let _ = self
            .inner
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(snap.sum))
            });
        if snap.count > 0 {
            self.inner.min.fetch_min(snap.min, Ordering::Relaxed);
            self.inner.max.fetch_max(snap.max, Ordering::Relaxed);
        }
        Ok(())
    }
}

fn bucket_index(bounds: &[u64], value: u64) -> usize {
    bounds
        .iter()
        .position(|&bound| value < bound)
        .unwrap_or(bounds.len())
}

/// A point-in-time copy of a [`Histogram`]: plain data, safe to serialize,
/// merge, and quantile offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Exclusive upper bounds, copied from the source histogram.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given bounds.
    #[must_use]
    pub fn empty(bounds: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Merges another snapshot into this one. Commutative and associative
    /// (sums, mins, and maxes), so shard snapshots can fold in any order
    /// and produce identical totals and quantiles.
    ///
    /// # Errors
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank, clamped to the observed
    /// `[min, max]`. Returns 0.0 for an empty histogram. Deterministic: a
    /// pure function of the snapshot, so merge order cannot change it.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // Overflow bucket: use the observed max as its ceiling.
                    self.max.max(self.bounds[self.bounds.len() - 1])
                };
                #[allow(clippy::cast_precision_loss)]
                let value =
                    lo as f64 + (hi.saturating_sub(lo)) as f64 * ((rank - seen) as f64 / n as f64);
                #[allow(clippy::cast_precision_loss)]
                return value.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.max as f64
        }
    }

    /// Human/JSON label for bucket `i`: `le_<bound>` scaled to `us`, `ms`,
    /// or `s`; the overflow bucket is `gt_<last bound>`.
    #[must_use]
    pub fn bucket_label(&self, i: usize) -> String {
        bucket_label(&self.bounds, i)
    }

    /// Renders the snapshot as a JSON object with count, sum, min/max,
    /// p50/p95/p99, and one field per labelled bucket.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}",
            self.count,
            self.sum,
            if self.count == 0 { 0 } else { self.min },
            self.max
        );
        for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let _ = write!(out, ", \"{label}\": {:.1}", self.quantile(q));
        }
        for (i, n) in self.buckets.iter().enumerate() {
            let _ = write!(out, ", \"{}\": {n}", self.bucket_label(i));
        }
        out.push('}');
        out
    }
}

/// Label for bucket `i` of a histogram with the given bounds (see
/// [`HistogramSnapshot::bucket_label`]).
#[must_use]
pub fn bucket_label(bounds: &[u64], i: usize) -> String {
    if i < bounds.len() {
        format!("le_{}", scale(bounds[i]))
    } else {
        format!("gt_{}", scale(bounds[bounds.len() - 1]))
    }
}

fn scale(us: u64) -> String {
    if us >= 1_000_000 && us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us >= 1_000 && us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_upper_exclusive() {
        let h = Histogram::new(&[10, 100]);
        h.observe(9); // < 10
        h.observe(10); // < 100
        h.observe(99); // < 100
        h.observe(100); // overflow
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 2, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 9);
        assert_eq!(s.max, 100);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn labels_scale_units() {
        let s = HistogramSnapshot::empty(&[50, 1_000, 2_500, 1_000_000]);
        assert_eq!(s.bucket_label(0), "le_50us");
        assert_eq!(s.bucket_label(1), "le_1ms");
        assert_eq!(s.bucket_label(2), "le_2500us");
        assert_eq!(s.bucket_label(3), "le_1s");
        assert_eq!(s.bucket_label(4), "gt_1s");
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let h = Histogram::new(&[100, 200, 400]);
        for v in [50, 150, 150, 350] {
            h.observe(v);
        }
        let s = h.snapshot();
        // p50 rank = 2 of 4 → second obs, in the [100, 200) bucket.
        let p50 = s.quantile(0.50);
        assert!((100.0..200.0).contains(&p50), "p50 = {p50}");
        // p99 rank = 4 → [200, 400) bucket, clamped to max 350.
        let p99 = s.quantile(0.99);
        assert!((200.0..=350.0).contains(&p99), "p99 = {p99}");
        assert_eq!(HistogramSnapshot::empty(&[10]).quantile(0.5), 0.0);
    }

    #[test]
    fn merge_rejects_bound_mismatch_and_sums_otherwise() {
        let a = Histogram::new(&[10, 100]);
        a.observe(5);
        let b = Histogram::new(&[10, 100]);
        b.observe(50);
        b.observe(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot()).unwrap();
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 555);
        assert_eq!(m.min, 5);
        assert_eq!(m.max, 500);
        assert_eq!(m.buckets, vec![1, 1, 1]);

        let odd = HistogramSnapshot::empty(&[7]);
        assert!(m.merge(&odd).is_err());
    }

    #[test]
    fn absorb_matches_snapshot_merge() {
        let live = Histogram::new(&[10, 100]);
        live.observe(3);
        let shard = Histogram::new(&[10, 100]);
        shard.observe(42);
        shard.observe(4_000);
        live.absorb(&shard.snapshot()).unwrap();
        let s = live.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 4_000);
        assert!(live.absorb(&HistogramSnapshot::empty(&[9])).is_err());
    }
}
