//! Static pre-screening of sweep jobs (`--static-prune`).
//!
//! Before dispatching a sweep, the abstract-interpretation width engine in
//! [`sigcomp_static`] can bound every kernel workload's operand widths
//! without simulating a single cycle. Configurations whose workload is
//! statically proven to carry almost no narrow values cannot profit from a
//! significance-compressed datapath, so the sweep may skip them.
//!
//! The screen is strictly opt-in and preserves the merge invariant:
//!
//! * kept jobs stay in enumeration order, so their outcomes (and CSV/JSON
//!   rows) are **byte-identical** to the corresponding rows of an unpruned
//!   run;
//! * pruned jobs are returned as explicit [`PrunedJob`] decisions — callers
//!   report them, they are never silently dropped;
//! * baseline-organization jobs are always kept (they anchor every
//!   energy-saving comparison), and trace-file jobs are always kept (there
//!   is no program image to analyze, only a recorded stream).

use crate::spec::{JobSpec, TraceSource};
use sigcomp_pipeline::OrgKind;
use sigcomp_static::{analyze_program, EntryState, WidthReport};
use sigcomp_workloads::find;
use std::collections::BTreeMap;

/// Why a job survived or skipped the static screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneReason {
    /// Predicted saving fell below the requested threshold.
    BelowThreshold {
        /// The statically predicted saving, in percent.
        predicted_pct: f64,
    },
}

/// One job the screen removed, with the evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrunedJob {
    /// The job that will not run.
    pub spec: JobSpec,
    /// Why it was removed.
    pub reason: PruneReason,
}

/// The outcome of pre-screening a job list.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Jobs to run, in their original enumeration order.
    pub kept: Vec<JobSpec>,
    /// Jobs removed by the screen, in their original enumeration order.
    pub pruned: Vec<PrunedJob>,
    /// Static width reports per analyzed workload (sorted by name), for
    /// reporting alongside the sweep.
    pub reports: Vec<WidthReport>,
}

impl PruneOutcome {
    /// `true` when the screen removed at least one job.
    #[must_use]
    pub fn any_pruned(&self) -> bool {
        !self.pruned.is_empty()
    }
}

/// Pre-screens `jobs`, removing non-baseline kernel configurations whose
/// workload's statically predicted saving is below `min_saving_pct`
/// (percent, `0.0..`). See the module docs for the invariants.
#[must_use]
pub fn static_prune(jobs: &[JobSpec], min_saving_pct: f64) -> PruneOutcome {
    // One analysis per (workload, size) pair, not per job: the bound is a
    // property of the program, not of the scheme/org axes.
    let mut savings: BTreeMap<(&'static str, &'static str), Option<f64>> = BTreeMap::new();
    let mut reports: BTreeMap<(&'static str, &'static str), WidthReport> = BTreeMap::new();
    let mut outcome = PruneOutcome::default();

    for &job in jobs {
        let keep = match job.source {
            // Recorded streams have no program image to analyze.
            TraceSource::File { .. } => true,
            // The baseline anchors every saving comparison; never prune it.
            TraceSource::Kernel if job.org == OrgKind::Baseline32 => true,
            TraceSource::Kernel => {
                let key = (job.workload, job.size.name());
                let predicted = *savings.entry(key).or_insert_with(|| {
                    find(job.workload, job.size).map(|bench| {
                        let analysis = analyze_program(bench.program(), EntryState::KernelBoot);
                        let report = WidthReport::from_analysis(job.workload, &analysis);
                        let saving = report.predicted_saving() * 100.0;
                        reports.insert(key, report);
                        saving
                    })
                });
                match predicted {
                    // Unknown workloads are kept; the sweep itself will
                    // surface the error.
                    None => true,
                    Some(pct) => {
                        if pct >= min_saving_pct {
                            true
                        } else {
                            outcome.pruned.push(PrunedJob {
                                spec: job,
                                reason: PruneReason::BelowThreshold { predicted_pct: pct },
                            });
                            false
                        }
                    }
                }
            }
        };
        if keep {
            outcome.kept.push(job);
        }
    }

    outcome.reports = reports.into_values().collect();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use sigcomp_workloads::WorkloadSize;

    fn jobs() -> Vec<JobSpec> {
        SweepSpec::paper(WorkloadSize::Tiny)
            .workloads(&["rawcaudio", "pgp"])
            .enumerate()
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let jobs = jobs();
        let outcome = static_prune(&jobs, 0.0);
        assert_eq!(outcome.kept, jobs);
        assert!(!outcome.any_pruned());
        assert_eq!(outcome.reports.len(), 2);
    }

    #[test]
    fn impossible_threshold_keeps_only_the_baseline() {
        let jobs = jobs();
        let outcome = static_prune(&jobs, 101.0);
        assert!(outcome.any_pruned());
        assert!(outcome.kept.iter().all(|j| j.org == OrgKind::Baseline32));
        assert_eq!(outcome.kept.len() + outcome.pruned.len(), jobs.len());
        // Order preservation: kept is a subsequence of the original list.
        let mut it = jobs.iter();
        for k in &outcome.kept {
            assert!(it.any(|j| j == k), "kept job out of enumeration order");
        }
    }

    #[test]
    fn pruned_jobs_carry_their_evidence() {
        let outcome = static_prune(&jobs(), 101.0);
        for p in &outcome.pruned {
            let PruneReason::BelowThreshold { predicted_pct } = p.reason;
            assert!(predicted_pct < 101.0);
            assert!(predicted_pct >= 0.0);
        }
    }
}
