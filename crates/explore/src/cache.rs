//! The on-disk result cache.
//!
//! Each cache entry is one file named after the job's content hash
//! ([`crate::JobSpec::job_id`]) holding the job's integer counters in a
//! versioned `key=value` text format. Because the job hash covers every
//! parameter that influences the result (plus
//! [`crate::spec::SWEEP_FORMAT_VERSION`]), a hit can be substituted for a
//! simulation without changing a single output bit. Unreadable or
//! version-mismatched entries are treated as misses and overwritten.

use crate::sweep::JobMetrics;
use sigcomp::{ActivityReport, StageActivity};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// v2: entries carry the gated-byte-cycle counters the leakage-aware energy
// model reads. Bumping the header (not the job hash) retires v1 entries as
// clean misses while keeping every cache *key* stable — the simulation
// semantics, and hence the job identities, did not change.
const HEADER: &str = "sigcomp-explore v2";

/// A directory of cached job results, keyed by content hash.
///
/// The handle is just the directory path, so clones are cheap and any number
/// of handles — across threads *and* processes (a running server plus a CLI
/// sweep, say) — may share one directory: [`ResultCache::store`] publishes
/// entries atomically and [`ResultCache::load`] treats anything unreadable
/// as a miss.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultCache { root })
    }

    /// The cache directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}.job"))
    }

    /// Loads the metrics cached under `key`, or `None` on a miss (including
    /// corrupt or version-mismatched entries).
    ///
    /// Every outcome bumps one of the global `explore.cache.{hit,miss,
    /// retired}` counters (see [`cache_stats`]): `retired` means a file was
    /// present but unreadable or from another format version — it will be
    /// re-simulated and overwritten.
    #[must_use]
    pub fn load(&self, key: u64) -> Option<JobMetrics> {
        let obs = sigcomp_obs::global();
        let Ok(text) = fs::read_to_string(self.entry_path(key)) else {
            obs.counter("explore.cache.miss").incr();
            return None;
        };
        if let Some(m) = parse_metrics(&text) {
            obs.counter("explore.cache.hit").incr();
            Some(m)
        } else {
            obs.counter("explore.cache.retired").incr();
            None
        }
    }

    /// [`ResultCache::load`] without the counter bumps. Used by the
    /// subprocess and fleet backends when re-reading entries the workers
    /// just published — those reads are bookkeeping, not cache traffic, and
    /// counting them would make a sharded sweep's merged totals disagree
    /// with the same sweep run in-process.
    #[must_use]
    pub fn load_unobserved(&self, key: u64) -> Option<JobMetrics> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        parse_metrics(&text)
    }

    /// Stores `metrics` under `key`, atomically (write-to-temp + rename), so
    /// concurrent workers and interrupted runs never leave a torn entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers may treat a failed store as
    /// merely "not cached".
    pub fn store(&self, key: u64, metrics: &JobMetrics) -> io::Result<()> {
        let result = self.store_entry_text(key, &format_metrics(metrics));
        if result.is_ok() {
            sigcomp_obs::global().counter("explore.cache.store").incr();
        }
        result
    }

    /// Stores an already-encoded entry ([`encode_entry`] text) under `key`,
    /// atomically, without bumping any traffic counter — the replication
    /// path fleet frontiers use to publish entries received from remote
    /// workers (the worker's own counters already accounted for the store;
    /// see [`ResultCache::load_unobserved`] for the symmetric read side).
    ///
    /// The text is validated first: replicating an undecodable entry would
    /// poison the cache with a file every later load retires.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if `text` does not decode as a
    /// current-version entry; otherwise the underlying I/O error.
    pub fn store_entry_text(&self, key: u64, text: &str) -> io::Result<()> {
        if parse_metrics(text).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("entry text for {key:016x} is not a valid {HEADER} entry"),
            ));
        }
        // Process id + per-process counter: two threads (or processes)
        // storing the same key never share a temp file.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.root.join(format!(
            ".{key:016x}.{:x}.{unique:x}.tmp",
            std::process::id()
        ));
        fs::write(&tmp, text)?;
        let result = fs::rename(&tmp, self.entry_path(key));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// The raw on-disk text of the entry under `key`, verbatim, or `None`
    /// when absent or not a valid current-version entry — what a worker
    /// ships over the fleet wire so the frontier can replicate the exact
    /// bytes (and verify their [`entry_digest`]) without re-encoding.
    #[must_use]
    pub fn entry_text(&self, key: u64) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        parse_metrics(&text).map(|_| text)
    }

    /// Number of entries currently stored.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be read.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "job") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the cache holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be read.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

fn format_metrics(m: &JobMetrics) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(HEADER);
    out.push('\n');
    let mut kv = |key: &str, value: u64| {
        out.push_str(key);
        out.push('=');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    kv("instructions", m.instructions);
    kv("cycles", m.cycles);
    kv("branches", m.branches);
    kv("stall_structural", m.stall_structural);
    kv("stall_data_hazard", m.stall_data_hazard);
    kv("stall_control", m.stall_control);
    for (name, stage) in m.activity.columns() {
        for (suffix, bits) in [
            ("compressed", stage.compressed_bits),
            ("baseline", stage.baseline_bits),
            ("gated", stage.gated_byte_cycles),
            ("total_lanes", stage.total_byte_cycles),
        ] {
            kv(&format!("{}.{suffix}", slug(name)), bits);
        }
    }
    out
}

fn parse_metrics(text: &str) -> Option<JobMetrics> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut get = |key: &str| -> Option<u64> {
        let line = lines.next()?;
        let (k, v) = line.split_once('=')?;
        if k != key {
            return None;
        }
        v.parse().ok()
    };
    let mut m = JobMetrics {
        instructions: get("instructions")?,
        cycles: get("cycles")?,
        branches: get("branches")?,
        stall_structural: get("stall_structural")?,
        stall_data_hazard: get("stall_data_hazard")?,
        stall_control: get("stall_control")?,
        activity: ActivityReport::default(),
    };
    let names: Vec<String> = m
        .activity
        .columns()
        .iter()
        .map(|(name, _)| slug(name))
        .collect();
    let mut stages = Vec::with_capacity(names.len());
    for name in &names {
        let compressed = get(&format!("{name}.compressed"))?;
        let baseline = get(&format!("{name}.baseline"))?;
        let gated = get(&format!("{name}.gated"))?;
        let total = get(&format!("{name}.total_lanes"))?;
        if gated > total {
            return None;
        }
        stages.push(StageActivity::with_gating(
            compressed, baseline, gated, total,
        ));
    }
    [
        &mut m.activity.fetch,
        &mut m.activity.rf_read,
        &mut m.activity.rf_write,
        &mut m.activity.alu,
        &mut m.activity.dcache_data,
        &mut m.activity.dcache_tag,
        &mut m.activity.pc_increment,
        &mut m.activity.latches,
    ]
    .into_iter()
    .zip(stages)
    .for_each(|(slot, stage)| *slot = stage);
    Some(m)
}

/// Encodes metrics as cache-entry text — the exact bytes
/// [`ResultCache::store`] writes to disk. Fleet workers use this to answer
/// a dispatch from in-memory results without needing a cache directory of
/// their own; the frontier replicates the text into its cache verbatim.
#[must_use]
pub fn encode_entry(metrics: &JobMetrics) -> String {
    format_metrics(metrics)
}

/// Decodes cache-entry text back into metrics, or `None` for anything
/// corrupt or from another format version (the inverse of
/// [`encode_entry`], same strictness as [`ResultCache::load`]).
#[must_use]
pub fn decode_entry(text: &str) -> Option<JobMetrics> {
    parse_metrics(text)
}

/// FNV-1a digest of an entry's text, the checksum the fleet protocol
/// carries beside every replicated entry so a frontier can verify the
/// bytes survived the wire before publishing them into its cache.
#[must_use]
pub fn entry_digest(text: &str) -> u64 {
    let mut h = sigcomp::hash::StableHasher::new();
    h.write_str(text);
    h.finish()
}

/// Normalizes an activity column name into the stable `[a-z0-9_]` key used
/// by cache entries — and, so the two formats can never diverge, by the
/// `sigcomp-serve` JSON responses.
#[must_use]
pub fn column_slug(name: &str) -> String {
    name.to_lowercase().replace([' ', '-'], "_")
}

use column_slug as slug;

/// Process-wide [`ResultCache`] traffic counters, sampled from the global
/// observability registry. In a sharded sweep the parent's numbers include
/// every worker's, folded in over the stdout protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads that decoded a current-version entry.
    pub hits: u64,
    /// Loads that found no entry file.
    pub misses: u64,
    /// Loads that found an unreadable or version-mismatched entry (it gets
    /// re-simulated and overwritten).
    pub retired: u64,
    /// Entries successfully published.
    pub stores: u64,
}

/// Samples the global `explore.cache.*` counters.
#[must_use]
pub fn cache_stats() -> CacheStats {
    let snap = sigcomp_obs::global().snapshot();
    CacheStats {
        hits: snap.counter("explore.cache.hit"),
        misses: snap.counter("explore.cache.miss"),
        retired: snap.counter("explore.cache.retired"),
        stores: snap.counter("explore.cache.store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> JobMetrics {
        let activity = ActivityReport {
            fetch: StageActivity::new(123, 456),
            rf_read: StageActivity::with_gating(7, 11, 5, 16),
            latches: StageActivity::new(99, 100),
            ..ActivityReport::default()
        };
        JobMetrics {
            instructions: 1_000_000,
            cycles: 1_790_000,
            branches: 120_000,
            stall_structural: 400_000,
            stall_data_hazard: 50_000,
            stall_control: 340_000,
            activity,
        }
    }

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("sigcomp-explore-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).expect("cache opens")
    }

    #[test]
    fn round_trips_exactly() {
        let cache = temp_cache("roundtrip");
        let metrics = sample_metrics();
        assert!(cache.load(42).is_none());
        cache.store(42, &metrics).expect("store succeeds");
        assert_eq!(cache.load(42), Some(metrics));
        assert_eq!(cache.len().unwrap(), 1);
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        cache.store(7, &sample_metrics()).expect("store succeeds");
        fs::write(cache.root().join("0000000000000007.job"), "garbage").unwrap();
        assert!(cache.load(7).is_none());
        fs::write(
            cache.root().join("0000000000000007.job"),
            "sigcomp-explore v0\ninstructions=1\n",
        )
        .unwrap();
        assert!(cache.load(7).is_none(), "other versions must not load");
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn concurrent_stores_and_loads_never_tear() {
        // A server batch and a CLI sweep sharing one cache directory must
        // never observe a half-written entry: every load is either a clean
        // miss or a bit-exact round trip of some store.
        let cache = temp_cache("concurrent");
        let distinct: Vec<JobMetrics> = (0u64..4)
            .map(|i| JobMetrics {
                instructions: 1_000 + i,
                cycles: 2_000 + i,
                ..sample_metrics()
            })
            .collect();
        std::thread::scope(|scope| {
            for metrics in &distinct {
                let cache = cache.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        cache.store(99, metrics).expect("store succeeds");
                    }
                });
            }
            for _ in 0..2 {
                let cache = cache.clone();
                let distinct = &distinct;
                scope.spawn(move || {
                    let mut hits = 0;
                    for _ in 0..200 {
                        if let Some(loaded) = cache.load(99) {
                            assert!(
                                distinct.contains(&loaded),
                                "torn entry observed: {loaded:?}"
                            );
                            hits += 1;
                        }
                    }
                    hits
                });
            }
        });
        // The winning store must be intact and no temp files may leak.
        assert!(distinct.contains(&cache.load(99).expect("entry exists")));
        assert_eq!(cache.len().unwrap(), 1);
        let leftovers = fs::read_dir(cache.root())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(leftovers, 0, "temp files must not leak");
        let _ = fs::remove_dir_all(cache.root());
    }

    #[test]
    fn text_format_is_stable() {
        let text = format_metrics(&sample_metrics());
        assert!(text.starts_with("sigcomp-explore v2\ninstructions=1000000\n"));
        assert!(text.contains("fetch.compressed=123"));
        assert!(text.contains("d_cache_data.compressed=0"));
        assert!(text.contains("rf_read.gated=5"));
        assert!(text.contains("rf_read.total_lanes=16"));
        assert_eq!(parse_metrics(&text), Some(sample_metrics()));
    }

    #[test]
    fn v1_entries_without_gating_counters_read_as_misses() {
        // A pre-leakage cache directory must be re-simulated, never
        // mis-decoded: the v1 header no longer matches.
        let cache = temp_cache("v1-migration");
        let mut v1 = String::from("sigcomp-explore v1\n");
        for (key, value) in [
            ("instructions", 10u64),
            ("cycles", 17),
            ("branches", 1),
            ("stall_structural", 0),
            ("stall_data_hazard", 0),
            ("stall_control", 0),
        ] {
            v1.push_str(&format!("{key}={value}\n"));
        }
        for (name, _) in ActivityReport::default().columns() {
            v1.push_str(&format!("{}.compressed=1\n{0}.baseline=2\n", slug(name)));
        }
        fs::write(cache.root().join("000000000000002a.job"), v1).unwrap();
        assert!(cache.load(42).is_none(), "v1 entries must not decode");
        // Corrupt gating (gated > total) is also a miss.
        let mut text = format_metrics(&sample_metrics());
        text = text.replace("rf_read.gated=5", "rf_read.gated=99");
        fs::write(cache.root().join("000000000000002a.job"), text).unwrap();
        assert!(cache.load(42).is_none());
        let _ = fs::remove_dir_all(cache.root());
    }
}
