//! Sweep specification: the axes of the design space and their cross
//! product, enumerated deterministically into job specifications.

use sigcomp::hash::{ConfigHash, StableHasher};
use sigcomp::{AnalyzerConfig, ExtScheme, FunctRecoder, ProcessNode};
use sigcomp_isa::tracefile::{self, TraceFileError};
use sigcomp_isa::{DecodedTrace, Trace};
use sigcomp_mem::HierarchyConfig;
use sigcomp_pipeline::{OrgKind, Organization};
use sigcomp_workloads::{suite_names, WorkloadSize};
use std::path::Path;
use std::sync::Arc;

/// Version folded into every job digest; bump it whenever the simulation
/// semantics change so stale cache entries can never be mistaken for fresh
/// results. (v2: job identity gained a trace-source tag.)
///
/// The leakage-aware energy model deliberately did NOT bump this: energy
/// models are pure post-processing over the cached integer counters, so the
/// [`SweepSpec::energy_models`] axis never enters a job digest, and the new
/// gated-byte-cycle counters are additive — the switching and timing numbers
/// they sit beside are unchanged, which the golden corpus (whose expected
/// JSON embeds these job ids) pins bit for bit. Pre-leakage cache *entries*
/// lack the new counters, so the on-disk entry format header was bumped
/// instead (`sigcomp-explore v2` in `cache.rs`), retiring them as clean
/// misses under unchanged keys.
pub const SWEEP_FORMAT_VERSION: u32 = 2;

/// A named memory-hierarchy variant for the cache-geometry axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemProfile {
    /// The paper's §3 hierarchy (8 KB direct-mapped L1s, 64 KB 4-way L2).
    Paper,
    /// Halved L1 capacity (4 KB), stressing the miss paths.
    SmallL1,
    /// A quadrupled 8-way L2, shrinking the L2 miss rate.
    WideL2,
    /// The paper hierarchy in front of a 100-cycle main memory.
    SlowMemory,
}

impl MemProfile {
    /// Every profile, paper configuration first.
    pub const ALL: &'static [MemProfile] = &[
        MemProfile::Paper,
        MemProfile::SmallL1,
        MemProfile::WideL2,
        MemProfile::SlowMemory,
    ];

    /// Stable identifier used in reports and cache keys.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            MemProfile::Paper => "paper",
            MemProfile::SmallL1 => "small-l1",
            MemProfile::WideL2 => "wide-l2",
            MemProfile::SlowMemory => "slow-memory",
        }
    }

    /// Parses an identifier as produced by [`MemProfile::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        MemProfile::ALL.iter().copied().find(|m| m.id() == id)
    }

    /// The concrete hierarchy parameters of this profile.
    #[must_use]
    pub fn hierarchy(self) -> HierarchyConfig {
        let mut h = HierarchyConfig::paper();
        match self {
            MemProfile::Paper => {}
            MemProfile::SmallL1 => {
                h.il1.size_bytes = 4 * 1024;
                h.dl1.size_bytes = 4 * 1024;
            }
            MemProfile::WideL2 => {
                h.l2.size_bytes = 256 * 1024;
                h.l2.associativity = 8;
            }
            MemProfile::SlowMemory => {
                h.memory_latency = 100;
            }
        }
        h
    }
}

impl ConfigHash for MemProfile {
    fn config_hash(&self, hasher: &mut StableHasher) {
        // Hash the resolved geometry, not the profile name: a renamed profile
        // with identical parameters keeps its cache entries.
        self.hierarchy().config_hash(hasher);
    }
}

/// Where a job's dynamic instruction stream comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSource {
    /// A built-in kernel, named by [`JobSpec::workload`] and assembled and
    /// executed live at [`JobSpec::size`].
    Kernel,
    /// A recorded `.sctrace` file, identified purely by the FNV-1a digest of
    /// its record stream ([`sigcomp_isa::tracefile::payload_digest`]). The
    /// trace itself is resolved through the [`TraceInput`]s handed to the
    /// sweep; `workload` is only a display label and `size` is ignored, so a
    /// file job's [`JobSpec::job_id`] changes exactly when the trace
    /// *content* changes.
    File {
        /// Digest of the trace's encoded record stream.
        digest: u64,
    },
}

/// A loaded portable trace, usable as a sweep axis alongside the built-in
/// kernels.
///
/// The records live in a [`DecodedTrace`] arena behind an [`Arc`]: the file
/// is parsed and decoded exactly once, and every sweep job that replays the
/// trace shares the same arena instead of re-decoding (or deep-copying) the
/// record stream.
#[derive(Debug, Clone)]
pub struct TraceInput {
    name: &'static str,
    digest: u64,
    decoded: Arc<DecodedTrace>,
}

impl TraceInput {
    /// Loads and fully validates a `.sctrace` file. The display name is the
    /// file stem, interned for the life of the process (one leaked string
    /// per *distinct* name, so job labels stay cheap `&'static str`s like
    /// kernel names and repeated loads don't grow memory).
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`] from opening, parsing or validating the file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref();
        let reader = tracefile::TraceReader::open(path)?;
        // Draining the reader verifies count and digest, so the header's
        // declared digest IS the payload digest — no need to re-encode the
        // records just to recompute it.
        let digest = reader.declared_digest();
        let decoded = DecodedTrace::from_reader(reader)?;
        let stem = path
            .file_stem()
            .map_or_else(|| path.to_string_lossy(), |s| s.to_string_lossy());
        Ok(TraceInput {
            name: intern_name(&stem),
            digest,
            decoded: Arc::new(decoded),
        })
    }

    /// Wraps an in-memory trace under a display name, computing its content
    /// digest.
    ///
    /// # Errors
    ///
    /// Fails if the trace cannot be represented in the `.sctrace` format
    /// (same conditions as [`sigcomp_isa::TraceWriter::push`]).
    pub fn from_trace(name: &'static str, trace: Trace) -> Result<Self, TraceFileError> {
        let digest = tracefile::payload_digest(&trace)?;
        Ok(TraceInput {
            name,
            digest,
            decoded: Arc::new(DecodedTrace::from_trace(&trace)),
        })
    }

    /// The display name used as the job's `workload` label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The FNV-1a digest of the trace's encoded record stream.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The decoded records, shared by every job that replays this input.
    #[must_use]
    pub fn decoded(&self) -> &Arc<DecodedTrace> {
        &self.decoded
    }

    /// The [`TraceSource`] axis value this input contributes.
    #[must_use]
    pub fn source(&self) -> TraceSource {
        TraceSource::File {
            digest: self.digest,
        }
    }
}

/// Interns a trace display name: [`crate::JobSpec::workload`] is a
/// `&'static str` (kernel names are literals), so file names are leaked
/// once per distinct name and reused on every later load.
fn intern_name(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(Default::default)
        .lock()
        .expect("intern table is never poisoned");
    if let Some(&interned) = set.get(name) {
        interned
    } else {
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        set.insert(leaked);
        leaked
    }
}

/// One point of the design space: everything needed to run one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Extension-bit scheme carried by the datapath.
    pub scheme: ExtScheme,
    /// Pipeline organization being timed.
    pub org: OrgKind,
    /// Benchmark name (from [`sigcomp_workloads::suite_names`]).
    pub workload: &'static str,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Memory-hierarchy variant.
    pub mem: MemProfile,
    /// Where the instruction stream comes from (live kernel or trace file).
    pub source: TraceSource,
}

impl JobSpec {
    /// The pipeline organization under this job's scheme.
    #[must_use]
    pub fn organization(&self) -> Organization {
        Organization::with_scheme(self.org, self.scheme)
    }

    /// The activity-study configuration matching this job.
    #[must_use]
    pub fn analyzer_config(&self) -> AnalyzerConfig {
        AnalyzerConfig {
            scheme: self.scheme,
            hierarchy: self.mem.hierarchy(),
            pc_block_bits: 8 * self.scheme.granule_bytes(),
            recoder: FunctRecoder::paper_default(),
        }
    }

    /// The content-hashed job identity: a stable digest of every parameter
    /// that influences the simulation result, including the sweep format
    /// version. Equal digests ⇒ a cached result is valid.
    ///
    /// For a [`TraceSource::File`] job the instruction stream is fixed by
    /// the trace itself, so the digest folds in the trace *content* and
    /// leaves out the display name and the size axis: renaming a trace file
    /// keeps its cache entries, editing one record invalidates them.
    #[must_use]
    pub fn job_id(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(SWEEP_FORMAT_VERSION);
        self.scheme.config_hash(&mut h);
        self.org.config_hash(&mut h);
        match self.source {
            TraceSource::Kernel => {
                h.write_u8(0);
                h.write_str(self.workload);
                h.write_str(self.size.name());
            }
            TraceSource::File { digest } => {
                h.write_u8(1);
                h.write_u64(digest);
            }
        }
        self.mem.config_hash(&mut h);
        self.analyzer_config().config_hash(&mut h);
        h.finish()
    }

    /// Stable identifier of the job's stream source (`kernel` or `trace`),
    /// used by the CSV/JSON exports.
    #[must_use]
    pub fn source_id(&self) -> &'static str {
        match self.source {
            TraceSource::Kernel => "kernel",
            TraceSource::File { .. } => "trace",
        }
    }

    /// The size-axis value as reported to humans and exports: the workload
    /// size for kernel jobs, `trace` for file jobs (whose stream length is
    /// fixed by the recording — a size value would be fabricated).
    #[must_use]
    pub fn size_label(&self) -> &'static str {
        match self.source {
            TraceSource::Kernel => self.size.name(),
            TraceSource::File { .. } => "trace",
        }
    }

    /// A compact human-readable label (`workload/org/scheme/mem/size`, with
    /// `trace` in place of the size for file-sourced jobs).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.workload,
            self.org.id(),
            self.scheme.id(),
            self.mem.id(),
            self.size_label(),
        )
    }

    /// Serializes the spec as one line of the worker wire protocol
    /// ([`crate::backend`]): every axis by its stable id, space-separated.
    ///
    /// * kernel jobs: `kernel <workload> <size> <mem> <scheme> <org>`
    /// * trace jobs: `trace <digest> <mem> <scheme> <org> <name>` — the
    ///   display name comes last and is percent-escaped
    ///   ([`escape_wire_name`]): being a user-controlled file stem it may
    ///   contain spaces or even newlines, which must not break the
    ///   line-oriented protocol; every other token is a fixed identifier.
    ///
    /// [`JobSpec::from_wire`] is the exact inverse; a round trip preserves
    /// [`JobSpec::job_id`] bit for bit (pinned by tests), which is what lets
    /// a worker process re-derive the same cache keys as its parent.
    #[must_use]
    pub fn to_wire(&self) -> String {
        match self.source {
            TraceSource::Kernel => format!(
                "kernel {} {} {} {} {}",
                self.workload,
                self.size.name(),
                self.mem.id(),
                self.scheme.id(),
                self.org.id(),
            ),
            TraceSource::File { digest } => format!(
                "trace {digest:016x} {} {} {} {}",
                self.mem.id(),
                self.scheme.id(),
                self.org.id(),
                escape_wire_name(self.workload),
            ),
        }
    }

    /// Parses one wire-protocol line back into a spec (the inverse of
    /// [`JobSpec::to_wire`]).
    ///
    /// # Errors
    ///
    /// A message naming the offending token: unknown source kind, unknown
    /// workload/size/mem/scheme/org id, malformed digest, or a missing
    /// field.
    pub fn from_wire(line: &str) -> Result<JobSpec, String> {
        let line = line.trim();
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("bad job line '{line}': expected '<kind> <fields...>'"))?;
        let field = |parts: &mut std::str::SplitWhitespace<'_>, what: &str| {
            parts
                .next()
                .map(str::to_owned)
                .ok_or_else(|| format!("bad job line '{line}': missing {what}"))
        };
        let parse_with = |raw: &str, what: &str, ok: bool| {
            if ok {
                Ok(())
            } else {
                Err(format!("bad job line '{line}': unknown {what} '{raw}'"))
            }
        };
        match kind {
            "kernel" => {
                let mut parts = rest.split_whitespace();
                let workload_raw = field(&mut parts, "workload")?;
                let size_raw = field(&mut parts, "size")?;
                let mem_raw = field(&mut parts, "memory profile")?;
                let scheme_raw = field(&mut parts, "scheme")?;
                let org_raw = field(&mut parts, "organization")?;
                if parts.next().is_some() {
                    return Err(format!("bad job line '{line}': trailing fields"));
                }
                let workload = suite_names()
                    .iter()
                    .copied()
                    .find(|&n| n == workload_raw)
                    .ok_or_else(|| {
                        format!("bad job line '{line}': unknown workload '{workload_raw}'")
                    })?;
                let size = WorkloadSize::parse(&size_raw);
                parse_with(&size_raw, "size", size.is_some())?;
                let mem = MemProfile::parse(&mem_raw);
                parse_with(&mem_raw, "memory profile", mem.is_some())?;
                let scheme = ExtScheme::parse(&scheme_raw);
                parse_with(&scheme_raw, "scheme", scheme.is_some())?;
                let org = OrgKind::parse(&org_raw);
                parse_with(&org_raw, "organization", org.is_some())?;
                Ok(JobSpec {
                    scheme: scheme.expect("checked above"),
                    org: org.expect("checked above"),
                    workload,
                    size: size.expect("checked above"),
                    mem: mem.expect("checked above"),
                    source: TraceSource::Kernel,
                })
            }
            "trace" => {
                // The display name is the last (escaped) token; split off
                // exactly the four fixed fields first.
                let mut parts = rest.splitn(5, ' ');
                let mut fixed = |what: &str| {
                    parts
                        .next()
                        .filter(|t| !t.is_empty())
                        .map(str::to_owned)
                        .ok_or_else(|| format!("bad job line '{line}': missing {what}"))
                };
                let digest_raw = fixed("digest")?;
                let mem_raw = fixed("memory profile")?;
                let scheme_raw = fixed("scheme")?;
                let org_raw = fixed("organization")?;
                let name = fixed("trace name")?;
                let digest = u64::from_str_radix(&digest_raw, 16).map_err(|_| {
                    format!("bad job line '{line}': malformed digest '{digest_raw}'")
                })?;
                let mem = MemProfile::parse(&mem_raw);
                parse_with(&mem_raw, "memory profile", mem.is_some())?;
                let scheme = ExtScheme::parse(&scheme_raw);
                parse_with(&scheme_raw, "scheme", scheme.is_some())?;
                let org = OrgKind::parse(&org_raw);
                parse_with(&org_raw, "organization", org.is_some())?;
                let name =
                    unescape_wire_name(&name).map_err(|e| format!("bad job line '{line}': {e}"))?;
                Ok(JobSpec {
                    scheme: scheme.expect("checked above"),
                    org: org.expect("checked above"),
                    workload: intern_name(&name),
                    // Cosmetic for file jobs (job_id ignores it), mirroring
                    // SweepSpec::enumerate.
                    size: WorkloadSize::Default,
                    mem: mem.expect("checked above"),
                    source: TraceSource::File { digest },
                })
            }
            other => Err(format!(
                "bad job line '{line}': unknown source kind '{other}' (expected kernel or trace)"
            )),
        }
    }
}

/// Percent-escapes a trace display name for the one-line wire protocol:
/// `%`, space, tab, CR and LF become `%25`/`%20`/`%09`/`%0D`/`%0A`, so the
/// escaped name is a single whitespace-free token no matter what the file
/// stem contained. Kernel workload names never need this — they are
/// compiled-in identifiers validated against [`suite_names`].
fn escape_wire_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\r' => out.push_str("%0D"),
            '\n' => out.push_str("%0A"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape_wire_name`].
fn unescape_wire_name(escaped: &str) -> Result<String, String> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        let code = Some(&pair)
            .filter(|p| p.len() == 2)
            .and_then(|p| u8::from_str_radix(p, 16).ok())
            .ok_or_else(|| format!("malformed trace name escape '%{pair}'"))?;
        out.push(char::from(code));
    }
    Ok(out)
}

/// Builder for the cross product of the design-space axes.
///
/// Axis order is fixed (workload, size, memory profile, scheme,
/// organization), so [`SweepSpec::enumerate`] always yields the same job
/// list — job *index* is a stable identity within one sweep, and
/// [`JobSpec::job_id`] is a stable identity across sweeps and processes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    schemes: Vec<ExtScheme>,
    orgs: Vec<OrgKind>,
    workloads: Vec<&'static str>,
    sizes: Vec<WorkloadSize>,
    mems: Vec<MemProfile>,
    traces: Vec<TraceInput>,
    energy_models: Vec<ProcessNode>,
}

impl SweepSpec {
    /// The paper's primary slice of the space: the 3-bit scheme, every
    /// organization, the full kernel suite, one size, the paper hierarchy.
    #[must_use]
    pub fn paper(size: WorkloadSize) -> Self {
        SweepSpec {
            schemes: vec![ExtScheme::ThreeBit],
            orgs: OrgKind::ALL.to_vec(),
            workloads: suite_names().to_vec(),
            sizes: vec![size],
            mems: vec![MemProfile::Paper],
            traces: Vec::new(),
            energy_models: vec![ProcessNode::Paper180nm],
        }
    }

    /// The full cross product: every scheme, organization, kernel and memory
    /// profile at the given size.
    ///
    /// Note that this includes [`OrgKind::Baseline32`] under every scheme
    /// even though the baseline's timing and energy are scheme-independent —
    /// the enumeration is deliberately a uniform cross product (`len` stays
    /// the plain axis product and every axis filter composes); narrow the
    /// scheme axis or the organization axis if the redundancy matters.
    #[must_use]
    pub fn full(size: WorkloadSize) -> Self {
        SweepSpec {
            schemes: ExtScheme::ALL.to_vec(),
            orgs: OrgKind::ALL.to_vec(),
            workloads: suite_names().to_vec(),
            sizes: vec![size],
            mems: MemProfile::ALL.to_vec(),
            traces: Vec::new(),
            energy_models: vec![ProcessNode::Paper180nm],
        }
    }

    /// Replaces the extension-scheme axis.
    #[must_use]
    pub fn schemes(mut self, schemes: &[ExtScheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Replaces the organization axis.
    #[must_use]
    pub fn orgs(mut self, orgs: &[OrgKind]) -> Self {
        self.orgs = orgs.to_vec();
        self
    }

    /// Keeps only the workloads whose names appear in `names` (suite order is
    /// preserved; unknown names are ignored).
    #[must_use]
    pub fn workloads(mut self, names: &[&str]) -> Self {
        self.workloads = suite_names()
            .iter()
            .copied()
            .filter(|n| names.contains(n))
            .collect();
        self
    }

    /// Replaces the size axis.
    #[must_use]
    pub fn sizes(mut self, sizes: &[WorkloadSize]) -> Self {
        self.sizes = sizes.to_vec();
        self
    }

    /// Replaces the memory-profile axis.
    #[must_use]
    pub fn mems(mut self, mems: &[MemProfile]) -> Self {
        self.mems = mems.to_vec();
        self
    }

    /// Replaces the recorded-trace axis. Each trace crosses with the scheme,
    /// organization and memory axes (but not sizes — a recorded stream has a
    /// fixed length), after the kernel jobs in enumeration order.
    ///
    /// Inputs with identical *content* are deduplicated (first name wins):
    /// they would enumerate jobs with equal `job_id`s, whose cache-hit
    /// provenance would then depend on scheduling — breaking the
    /// bit-identical-across-workers guarantee.
    #[must_use]
    pub fn trace_files(mut self, traces: &[TraceInput]) -> Self {
        self.traces.clear();
        for input in traces {
            if !self.traces.iter().any(|t| t.digest() == input.digest()) {
                self.traces.push(input.clone());
            }
        }
        self
    }

    /// Replaces the energy-model axis (process-node presets the reports are
    /// evaluated under; default: the paper's dynamic-only `paper-180nm`).
    ///
    /// Unlike every other axis this one does **not** multiply the job list:
    /// energy models are post-processing over the simulated counters, so a
    /// sweep runs each configuration once and [`JobSpec::job_id`]s (and with
    /// them the result-cache keys) are independent of the models chosen.
    /// Duplicates are dropped (first occurrence wins); an empty list falls
    /// back to `paper-180nm` so reports always have a model to evaluate.
    #[must_use]
    pub fn energy_models(mut self, models: &[ProcessNode]) -> Self {
        self.energy_models.clear();
        for &model in models {
            if !self.energy_models.contains(&model) {
                self.energy_models.push(model);
            }
        }
        if self.energy_models.is_empty() {
            self.energy_models.push(ProcessNode::Paper180nm);
        }
        self
    }

    /// The energy-model axis the reports should be evaluated under.
    #[must_use]
    pub fn energy_model_axis(&self) -> &[ProcessNode] {
        &self.energy_models
    }

    /// Drops the kernel-workload axis, leaving only recorded traces.
    #[must_use]
    pub fn no_kernels(mut self) -> Self {
        self.workloads.clear();
        self
    }

    /// The recorded-trace axis.
    #[must_use]
    pub fn trace_inputs(&self) -> &[TraceInput] {
        &self.traces
    }

    /// Number of jobs the sweep will enumerate.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len()
            * self.orgs.len()
            * self.mems.len()
            * (self.workloads.len() * self.sizes.len() + self.traces.len())
    }

    /// Whether any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cross product in the fixed axis order: kernel jobs
    /// first, then one block per recorded trace.
    #[must_use]
    pub fn enumerate(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.len());
        for &workload in &self.workloads {
            for &size in &self.sizes {
                for &mem in &self.mems {
                    for &scheme in &self.schemes {
                        for &org in &self.orgs {
                            jobs.push(JobSpec {
                                scheme,
                                org,
                                workload,
                                size,
                                mem,
                                source: TraceSource::Kernel,
                            });
                        }
                    }
                }
            }
        }
        for trace in &self.traces {
            for &mem in &self.mems {
                for &scheme in &self.schemes {
                    for &org in &self.orgs {
                        jobs.push(JobSpec {
                            scheme,
                            org,
                            workload: trace.name(),
                            // Cosmetic only: the stream length is the
                            // trace's own; job_id ignores this field.
                            size: WorkloadSize::Default,
                            mem,
                            source: trace.source(),
                        });
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_is_deterministic_and_covers_the_cross_product() {
        let spec = SweepSpec::full(WorkloadSize::Tiny);
        let a = spec.enumerate();
        let b = spec.enumerate();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.len());
        assert_eq!(a.len(), 3 * 7 * 11 * 4);
        let ids: HashSet<u64> = a.iter().map(JobSpec::job_id).collect();
        assert_eq!(ids.len(), a.len(), "job ids must be unique");
    }

    #[test]
    fn job_ids_are_stable_across_processes() {
        // A pinned digest: if this changes, SWEEP_FORMAT_VERSION must be
        // bumped or every on-disk cache silently becomes wrong.
        let job = JobSpec {
            scheme: ExtScheme::ThreeBit,
            org: OrgKind::ByteSerial,
            workload: "rawcaudio",
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: TraceSource::Kernel,
        };
        assert_eq!(job.job_id(), job.job_id());
        let mut other = job;
        other.mem = MemProfile::SlowMemory;
        assert_ne!(job.job_id(), other.job_id());
    }

    #[test]
    fn mem_profiles_resolve_to_distinct_geometries() {
        let mut seen = HashSet::new();
        for &m in MemProfile::ALL {
            assert!(seen.insert(m.config_digest()), "{} duplicates", m.id());
            assert_eq!(MemProfile::parse(m.id()), Some(m));
            // Geometry must stay self-consistent (num_sets panics otherwise).
            let h = m.hierarchy();
            let _ = h.il1.num_sets();
            let _ = h.dl1.num_sets();
            let _ = h.l2.num_sets();
        }
    }

    fn tiny_trace(limit: i16) -> sigcomp_isa::Trace {
        use sigcomp_isa::{reg, Interpreter, ProgramBuilder};
        let mut b = ProgramBuilder::new();
        b.li(reg::T0, 0);
        b.li(reg::T1, i32::from(limit));
        b.label("loop");
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
        Interpreter::new(&b.assemble().unwrap())
            .run(10_000)
            .unwrap()
    }

    #[test]
    fn trace_job_ids_change_exactly_when_trace_content_changes() {
        let a = TraceInput::from_trace("alpha", tiny_trace(10)).unwrap();
        let renamed = TraceInput::from_trace("beta", tiny_trace(10)).unwrap();
        let edited = TraceInput::from_trace("alpha", tiny_trace(11)).unwrap();

        let job_of = |input: &TraceInput| JobSpec {
            scheme: ExtScheme::ThreeBit,
            org: OrgKind::ByteSerial,
            workload: input.name(),
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: input.source(),
        };

        // Renaming (or relabeling the cosmetic size) keeps the identity …
        assert_eq!(a.digest(), renamed.digest());
        assert_eq!(job_of(&a).job_id(), job_of(&renamed).job_id());
        let mut resized = job_of(&a);
        resized.size = WorkloadSize::Large;
        assert_eq!(job_of(&a).job_id(), resized.job_id());

        // … while any content change (and any model axis) moves it.
        assert_ne!(a.digest(), edited.digest());
        assert_ne!(job_of(&a).job_id(), job_of(&edited).job_id());
        let mut other_scheme = job_of(&a);
        other_scheme.scheme = ExtScheme::Halfword;
        assert_ne!(job_of(&a).job_id(), other_scheme.job_id());

        // And a file job can never collide with the kernel job of the same
        // label.
        let mut kernel_alias = job_of(&a);
        kernel_alias.source = TraceSource::Kernel;
        assert_ne!(job_of(&a).job_id(), kernel_alias.job_id());
    }

    #[test]
    fn trace_axis_crosses_schemes_orgs_and_mems_but_not_sizes() {
        let input = TraceInput::from_trace("alpha", tiny_trace(5)).unwrap();
        let spec = SweepSpec::full(WorkloadSize::Tiny)
            .no_kernels()
            .trace_files(std::slice::from_ref(&input));
        let jobs = spec.enumerate();
        assert_eq!(jobs.len(), spec.len());
        assert_eq!(jobs.len(), 3 * 7 * 4);
        assert!(jobs
            .iter()
            .all(|j| j.source == input.source() && j.workload == "alpha"));
        assert!(jobs[0].label().ends_with("/trace"));

        let mixed = SweepSpec::paper(WorkloadSize::Tiny).trace_files(std::slice::from_ref(&input));
        assert_eq!(mixed.len(), 11 * 7 + 7);
        assert_eq!(mixed.enumerate().len(), mixed.len());
    }

    #[test]
    fn duplicate_trace_content_is_deduplicated() {
        // Two inputs with the same records (a copied file, say) would
        // enumerate jobs with equal job_ids; only one block may survive.
        let a = TraceInput::from_trace("alpha", tiny_trace(9)).unwrap();
        let copy = TraceInput::from_trace("copy-of-alpha", tiny_trace(9)).unwrap();
        let distinct = TraceInput::from_trace("beta", tiny_trace(10)).unwrap();
        let spec = SweepSpec::paper(WorkloadSize::Tiny)
            .no_kernels()
            .trace_files(&[a.clone(), copy, distinct]);
        assert_eq!(spec.trace_inputs().len(), 2);
        assert_eq!(spec.len(), 2 * 7);
        let jobs = spec.enumerate();
        assert_eq!(jobs.len(), spec.len());
        // First name wins for the shared content.
        assert_eq!(jobs[0].workload, "alpha");
        let ids: HashSet<u64> = jobs.iter().map(JobSpec::job_id).collect();
        assert_eq!(ids.len(), jobs.len(), "job ids must be unique");
    }

    #[test]
    fn energy_model_axis_is_post_processing_only() {
        let spec = SweepSpec::paper(WorkloadSize::Tiny);
        assert_eq!(spec.energy_model_axis(), &[ProcessNode::Paper180nm]);
        let jobs_before = spec.enumerate();

        let leaky = spec.clone().energy_models(&[
            ProcessNode::Modern7nm,
            ProcessNode::Modern7nm,
            ProcessNode::Paper180nm,
        ]);
        assert_eq!(
            leaky.energy_model_axis(),
            &[ProcessNode::Modern7nm, ProcessNode::Paper180nm]
        );
        // The axis multiplies reports, never jobs: same length, same specs,
        // and therefore byte-identical job ids / cache keys.
        assert_eq!(leaky.len(), spec.len());
        assert_eq!(leaky.enumerate(), jobs_before);

        let empty = spec.energy_models(&[]);
        assert_eq!(empty.energy_model_axis(), &[ProcessNode::Paper180nm]);
    }

    #[test]
    fn wire_format_round_trips_every_job_and_preserves_job_ids() {
        // Kernel jobs: the whole cross product survives a wire round trip
        // with its identity intact — this is what lets a worker process
        // derive the same cache keys as its parent.
        for job in SweepSpec::full(WorkloadSize::Tiny).enumerate() {
            let line = job.to_wire();
            let back = JobSpec::from_wire(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, job, "{line}");
            assert_eq!(back.job_id(), job.job_id(), "{line}");
        }
        // Trace jobs, including hostile display names (file stems are
        // user-controlled): spaces, a literal %, leading/trailing
        // whitespace, even an embedded newline must survive the one-line
        // protocol via percent-escaping.
        for name in ["my recorded trace", " we%ird\nname\t", "plain"] {
            let input = TraceInput::from_trace(name, tiny_trace(4)).unwrap();
            let spec = SweepSpec::paper(WorkloadSize::Tiny)
                .no_kernels()
                .trace_files(std::slice::from_ref(&input));
            for job in spec.enumerate() {
                let line = job.to_wire();
                assert_eq!(line.lines().count(), 1, "{name:?} must stay one line");
                let back = JobSpec::from_wire(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
                assert_eq!(back, job, "{line}");
                assert_eq!(back.job_id(), job.job_id(), "{line}");
                assert_eq!(back.workload, name);
            }
        }
    }

    #[test]
    fn malformed_wire_lines_are_rejected_with_named_errors() {
        for (line, needle) in [
            ("", "bad job line"),
            ("kernel", "expected '<kind> <fields...>'"),
            (
                "warp rawcaudio tiny paper 3bit byte-serial",
                "unknown source kind 'warp'",
            ),
            (
                "kernel nope tiny paper 3bit byte-serial",
                "unknown workload 'nope'",
            ),
            (
                "kernel rawcaudio huge paper 3bit byte-serial",
                "unknown size 'huge'",
            ),
            (
                "kernel rawcaudio tiny ram 3bit byte-serial",
                "unknown memory profile 'ram'",
            ),
            (
                "kernel rawcaudio tiny paper 9bit byte-serial",
                "unknown scheme '9bit'",
            ),
            (
                "kernel rawcaudio tiny paper 3bit warp-drive",
                "unknown organization 'warp-drive'",
            ),
            ("kernel rawcaudio tiny paper 3bit", "missing organization"),
            (
                "kernel rawcaudio tiny paper 3bit byte-serial extra",
                "trailing fields",
            ),
            (
                "trace xyzzy paper 3bit byte-serial name",
                "malformed digest 'xyzzy'",
            ),
            ("trace 00ff paper 3bit byte-serial", "missing trace name"),
            (
                "trace 00ff paper 3bit byte-serial bad%zz",
                "malformed trace name escape",
            ),
        ] {
            let err = JobSpec::from_wire(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn workload_filter_preserves_suite_order() {
        let spec = SweepSpec::paper(WorkloadSize::Tiny).workloads(&["pgp", "rawcaudio"]);
        let jobs = spec.enumerate();
        assert_eq!(jobs.len(), 2 * 7);
        assert_eq!(jobs[0].workload, "rawcaudio");
        assert!(!spec.is_empty());
    }
}
