//! Sweep specification: the axes of the design space and their cross
//! product, enumerated deterministically into job specifications.

use sigcomp::hash::{ConfigHash, StableHasher};
use sigcomp::{AnalyzerConfig, ExtScheme, FunctRecoder};
use sigcomp_mem::HierarchyConfig;
use sigcomp_pipeline::{OrgKind, Organization};
use sigcomp_workloads::{suite_names, WorkloadSize};

/// Version folded into every job digest; bump it whenever the simulation
/// semantics change so stale cache entries can never be mistaken for fresh
/// results.
pub const SWEEP_FORMAT_VERSION: u32 = 1;

/// A named memory-hierarchy variant for the cache-geometry axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemProfile {
    /// The paper's §3 hierarchy (8 KB direct-mapped L1s, 64 KB 4-way L2).
    Paper,
    /// Halved L1 capacity (4 KB), stressing the miss paths.
    SmallL1,
    /// A quadrupled 8-way L2, shrinking the L2 miss rate.
    WideL2,
    /// The paper hierarchy in front of a 100-cycle main memory.
    SlowMemory,
}

impl MemProfile {
    /// Every profile, paper configuration first.
    pub const ALL: &'static [MemProfile] = &[
        MemProfile::Paper,
        MemProfile::SmallL1,
        MemProfile::WideL2,
        MemProfile::SlowMemory,
    ];

    /// Stable identifier used in reports and cache keys.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            MemProfile::Paper => "paper",
            MemProfile::SmallL1 => "small-l1",
            MemProfile::WideL2 => "wide-l2",
            MemProfile::SlowMemory => "slow-memory",
        }
    }

    /// Parses an identifier as produced by [`MemProfile::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        MemProfile::ALL.iter().copied().find(|m| m.id() == id)
    }

    /// The concrete hierarchy parameters of this profile.
    #[must_use]
    pub fn hierarchy(self) -> HierarchyConfig {
        let mut h = HierarchyConfig::paper();
        match self {
            MemProfile::Paper => {}
            MemProfile::SmallL1 => {
                h.il1.size_bytes = 4 * 1024;
                h.dl1.size_bytes = 4 * 1024;
            }
            MemProfile::WideL2 => {
                h.l2.size_bytes = 256 * 1024;
                h.l2.associativity = 8;
            }
            MemProfile::SlowMemory => {
                h.memory_latency = 100;
            }
        }
        h
    }
}

impl ConfigHash for MemProfile {
    fn config_hash(&self, hasher: &mut StableHasher) {
        // Hash the resolved geometry, not the profile name: a renamed profile
        // with identical parameters keeps its cache entries.
        self.hierarchy().config_hash(hasher);
    }
}

/// One point of the design space: everything needed to run one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Extension-bit scheme carried by the datapath.
    pub scheme: ExtScheme,
    /// Pipeline organization being timed.
    pub org: OrgKind,
    /// Benchmark name (from [`sigcomp_workloads::suite_names`]).
    pub workload: &'static str,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Memory-hierarchy variant.
    pub mem: MemProfile,
}

impl JobSpec {
    /// The pipeline organization under this job's scheme.
    #[must_use]
    pub fn organization(&self) -> Organization {
        Organization::with_scheme(self.org, self.scheme)
    }

    /// The activity-study configuration matching this job.
    #[must_use]
    pub fn analyzer_config(&self) -> AnalyzerConfig {
        AnalyzerConfig {
            scheme: self.scheme,
            hierarchy: self.mem.hierarchy(),
            pc_block_bits: 8 * self.scheme.granule_bytes(),
            recoder: FunctRecoder::paper_default(),
        }
    }

    /// The content-hashed job identity: a stable digest of every parameter
    /// that influences the simulation result, including the sweep format
    /// version. Equal digests ⇒ a cached result is valid.
    #[must_use]
    pub fn job_id(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u32(SWEEP_FORMAT_VERSION);
        self.scheme.config_hash(&mut h);
        self.org.config_hash(&mut h);
        h.write_str(self.workload);
        h.write_str(self.size.name());
        self.mem.config_hash(&mut h);
        self.analyzer_config().config_hash(&mut h);
        h.finish()
    }

    /// A compact human-readable label (`workload/org/scheme/mem/size`).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}",
            self.workload,
            self.org.id(),
            self.scheme.id(),
            self.mem.id(),
            self.size.name()
        )
    }
}

/// Builder for the cross product of the design-space axes.
///
/// Axis order is fixed (workload, size, memory profile, scheme,
/// organization), so [`SweepSpec::enumerate`] always yields the same job
/// list — job *index* is a stable identity within one sweep, and
/// [`JobSpec::job_id`] is a stable identity across sweeps and processes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    schemes: Vec<ExtScheme>,
    orgs: Vec<OrgKind>,
    workloads: Vec<&'static str>,
    sizes: Vec<WorkloadSize>,
    mems: Vec<MemProfile>,
}

impl SweepSpec {
    /// The paper's primary slice of the space: the 3-bit scheme, every
    /// organization, the full kernel suite, one size, the paper hierarchy.
    #[must_use]
    pub fn paper(size: WorkloadSize) -> Self {
        SweepSpec {
            schemes: vec![ExtScheme::ThreeBit],
            orgs: OrgKind::ALL.to_vec(),
            workloads: suite_names().to_vec(),
            sizes: vec![size],
            mems: vec![MemProfile::Paper],
        }
    }

    /// The full cross product: every scheme, organization, kernel and memory
    /// profile at the given size.
    ///
    /// Note that this includes [`OrgKind::Baseline32`] under every scheme
    /// even though the baseline's timing and energy are scheme-independent —
    /// the enumeration is deliberately a uniform cross product (`len` stays
    /// the plain axis product and every axis filter composes); narrow the
    /// scheme axis or the organization axis if the redundancy matters.
    #[must_use]
    pub fn full(size: WorkloadSize) -> Self {
        SweepSpec {
            schemes: ExtScheme::ALL.to_vec(),
            orgs: OrgKind::ALL.to_vec(),
            workloads: suite_names().to_vec(),
            sizes: vec![size],
            mems: MemProfile::ALL.to_vec(),
        }
    }

    /// Replaces the extension-scheme axis.
    #[must_use]
    pub fn schemes(mut self, schemes: &[ExtScheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Replaces the organization axis.
    #[must_use]
    pub fn orgs(mut self, orgs: &[OrgKind]) -> Self {
        self.orgs = orgs.to_vec();
        self
    }

    /// Keeps only the workloads whose names appear in `names` (suite order is
    /// preserved; unknown names are ignored).
    #[must_use]
    pub fn workloads(mut self, names: &[&str]) -> Self {
        self.workloads = suite_names()
            .iter()
            .copied()
            .filter(|n| names.contains(n))
            .collect();
        self
    }

    /// Replaces the size axis.
    #[must_use]
    pub fn sizes(mut self, sizes: &[WorkloadSize]) -> Self {
        self.sizes = sizes.to_vec();
        self
    }

    /// Replaces the memory-profile axis.
    #[must_use]
    pub fn mems(mut self, mems: &[MemProfile]) -> Self {
        self.mems = mems.to_vec();
        self
    }

    /// Number of jobs the sweep will enumerate.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len()
            * self.orgs.len()
            * self.workloads.len()
            * self.sizes.len()
            * self.mems.len()
    }

    /// Whether any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates the cross product in the fixed axis order.
    #[must_use]
    pub fn enumerate(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.len());
        for &workload in &self.workloads {
            for &size in &self.sizes {
                for &mem in &self.mems {
                    for &scheme in &self.schemes {
                        for &org in &self.orgs {
                            jobs.push(JobSpec {
                                scheme,
                                org,
                                workload,
                                size,
                                mem,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumeration_is_deterministic_and_covers_the_cross_product() {
        let spec = SweepSpec::full(WorkloadSize::Tiny);
        let a = spec.enumerate();
        let b = spec.enumerate();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.len());
        assert_eq!(a.len(), 3 * 7 * 11 * 4);
        let ids: HashSet<u64> = a.iter().map(JobSpec::job_id).collect();
        assert_eq!(ids.len(), a.len(), "job ids must be unique");
    }

    #[test]
    fn job_ids_are_stable_across_processes() {
        // A pinned digest: if this changes, SWEEP_FORMAT_VERSION must be
        // bumped or every on-disk cache silently becomes wrong.
        let job = JobSpec {
            scheme: ExtScheme::ThreeBit,
            org: OrgKind::ByteSerial,
            workload: "rawcaudio",
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
        };
        assert_eq!(job.job_id(), job.job_id());
        let mut other = job;
        other.mem = MemProfile::SlowMemory;
        assert_ne!(job.job_id(), other.job_id());
    }

    #[test]
    fn mem_profiles_resolve_to_distinct_geometries() {
        let mut seen = HashSet::new();
        for &m in MemProfile::ALL {
            assert!(seen.insert(m.config_digest()), "{} duplicates", m.id());
            assert_eq!(MemProfile::parse(m.id()), Some(m));
            // Geometry must stay self-consistent (num_sets panics otherwise).
            let h = m.hierarchy();
            let _ = h.il1.num_sets();
            let _ = h.dl1.num_sets();
            let _ = h.l2.num_sets();
        }
    }

    #[test]
    fn workload_filter_preserves_suite_order() {
        let spec = SweepSpec::paper(WorkloadSize::Tiny).workloads(&["pgp", "rawcaudio"]);
        let jobs = spec.enumerate();
        assert_eq!(jobs.len(), 2 * 7);
        assert_eq!(jobs[0].workload, "rawcaudio");
        assert!(!spec.is_empty());
    }
}
