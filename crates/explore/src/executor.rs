//! A dependency-free work-stealing executor for sweep jobs — the engine
//! behind [`crate::ExecBackend::LocalThreads`] (and, transitively, behind
//! every shard process of [`crate::ExecBackend::Subprocess`], each of which
//! runs its slice of the job list on this pool).
//!
//! Jobs are indices `0..n`. Each worker owns a deque seeded with a
//! contiguous block of the job list; it pops from the front of its own deque
//! and, when empty, steals from the back of the other workers' deques. All
//! deques sit behind plain mutexes — jobs here are whole pipeline
//! simulations (milliseconds to seconds each), so queue contention is
//! negligible and `std` primitives are plenty.
//!
//! **Determinism:** workers return results tagged with their job index over
//! a channel and the caller reassembles them into job order, so the output
//! is identical for every worker count and every interleaving. Per-worker
//! scratch state (sharded statistics) is returned in worker order for the
//! same reason; callers must only fold shards with commutative,
//! overflow-free integer accumulation if they want bit-identical merges.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// What one worker did, plus whatever scratch state the job closure
/// accumulated into its shard.
#[derive(Debug)]
pub struct WorkerReport<S> {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker executed.
    pub jobs: u64,
    /// Jobs this worker stole from another worker's deque.
    pub steals: u64,
    /// The worker's sharded scratch state.
    pub shard: S,
}

/// Runs `n_jobs` jobs on `workers` threads and returns the results in job
/// order together with the per-worker reports in worker order.
///
/// `run` is called as `run(job_index, &mut shard)`; the shard starts as
/// `S::default()` per worker.
///
/// # Panics
///
/// Panics if `workers == 0` or if a worker thread panics.
pub fn run_parallel<T, S, F>(
    n_jobs: usize,
    workers: usize,
    run: F,
) -> (Vec<T>, Vec<WorkerReport<S>>)
where
    T: Send,
    S: Send + Default,
    F: Fn(usize, &mut S) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let workers = workers.min(n_jobs.max(1));

    // Seed each deque with a contiguous block of jobs.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = n_jobs * w / workers;
            let hi = n_jobs * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
    let (report_tx, report_rx) = mpsc::channel::<WorkerReport<S>>();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queues = &queues;
            let run = &run;
            let result_tx = result_tx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || {
                // Per-worker wall time, from first to last job: the spread
                // across workers is the pool's load-balance signal.
                let _wall = sigcomp_obs::span!("explore.worker.wall", worker);
                let mut report = WorkerReport {
                    worker,
                    jobs: 0,
                    steals: 0,
                    shard: S::default(),
                };
                while let Some((job, stolen)) = next_job(queues, worker) {
                    let result = run(job, &mut report.shard);
                    report.jobs += 1;
                    report.steals += u64::from(stolen);
                    // The receiver lives until the scope ends; a send only
                    // fails if the collector panicked, which propagates anyway.
                    let _ = result_tx.send((job, result));
                }
                let _ = report_tx.send(report);
            });
        }
        drop(result_tx);
        drop(report_tx);

        let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
        for (job, result) in result_rx {
            debug_assert!(slots[job].is_none(), "job {job} ran twice");
            slots[job] = Some(result);
        }
        let results: Vec<T> = slots
            .into_iter()
            .enumerate()
            .map(|(job, slot)| slot.unwrap_or_else(|| panic!("job {job} never ran")))
            .collect();

        let mut reports: Vec<WorkerReport<S>> = report_rx.into_iter().collect();
        reports.sort_by_key(|r| r.worker);
        (results, reports)
    })
}

/// Pops the next job: own deque first (front), then steal from the busiest
/// sibling (back). Returns `(job, was_stolen)`.
fn next_job(queues: &[Mutex<VecDeque<usize>>], worker: usize) -> Option<(usize, bool)> {
    if let Some(job) = queues[worker].lock().expect("queue poisoned").pop_front() {
        return Some((job, false));
    }
    // Steal from whichever sibling currently has the most work queued, so
    // block-seeded imbalance evens out instead of cascading.
    loop {
        let victim = (0..queues.len())
            .filter(|&q| q != worker)
            .max_by_key(|&q| queues[q].lock().expect("queue poisoned").len())?;
        let stolen = queues[victim].lock().expect("queue poisoned").pop_back();
        match stolen {
            Some(job) => return Some((job, true)),
            // Raced with the victim draining its own queue; rescan, and stop
            // once every queue is empty.
            None if queues
                .iter()
                .all(|q| q.lock().expect("queue poisoned").is_empty()) =>
            {
                return None
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 7] {
            let (results, reports) = run_parallel::<usize, u64, _>(100, workers, |job, shard| {
                *shard += job as u64;
                job * 3
            });
            assert_eq!(results, (0..100).map(|j| j * 3).collect::<Vec<_>>());
            assert_eq!(reports.iter().map(|r| r.jobs).sum::<u64>(), 100);
            // Every job contributed to exactly one shard.
            assert_eq!(
                reports.iter().map(|r| r.shard).sum::<u64>(),
                (0..100u64).sum::<u64>()
            );
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Front-loaded work: worker 0's block is far slower, so the others
        // must steal from it to finish.
        let executed = AtomicU64::new(0);
        let (results, reports) = run_parallel::<usize, (), _>(64, 4, |job, ()| {
            if job < 16 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            executed.fetch_add(1, Ordering::Relaxed);
            job
        });
        assert_eq!(executed.load(Ordering::Relaxed), 64);
        assert_eq!(results.len(), 64);
        assert!(
            reports.iter().map(|r| r.steals).sum::<u64>() > 0,
            "expected at least one steal"
        );
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let (results, reports) = run_parallel::<usize, (), _>(3, 16, |job, ()| job);
        assert_eq!(results, vec![0, 1, 2]);
        assert!(reports.len() <= 3);
    }

    #[test]
    fn zero_jobs_returns_empty() {
        let (results, _) = run_parallel::<usize, (), _>(0, 4, |job, ()| job);
        assert!(results.is_empty());
    }
}
