//! Pluggable execution backends: where the jobs of a sweep actually run.
//!
//! Every execution path in the workspace — `repro sweep`, the serving
//! front-end's [`Batcher`](../../sigcomp_serve/batch/struct.Batcher.html),
//! the examples — funnels through one dispatch point
//! ([`crate::try_run_jobs_traced`]) parameterized by an [`ExecBackend`]:
//!
//! * [`ExecBackend::LocalThreads`] — the in-process work-stealing executor
//!   ([`crate::executor`]), behavior-preserving with the original engine.
//! * [`ExecBackend::Subprocess`] — shards the **deduplicated** job list
//!   `i/n` by stable [`JobSpec::job_id`] order across `repro worker`
//!   child processes that all write through one shared atomic
//!   [`crate::ResultCache`], then merges their shards bit-identically.
//!
//! # The worker protocol
//!
//! The parent serializes the deduped job list — sorted by `job_id` so the
//! order is a pure function of the job *contents*, independent of
//! submission order — one [`JobSpec::to_wire`] line per job, and pipes the
//! **whole** list to every child's stdin. A child started with
//! `--shard i/n` executes exactly the lines whose 0-based index satisfies
//! `index % n == i`; because every child sees the same list in the same
//! order, the partition is consistent without any coordination, and the
//! same broadcast works unchanged for a future multi-host fan-out.
//!
//! Children answer on stdout with a versioned report the parent verifies:
//!
//! ```text
//! sigcomp-worker v2 shard 0/3
//! job 00f3a6e2d41b9c70 simulated
//! job 3b1e09c55a7d2f18 cached
//! obs counter replay.jobs_simulated 1
//! obs counter replay.jobs_cached 1
//! done jobs=2 simulated=1 cached=1
//! ```
//!
//! `obs` lines (v2) carry the worker's observability-registry snapshot in
//! [`sigcomp_obs::Snapshot::to_wire`] form; the parent folds each shard's
//! snapshot into its own global registry (the merge is commutative, so the
//! totals are shard-order-independent) and keeps the per-shard snapshots in
//! [`SweepSummary::shard_obs`](crate::SweepSummary::shard_obs).
//!
//! Results never travel over the pipe: each child stores its metrics into
//! the shared [`crate::ResultCache`] (atomic write-to-temp + rename), and the
//! parent restores every job from the cache afterwards — the cache *is*
//! the merge point, exactly as when a CLI sweep and a server share a
//! directory. Since cache hits are substitutable for simulations by
//! construction, the merged [`SweepSummary`](crate::SweepSummary) is
//! **byte-identical to the single-process run for any shard count**.
//!
//! Failures are first-class: a child that dies, is killed, or emits a
//! malformed report becomes a named [`ExecError`], never a hang or a
//! panic.

use crate::spec::{JobSpec, TraceInput};
use crate::sweep::{JobOutcome, SweepOptions, SweepShard, SweepSummary};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Instant;

/// First line of a worker's stdout report (followed by ` shard i/n`); the
/// version is bumped whenever the report grammar changes so a parent can
/// never misread an incompatible worker.
pub const WORKER_HEADER: &str = "sigcomp-worker v2";

/// Where the jobs of a sweep execute.
///
/// The default is [`ExecBackend::LocalThreads`] — the original in-process
/// engine, bit-for-bit. Every backend upholds the same contract: outcomes
/// come back in submission order and merged results are byte-identical to a
/// single-worker, single-process run.
#[derive(Debug, Clone, Default)]
pub enum ExecBackend {
    /// The in-process work-stealing thread pool ([`crate::executor`]).
    #[default]
    LocalThreads,
    /// Worker child processes sharing one on-disk [`crate::ResultCache`]
    /// (which [`SweepOptions::cache`] must therefore provide).
    Subprocess(SubprocessConfig),
    /// Remote `repro serve` worker servers dispatched over HTTP by the
    /// `sigcomp-fabric` frontier, merging through the local
    /// [`crate::ResultCache`] (which [`SweepOptions::cache`] must provide).
    /// The runner itself lives in `sigcomp-fabric` and is registered via
    /// [`install_fleet_runner`]; selecting this backend without a linked
    /// fabric is a named [`ExecError::Config`].
    Fleet(FleetConfig),
}

impl ExecBackend {
    /// Stable identifier used in summaries, logs and server metrics.
    #[must_use]
    pub fn id(&self) -> &'static str {
        match self {
            ExecBackend::LocalThreads => "local",
            ExecBackend::Subprocess(_) => "subprocess",
            ExecBackend::Fleet(_) => "fleet",
        }
    }
}

/// How the fleet backend reaches its worker servers.
///
/// This is pure data — the HTTP client and the dispatch/retry/re-shard
/// machinery live in `sigcomp-fabric` — so `sigcomp-explore` stays free of
/// any networking while the [`ExecBackend`] enum remains the single
/// execution dispatch point of the workspace.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker base addresses (`host:port`). The frontier sorts them before
    /// sharding so the partition is a pure function of the worker set, not
    /// of registration order. Empty means "no workers": the fleet runner
    /// degrades gracefully to local execution over the same cache.
    pub workers: Vec<String>,
    /// Per-dispatch HTTP timeout in milliseconds (connect + request +
    /// response). A dispatch that exceeds it counts as one failed attempt.
    pub timeout_ms: u64,
    /// Dispatch attempts per worker (with backoff between them) before the
    /// worker is declared dead and its jobs are re-sharded to survivors.
    pub attempts: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: Vec::new(),
            timeout_ms: 60_000,
            attempts: 3,
        }
    }
}

/// Signature of the fleet runner `sigcomp-fabric` installs: the same
/// contract as the other backends — outcomes in submission order, merged
/// output byte-identical to a single-process run.
pub type FleetRunner =
    fn(&[JobSpec], &[TraceInput], &SweepOptions, &FleetConfig) -> Result<SweepSummary, ExecError>;

static FLEET_RUNNER: OnceLock<FleetRunner> = OnceLock::new();

/// Registers the fleet runner (called by `sigcomp_fabric::install`).
/// Idempotent: the first installation wins, later calls are no-ops — the
/// runner is a stateless `fn` pointer, so "again" could only ever mean
/// "the same".
pub fn install_fleet_runner(runner: FleetRunner) {
    let _ = FLEET_RUNNER.set(runner);
}

/// Dispatches to the installed fleet runner.
pub(crate) fn run_fleet(
    jobs: &[JobSpec],
    traces: &[TraceInput],
    options: &SweepOptions,
    config: &FleetConfig,
) -> Result<SweepSummary, ExecError> {
    match FLEET_RUNNER.get() {
        Some(runner) => runner(jobs, traces, options, config),
        None => Err(ExecError::Config(
            "no fleet runner is installed (link sigcomp-fabric and call its install())".to_owned(),
        )),
    }
}

/// How the subprocess backend spawns its workers.
#[derive(Debug, Clone)]
pub struct SubprocessConfig {
    /// Worker processes to spawn (clamped to the deduped job count; must be
    /// at least 1).
    pub shards: usize,
    /// The worker executable — normally the `repro` binary itself (the
    /// parent's `std::env::current_exe()`), overridable to interpose a
    /// launcher (a container or ssh wrapper, say).
    pub program: PathBuf,
    /// Arguments placed before the protocol flags, normally `["worker"]`.
    pub args: Vec<String>,
    /// `.sctrace` paths forwarded to workers so they can resolve
    /// [`crate::TraceSource::File`] jobs (the wire line carries only the
    /// content digest).
    pub trace_paths: Vec<String>,
    /// When set, each worker is started with `--obs-log <path>.shard-<i>`
    /// so its JSONL structured-event stream lands next to the parent's.
    pub obs_log: Option<PathBuf>,
}

impl SubprocessConfig {
    /// A config running `program worker` with the given shard count.
    #[must_use]
    pub fn new(shards: usize, program: impl Into<PathBuf>) -> Self {
        SubprocessConfig {
            shards,
            program: program.into(),
            args: vec!["worker".to_owned()],
            trace_paths: Vec::new(),
            obs_log: None,
        }
    }
}

/// Why a backend could not produce a summary. The subprocess and fleet
/// backends are the fallible paths; the local backend never returns these.
#[derive(Debug)]
pub enum ExecError {
    /// The backend configuration is unusable (e.g. zero shards).
    Config(String),
    /// The subprocess and fleet backends need [`SweepOptions::cache`]: the
    /// cache directory is the merge point results are published through.
    CacheRequired,
    /// A worker process could not be spawned.
    Spawn {
        /// Shard index of the worker.
        shard: usize,
        /// Total shard count.
        shards: usize,
        /// The underlying spawn failure.
        error: std::io::Error,
    },
    /// A worker exited unsuccessfully (crashed, was killed, or reported a
    /// failure of its own).
    WorkerFailed {
        /// Shard index of the worker.
        shard: usize,
        /// Total shard count.
        shards: usize,
        /// Exit-status description.
        detail: String,
    },
    /// A worker's stdout report violated the protocol.
    Protocol {
        /// Shard index of the worker.
        shard: usize,
        /// Total shard count.
        shards: usize,
        /// What was malformed.
        detail: String,
    },
    /// Every worker succeeded yet the shared cache holds no entry for a
    /// job — the merge point lost a result (e.g. the directory was cleaned
    /// mid-run).
    ResultMissing {
        /// The orphaned job's content hash.
        job_id: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Config(detail) => write!(f, "bad backend configuration: {detail}"),
            ExecError::CacheRequired => write!(
                f,
                "this backend requires a result cache \
                 (the cache directory is the merge point)"
            ),
            ExecError::Spawn {
                shard,
                shards,
                error,
            } => write!(f, "cannot spawn worker shard {shard}/{shards}: {error}"),
            ExecError::WorkerFailed {
                shard,
                shards,
                detail,
            } => write!(f, "worker shard {shard}/{shards} failed: {detail}"),
            ExecError::Protocol {
                shard,
                shards,
                detail,
            } => write!(
                f,
                "worker shard {shard}/{shards} protocol violation: {detail}"
            ),
            ExecError::ResultMissing { job_id } => write!(
                f,
                "job {job_id:016x} missing from the shared cache after all workers finished"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Spawn { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Parses a `--shard i/n` value into `(index, count)`.
///
/// # Errors
///
/// A message naming the malformation: not of the form `i/n`, a zero count,
/// or an index not below the count (e.g. `3/2`).
pub fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let (index, count) = value
        .split_once('/')
        .ok_or_else(|| format!("invalid shard '{value}' (expected INDEX/COUNT, e.g. 0/3)"))?;
    let index: usize = index
        .parse()
        .map_err(|_| format!("invalid shard '{value}': '{index}' is not an integer"))?;
    let count: usize = count
        .parse()
        .map_err(|_| format!("invalid shard '{value}': '{count}' is not an integer"))?;
    if count == 0 {
        return Err(format!(
            "invalid shard '{value}': the shard count must be positive"
        ));
    }
    if index >= count {
        return Err(format!(
            "invalid shard '{value}': the shard index must be below the shard count"
        ));
    }
    Ok((index, count))
}

/// A job list deduplicated by content hash: the first occurrence of each
/// [`JobSpec::job_id`] leads; every position maps back to its leader.
///
/// This is the *one* dedup-by-`job_id` implementation in the workspace —
/// the serve batcher and the subprocess backend both group through it, so
/// coalescing semantics can never drift between the two schedulers.
#[derive(Debug)]
pub struct DedupedJobs {
    /// First occurrence of each distinct job id, in submission order.
    pub unique: Vec<JobSpec>,
    /// For every input position, the index into [`DedupedJobs::unique`]
    /// that answers it.
    pub leader_of: Vec<usize>,
    /// For every unique entry, the input position that introduced it.
    pub leader_position: Vec<usize>,
}

impl DedupedJobs {
    /// Whether input position `pos` coalesced onto an earlier submission
    /// (i.e. is not the first occurrence of its job id).
    #[must_use]
    pub fn is_follower(&self, pos: usize) -> bool {
        self.leader_position[self.leader_of[pos]] != pos
    }

    /// Input positions minus unique jobs: how many submissions coalesced.
    #[must_use]
    pub fn followers(&self) -> usize {
        self.leader_of.len() - self.unique.len()
    }
}

/// Groups `jobs` by [`JobSpec::job_id`], first occurrence leading.
#[must_use]
pub fn dedup_jobs(jobs: &[JobSpec]) -> DedupedJobs {
    let mut unique = Vec::new();
    let mut leader_of = Vec::with_capacity(jobs.len());
    let mut leader_position = Vec::new();
    let mut index_of: HashMap<u64, usize> = HashMap::new();
    for (pos, job) in jobs.iter().enumerate() {
        let id = job.job_id();
        let leader = *index_of.entry(id).or_insert_with(|| {
            unique.push(*job);
            leader_position.push(pos);
            unique.len() - 1
        });
        leader_of.push(leader);
    }
    let obs = sigcomp_obs::global();
    obs.counter("explore.dedup.unique").add(unique.len() as u64);
    obs.counter("explore.dedup.followers")
        .add((jobs.len() - unique.len()) as u64);
    DedupedJobs {
        unique,
        leader_of,
        leader_position,
    }
}

/// What one worker reported about its shard.
#[derive(Debug)]
struct ShardReport {
    /// `(job_id, from_cache)` per executed job, in the worker's order.
    jobs: Vec<(u64, bool)>,
    /// The worker's observability-registry snapshot (v2 `obs` lines).
    obs: sigcomp_obs::Snapshot,
}

/// Runs `jobs` on the subprocess backend: dedup, shard by stable `job_id`
/// order, spawn `--shard i/n` workers over the shared cache, verify their
/// reports, and reassemble outcomes in submission order.
///
/// Duplicate submissions (equal job ids) are coalesced: every follower
/// position receives its leader's metrics with `from_cache = true`.
///
/// # Errors
///
/// Any [`ExecError`]; the job list is returned untouched by side effects on
/// error except for cache entries already published by finished workers
/// (which later runs simply reuse).
pub(crate) fn run_subprocess(
    jobs: &[JobSpec],
    _traces: &[TraceInput],
    options: &SweepOptions,
    config: &SubprocessConfig,
) -> Result<SweepSummary, ExecError> {
    if config.shards == 0 {
        return Err(ExecError::Config(
            "the shard count must be positive".to_owned(),
        ));
    }
    let cache = options.cache.as_ref().ok_or(ExecError::CacheRequired)?;
    let started = Instant::now();
    if jobs.is_empty() {
        return Ok(SweepSummary {
            outcomes: Vec::new(),
            totals: SweepShard::default(),
            worker_loads: Vec::new(),
            workers: 0,
            wall: started.elapsed(),
            backend: "subprocess",
            shard_obs: Vec::new(),
        });
    }

    let deduped = dedup_jobs(jobs);
    // The wire order is sorted by job id: a pure function of the job
    // contents, so parent and workers (and any future remote frontier)
    // agree on shard membership regardless of submission order.
    let mut ordered: Vec<(u64, usize)> = deduped
        .unique
        .iter()
        .enumerate()
        .map(|(u, job)| (job.job_id(), u))
        .collect();
    ordered.sort_unstable_by_key(|&(id, _)| id);
    let shards = config.shards.min(ordered.len());

    // Threads per shard: an explicit --workers is forwarded as-is (it is
    // documented as "per shard"); otherwise the machine's parallelism is
    // divided across the shards so a default run never oversubscribes the
    // host shards × cores ways.
    let threads_per_shard = options.workers.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        (cores / shards).max(1)
    });

    let wire: String = ordered
        .iter()
        .map(|&(_, u)| {
            let mut line = deduped.unique[u].to_wire();
            line.push('\n');
            line
        })
        .collect();
    let mut children: Vec<Child> = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mut command = Command::new(&config.program);
        command
            .args(&config.args)
            .arg("--shard")
            .arg(format!("{shard}/{shards}"))
            .arg("--cache")
            .arg(cache.root())
            .arg("--workers")
            .arg(threads_per_shard.to_string());
        if !config.trace_paths.is_empty() {
            command.arg("--traces").arg(config.trace_paths.join(","));
        }
        if let Some(obs_log) = &config.obs_log {
            command
                .arg("--obs-log")
                .arg(format!("{}.shard-{shard}", obs_log.display()));
        }
        // stderr is inherited: a worker's own named error surfaces directly
        // on the parent's stderr next to the ExecError naming the shard.
        let child = command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|error| ExecError::Spawn {
                shard,
                shards,
                error,
            })?;
        children.push(child);
    }

    // One thread per child feeds its stdin (the full wire list — workers
    // drain it to EOF before simulating) and then collects its output, so
    // a slow or stuck sibling can neither block another child's feed nor
    // let a long report fill its stdout pipe unread.
    let outputs: Vec<std::io::Result<std::process::Output>> = std::thread::scope(|scope| {
        let handles: Vec<_> = children
            .into_iter()
            .map(|mut child| {
                let wire = &wire;
                scope.spawn(move || {
                    if let Some(mut stdin) = child.stdin.take() {
                        // A write failure means the child died early; its
                        // exit status carries the real diagnosis below.
                        let _ = stdin.write_all(wire.as_bytes());
                    }
                    child.wait_with_output()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reader thread never panics"))
            .collect()
    });

    // Verify every report before touching the cache.
    let mut reports = Vec::with_capacity(shards);
    for (shard, output) in outputs.into_iter().enumerate() {
        let output = output.map_err(|error| ExecError::WorkerFailed {
            shard,
            shards,
            detail: format!("collecting its output failed: {error}"),
        })?;
        if !output.status.success() {
            return Err(ExecError::WorkerFailed {
                shard,
                shards,
                detail: output.status.to_string(),
            });
        }
        let expected: HashSet<u64> = ordered
            .iter()
            .enumerate()
            .filter(|&(rank, _)| rank % shards == shard)
            .map(|(_, &(id, _))| id)
            .collect();
        let stdout = String::from_utf8_lossy(&output.stdout);
        reports.push(parse_report(&stdout, shard, shards, &expected)?);
    }

    // Fold every shard's observability snapshot into the parent's global
    // registry. The merge is commutative, so the merged totals equal the
    // single-process run's regardless of how the jobs were sharded.
    let shard_obs: Vec<sigcomp_obs::Snapshot> = reports.iter().map(|r| r.obs.clone()).collect();
    for (shard, snap) in shard_obs.iter().enumerate() {
        sigcomp_obs::global()
            .merge_snapshot(snap)
            .map_err(|e| ExecError::Protocol {
                shard,
                shards,
                detail: e.to_string(),
            })?;
    }

    // Merge through the cache: every unique job's metrics are restored from
    // the shared directory the workers published into. These loads are
    // `load_unobserved`: the cache *traffic* already happened inside the
    // workers (and was merged above); re-counting the restore would break
    // the sharded-equals-single-process invariant on the obs totals.
    let mut provenance: HashMap<u64, bool> = HashMap::new();
    for report in &reports {
        for &(id, from_cache) in &report.jobs {
            provenance.insert(id, from_cache);
        }
    }
    let mut metrics_of = HashMap::with_capacity(deduped.unique.len());
    for &(id, _) in &ordered {
        let metrics = cache
            .load_unobserved(id)
            .ok_or(ExecError::ResultMissing { job_id: id })?;
        metrics_of.insert(id, metrics);
    }

    // Totals are folded per submitted *position* (like the local backend),
    // so `simulated + cached == outcomes.len()` holds on every backend:
    // follower positions coalesced onto their leader's run and count as
    // cache-answered, and the leader carries the worker-reported provenance
    // (fresh simulation vs shared-cache hit) — only freshly simulated jobs
    // contribute to `simulated`/`instructions_simulated`.
    let mut totals = SweepShard::default();
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (pos, &leader) in deduped.leader_of.iter().enumerate() {
        let spec = deduped.unique[leader];
        let id = spec.job_id();
        let metrics = metrics_of[&id];
        let from_cache = deduped.is_follower(pos) || provenance[&id];
        totals.activity.merge(&metrics.activity);
        if from_cache {
            totals.cached += 1;
        } else {
            totals.simulated += 1;
            totals.instructions_simulated += metrics.instructions;
        }
        outcomes.push(JobOutcome {
            spec,
            metrics,
            from_cache,
        });
    }

    let worker_loads = reports.iter().map(|r| (r.jobs.len() as u64, 0)).collect();
    Ok(SweepSummary {
        outcomes,
        totals,
        worker_loads,
        workers: shards,
        wall: started.elapsed(),
        backend: "subprocess",
        shard_obs,
    })
}

/// Parses and verifies one worker's stdout report against the job-id set
/// the shard was assigned.
fn parse_report(
    stdout: &str,
    shard: usize,
    shards: usize,
    expected: &HashSet<u64>,
) -> Result<ShardReport, ExecError> {
    let violation = |detail: String| ExecError::Protocol {
        shard,
        shards,
        detail,
    };
    let mut lines = stdout.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| violation("empty report".to_owned()))?;
    let expected_header = format!("{WORKER_HEADER} shard {shard}/{shards}");
    if header != expected_header {
        return Err(violation(format!(
            "bad header '{header}' (expected '{expected_header}')"
        )));
    }
    let mut jobs = Vec::new();
    let mut obs = sigcomp_obs::Snapshot::default();
    let mut done = false;
    for line in lines {
        if let Some(rest) = line.strip_prefix("obs ") {
            if done {
                return Err(violation("obs line after the done line".to_owned()));
            }
            obs.parse_wire_line(rest)
                .map_err(|e| violation(e.to_string()))?;
        } else if let Some(rest) = line.strip_prefix("job ") {
            if done {
                return Err(violation("job line after the done line".to_owned()));
            }
            let (id, provenance) = rest
                .split_once(' ')
                .ok_or_else(|| violation(format!("malformed job line '{line}'")))?;
            let id = u64::from_str_radix(id, 16)
                .map_err(|_| violation(format!("malformed job id in '{line}'")))?;
            let from_cache = match provenance {
                "simulated" => false,
                "cached" => true,
                other => {
                    return Err(violation(format!(
                        "unknown provenance '{other}' in '{line}'"
                    )))
                }
            };
            if !expected.contains(&id) {
                return Err(violation(format!(
                    "job {id:016x} does not belong to shard {shard}/{shards}"
                )));
            }
            if jobs.iter().any(|&(seen, _)| seen == id) {
                return Err(violation(format!("job {id:016x} reported twice")));
            }
            jobs.push((id, from_cache));
        } else if let Some(rest) = line.strip_prefix("done ") {
            let declared = rest
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("jobs="))
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| violation(format!("malformed done line '{line}'")))?;
            if declared != jobs.len() {
                return Err(violation(format!(
                    "done line declares {declared} jobs but {} were reported",
                    jobs.len()
                )));
            }
            done = true;
        } else {
            return Err(violation(format!("unexpected line '{line}'")));
        }
    }
    if !done {
        return Err(violation(
            "report ended without a done line (worker died mid-shard?)".to_owned(),
        ));
    }
    if jobs.len() != expected.len() {
        return Err(violation(format!(
            "shard executed {} of its {} assigned jobs",
            jobs.len(),
            expected.len()
        )));
    }
    Ok(ShardReport { jobs, obs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use crate::spec::{MemProfile, SweepSpec, TraceSource};
    use sigcomp::ExtScheme;
    use sigcomp_pipeline::OrgKind;
    use sigcomp_workloads::{suite_names, WorkloadSize};

    fn spec(workload_index: usize, org: OrgKind) -> JobSpec {
        JobSpec {
            scheme: ExtScheme::ThreeBit,
            org,
            workload: suite_names()[workload_index],
            size: WorkloadSize::Tiny,
            mem: MemProfile::Paper,
            source: TraceSource::Kernel,
        }
    }

    #[test]
    fn shard_values_parse_and_malformed_ones_are_named() {
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard("2/3"), Ok((2, 3)));
        for (raw, needle) in [
            ("", "expected INDEX/COUNT"),
            ("3", "expected INDEX/COUNT"),
            ("a/2", "'a' is not an integer"),
            ("1/b", "'b' is not an integer"),
            ("0/0", "must be positive"),
            ("3/2", "below the shard count"),
            ("2/2", "below the shard count"),
        ] {
            let err = parse_shard(raw).unwrap_err();
            assert!(err.contains(needle), "{raw:?}: {err}");
        }
    }

    #[test]
    fn dedup_groups_by_job_id_with_first_occurrence_leading() {
        let a = spec(0, OrgKind::Baseline32);
        let b = spec(0, OrgKind::ByteSerial);
        let deduped = dedup_jobs(&[a, b, a, b, a]);
        assert_eq!(deduped.unique, vec![a, b]);
        assert_eq!(deduped.leader_of, vec![0, 1, 0, 1, 0]);
        assert_eq!(deduped.leader_position, vec![0, 1]);
        assert_eq!(deduped.followers(), 3);
        let followers: Vec<bool> = (0..5).map(|p| deduped.is_follower(p)).collect();
        assert_eq!(followers, vec![false, false, true, true, true]);

        let empty = dedup_jobs(&[]);
        assert!(empty.unique.is_empty());
        assert_eq!(empty.followers(), 0);
    }

    #[test]
    fn worker_reports_are_verified_strictly() {
        let job = spec(0, OrgKind::ByteSerial);
        let id = job.job_id();
        let expected: HashSet<u64> = [id].into_iter().collect();
        let good = format!("{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\ndone jobs=1\n");
        let report = parse_report(&good, 0, 2, &expected).expect("valid report");
        assert_eq!(report.jobs, vec![(id, false)]);
        assert!(report.obs.is_empty());

        // v2: obs lines carry the worker's registry snapshot.
        let with_obs = format!(
            "{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\n\
             obs counter replay.jobs_simulated 1\n\
             obs hist replay.job count=1 sum=7 min=7 max=7 bounds=10,100 buckets=1,0,0\n\
             done jobs=1\n"
        );
        let report = parse_report(&with_obs, 0, 2, &expected).expect("valid report with obs");
        assert_eq!(report.obs.counter("replay.jobs_simulated"), 1);
        assert_eq!(report.obs.histograms["replay.job"].count, 1);

        for (stdout, needle) in [
            (String::new(), "empty report"),
            ("definitely not the header\n".to_owned(), "bad header"),
            (
                format!("{WORKER_HEADER} shard 1/2\ndone jobs=0\n"),
                "bad header",
            ),
            (
                format!("{WORKER_HEADER} shard 0/2\njob zz simulated\ndone jobs=1\n"),
                "malformed job id",
            ),
            (
                format!("{WORKER_HEADER} shard 0/2\njob {id:016x} teleported\ndone jobs=1\n"),
                "unknown provenance",
            ),
            (
                format!(
                    "{WORKER_HEADER} shard 0/2\njob {:016x} simulated\ndone jobs=1\n",
                    id ^ 1
                ),
                "does not belong to shard",
            ),
            (
                format!(
                    "{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\n\
                     job {id:016x} cached\ndone jobs=2\n"
                ),
                "reported twice",
            ),
            (
                format!("{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\ndone jobs=7\n"),
                "declares 7 jobs",
            ),
            (
                format!("{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\n"),
                "without a done line",
            ),
            (
                format!("{WORKER_HEADER} shard 0/2\ndone jobs=0\n"),
                "0 of its 1 assigned jobs",
            ),
            (
                format!(
                    "{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\n\
                     obs widget x 1\ndone jobs=1\n"
                ),
                "unknown metric kind",
            ),
            (
                format!(
                    "{WORKER_HEADER} shard 0/2\njob {id:016x} simulated\n\
                     done jobs=1\nobs counter replay.jobs_simulated 1\n"
                ),
                "obs line after the done line",
            ),
        ] {
            let err = parse_report(&stdout, 0, 2, &expected).unwrap_err();
            assert!(err.to_string().contains(needle), "{stdout:?}: {err}");
        }
    }

    #[test]
    fn subprocess_without_a_cache_is_a_named_error() {
        let jobs = SweepSpec::paper(WorkloadSize::Tiny)
            .workloads(&["rawcaudio"])
            .enumerate();
        let config = SubprocessConfig::new(2, "/definitely/not/a/binary");
        let options = SweepOptions::default();
        let err = run_subprocess(&jobs, &[], &options, &config).unwrap_err();
        assert!(matches!(err, ExecError::CacheRequired), "{err}");

        let zero = SubprocessConfig::new(0, "/definitely/not/a/binary");
        let err = run_subprocess(&jobs, &[], &options, &zero).unwrap_err();
        assert!(matches!(err, ExecError::Config(_)), "{err}");
    }

    #[test]
    fn subprocess_spawn_failures_name_the_shard() {
        let dir =
            std::env::temp_dir().join(format!("sigcomp-backend-spawn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("cache opens");
        let jobs = SweepSpec::paper(WorkloadSize::Tiny)
            .workloads(&["rawcaudio"])
            .enumerate();
        let config = SubprocessConfig::new(2, "/definitely/not/a/binary");
        let options = SweepOptions {
            cache: Some(cache),
            ..SweepOptions::default()
        };
        let err = run_subprocess(&jobs, &[], &options, &config).unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::Spawn {
                    shard: 0,
                    shards: 2,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("cannot spawn worker shard 0/2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_job_lists_short_circuit_without_spawning() {
        let dir =
            std::env::temp_dir().join(format!("sigcomp-backend-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("cache opens");
        let config = SubprocessConfig::new(3, "/definitely/not/a/binary");
        let options = SweepOptions {
            cache: Some(cache),
            ..SweepOptions::default()
        };
        let summary = run_subprocess(&[], &[], &options, &config).expect("empty run");
        assert!(summary.outcomes.is_empty());
        assert_eq!(summary.workers, 0);
        assert_eq!(summary.backend, "subprocess");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
