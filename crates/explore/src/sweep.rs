//! Running a sweep: per-job simulation, sharded accumulation, caching, and
//! dispatch onto the configured execution backend.

use crate::backend::{ExecBackend, ExecError};
use crate::cache::ResultCache;
use crate::executor::run_parallel;
use crate::spec::{JobSpec, SweepSpec, TraceInput, TraceSource};
use sigcomp::{ActivityReport, EnergyModel, StageActivity, TraceAnalyzer};
use sigcomp_isa::{DecodedTrace, ExecRecord, Trace};
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim, SimResult, Stage};
use sigcomp_workloads::{find, Benchmark, WorkloadSize};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The measured numbers of one job, independent of its specification.
///
/// Everything is an exact integer counter, so results are bit-identical
/// whether they come from a fresh simulation, a cache hit, or a merge of
/// either — floating-point derivations ([`JobOutcome::cpi`],
/// [`JobOutcome::energy_saving`]) happen only at read time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Retired instructions.
    pub instructions: u64,
    /// Total pipeline cycles.
    pub cycles: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Stall cycles from structural hazards (all stages).
    pub stall_structural: u64,
    /// Stall cycles from data hazards.
    pub stall_data_hazard: u64,
    /// Stall cycles from control hazards.
    pub stall_control: u64,
    /// Per-stage activity under this job's scheme vs the 32-bit baseline.
    pub activity: ActivityReport,
}

/// One simulated (or cache-restored) point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The point this outcome belongs to.
    pub spec: JobSpec,
    /// The measured counters.
    pub metrics: JobMetrics,
    /// Whether the result was restored from the cache instead of simulated.
    pub from_cache: bool,
}

impl JobOutcome {
    /// Cycles per instruction. Like [`crate::ConfigPoint::cpi`], a job that
    /// retired no instructions (an empty replayed trace) has *infinite* CPI
    /// — not zero, which would rank it as the best-performing job in any
    /// export a consumer sorts by CPI.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.metrics.instructions == 0 {
            f64::INFINITY
        } else {
            self.metrics.cycles as f64 / self.metrics.instructions as f64
        }
    }

    /// Fractional total-energy (dynamic + static) saving of this
    /// configuration. The 32-bit baseline organization carries no extension
    /// bits, so its saving is zero by definition; every other organization
    /// is credited the reduction its scheme achieves under `model`. With a
    /// dynamic-only model this is exactly the dynamic saving.
    #[must_use]
    pub fn energy_saving(&self, model: &EnergyModel) -> f64 {
        if self.spec.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.saving(&self.metrics.activity)
        }
    }

    /// Fractional saving of the dynamic (switching) term alone — the
    /// paper's number, independent of the model's leakage weights.
    #[must_use]
    pub fn dynamic_energy_saving(&self, model: &EnergyModel) -> f64 {
        if self.spec.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.dynamic_saving(&self.metrics.activity)
        }
    }

    /// Fractional saving of the static (leakage) term alone; zero under a
    /// dynamic-only model.
    #[must_use]
    pub fn leakage_saving(&self, model: &EnergyModel) -> f64 {
        if self.spec.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.leakage_saving(&self.metrics.activity)
        }
    }
}

/// Per-worker sharded accumulation: integer counters only, so the final
/// worker-order merge is bit-identical no matter how jobs were scheduled.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepShard {
    /// Jobs simulated (cache hits excluded).
    pub simulated: u64,
    /// Jobs restored from the result cache.
    pub cached: u64,
    /// Instructions simulated (cache hits excluded).
    pub instructions_simulated: u64,
    /// Total activity observed across the shard's jobs.
    pub activity: ActivityReport,
}

impl SweepShard {
    /// Folds another shard into this one.
    pub fn merge(&mut self, other: &SweepShard) {
        self.simulated += other.simulated;
        self.cached += other.cached;
        self.instructions_simulated += other.instructions_simulated;
        self.activity.merge(&other.activity);
    }
}

/// How to run a sweep.
#[derive(Debug, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` uses the machine's available parallelism. On
    /// the subprocess backend this is the thread count *per shard*.
    pub workers: Option<usize>,
    /// Result cache; `None` simulates everything. Required by
    /// [`ExecBackend::Subprocess`], whose workers merge through it.
    pub cache: Option<ResultCache>,
    /// Where the jobs execute (default: the in-process thread pool).
    pub backend: ExecBackend,
}

impl SweepOptions {
    /// Runs with exactly `workers` threads and no cache.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        SweepOptions {
            workers: Some(workers),
            cache: None,
            backend: ExecBackend::LocalThreads,
        }
    }

    /// Attaches a result cache.
    #[must_use]
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Selects the execution backend.
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }
}

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct SweepSummary {
    /// Per-job outcomes, in [`SweepSpec::enumerate`] order — deterministic
    /// and independent of the worker count.
    pub outcomes: Vec<JobOutcome>,
    /// The worker shards folded together in worker order.
    pub totals: SweepShard,
    /// `(jobs, steals)` per worker, in worker order. On the subprocess
    /// backend a "worker" is one shard process (steals are always 0 there —
    /// the shard partition is static).
    pub worker_loads: Vec<(u64, u64)>,
    /// Worker threads (local backend) or shard processes (subprocess
    /// backend) actually used.
    pub workers: usize,
    /// Wall-clock time of the parallel phase.
    pub wall: Duration,
    /// Stable id of the backend that executed the sweep
    /// ([`ExecBackend::id`]): `"local"`, `"subprocess"` or `"fleet"`.
    pub backend: &'static str,
    /// On the subprocess backend, each shard's observability snapshot as
    /// reported over the worker protocol, in shard order (on the fleet
    /// backend, each worker server's snapshot in dispatch order) — the
    /// per-shard attribution behind the merged view the parent's global
    /// registry carries. Empty on the local backend (metrics were recorded
    /// into the parent's registry directly).
    pub shard_obs: Vec<sigcomp_obs::Snapshot>,
}

impl SweepSummary {
    /// Jobs simulated this run (cache misses).
    #[must_use]
    pub fn simulated(&self) -> u64 {
        self.totals.simulated
    }

    /// Jobs answered from the result cache.
    #[must_use]
    pub fn cached(&self) -> u64 {
        self.totals.cached
    }
}

/// Simulates one design point against an already-built benchmark: a single
/// interpreter pass feeds both the cycle-level timing model and the
/// activity study.
///
/// # Panics
///
/// Panics if the kernel fails to execute (a workload bug, not a runtime
/// condition).
#[must_use]
pub fn simulate_job(spec: &JobSpec, benchmark: &Benchmark) -> JobMetrics {
    let mut models = JobModels::new(spec);
    benchmark
        .run_each(|rec| models.observe(rec))
        .unwrap_or_else(|e| panic!("kernel {} failed: {e}", benchmark.name()));
    models.finish()
}

/// Simulates one design point against a recorded trace: the records are
/// replayed through exactly the models a live run feeds, in the same order,
/// so the resulting metrics are bit-identical to the run that recorded them.
#[must_use]
pub fn simulate_trace(spec: &JobSpec, trace: &Trace) -> JobMetrics {
    let mut models = JobModels::new(spec);
    for rec in trace {
        models.observe(rec);
    }
    models.finish()
}

/// [`simulate_trace`] over a decode-once arena: the records come out of the
/// shared [`DecodedTrace`] instead of a `Vec<ExecRecord>`, but they are the
/// same records in the same order, so the metrics are bit-identical.
#[must_use]
pub fn simulate_decoded(spec: &JobSpec, trace: &DecodedTrace) -> JobMetrics {
    let mut models = JobModels::new(spec);
    for rec in trace.iter() {
        models.observe(&rec);
    }
    models.finish()
}

/// The model stack one job drives — a single stream of [`ExecRecord`]s feeds
/// both the cycle-level timing simulator and the activity study, whether the
/// stream comes from a live interpreter or a replayed file.
struct JobModels {
    org: Organization,
    sim: PipelineSim,
    analyzer: TraceAnalyzer,
}

impl JobModels {
    fn new(spec: &JobSpec) -> Self {
        let hierarchy = spec.mem.hierarchy();
        let config = spec.analyzer_config();
        let recoder = config.recoder.clone();
        let org = spec.organization();
        JobModels {
            sim: PipelineSim::with_config(org.clone(), &hierarchy, recoder),
            org,
            analyzer: TraceAnalyzer::new(config),
        }
    }

    fn observe(&mut self, rec: &ExecRecord) {
        // Both models run under the same scheme and recoder (they come from
        // the same JobSpec), so the record is distilled into its cost vector
        // once and shared instead of once per model.
        let config = self.analyzer.config();
        let cost = sigcomp::cost::instr_cost(rec, config.scheme, &config.recoder);
        self.sim.observe_with_cost(rec, &cost);
        self.analyzer.observe_with_cost(rec, &cost);
    }

    fn finish(self) -> JobMetrics {
        let mut activity = self.analyzer.report();
        let result = self.sim.finish();
        apply_pipeline_gating(&mut activity, &self.org, &result);
        JobMetrics {
            instructions: result.instructions,
            cycles: result.cycles,
            branches: result.branches,
            stall_structural: result.stalls.structural.iter().sum(),
            stall_data_hazard: result.stalls.data_hazard,
            stall_control: result.stalls.control,
            activity,
        }
    }
}

/// Replaces the gated-lane occupancy of the datapath columns with the timed
/// pipeline's per-stage counters.
///
/// The analyzer's occupancy is one slot per instruction per structure — the
/// paper's organization-independent activity framing, right for the dynamic
/// (switching) term. Static leakage, though, accrues over *time* in the
/// lanes an organization actually builds: a byte-serial machine holds one
/// narrow ALU busy for many cycles (little to gate, long runtime), the
/// full-width compressed machine powers wide lanes briefly and gates most
/// of them. The sweep therefore weighs the leakage term with the timing
/// model's `lane width × occupied cycles` budgets (miss stalls included),
/// which differ per organization; the switching counters are untouched, so
/// every dynamic figure stays bit-identical to the activity study.
///
/// The PC incrementer, pipeline latches and tag array have no timed stage
/// of their own; their analyzer-side occupancy is kept.
fn apply_pipeline_gating(activity: &mut ActivityReport, org: &Organization, result: &SimResult) {
    fn mapped(activity: &mut ActivityReport, stage: Stage) -> &mut StageActivity {
        match stage {
            Stage::Fetch => &mut activity.fetch,
            Stage::RegRead => &mut activity.rf_read,
            Stage::Execute | Stage::ExecuteHi => &mut activity.alu,
            Stage::Memory | Stage::MemoryHi => &mut activity.dcache_data,
            Stage::Writeback => &mut activity.rf_write,
        }
    }
    for &stage in org.stages() {
        let column = mapped(activity, stage);
        column.gated_byte_cycles = 0;
        column.total_byte_cycles = 0;
    }
    for (s, &stage) in org.stages().iter().enumerate() {
        mapped(activity, stage)
            .add_gating(result.gated_byte_cycles[s], result.total_byte_cycles[s]);
    }
}

/// Runs the whole sweep: enumerates the design space, executes every job on
/// the configured [`ExecBackend`] (answering from the cache where possible),
/// and merges the shards.
///
/// Outcomes and totals are bit-identical for every worker count *and* shard
/// count: results are reassembled in job order and shards hold only integer
/// counters.
///
/// # Errors
///
/// Any [`ExecError`] from the subprocess backend (a dead or misbehaving
/// worker child, a missing cache); the local backend is infallible.
pub fn try_run_sweep(spec: &SweepSpec, options: &SweepOptions) -> Result<SweepSummary, ExecError> {
    try_run_jobs_traced(&spec.enumerate(), spec.trace_inputs(), options)
}

/// Infallible [`try_run_sweep`] for the local backend.
///
/// # Panics
///
/// Panics if a workload named by the spec does not exist or fails to run, or
/// if the configured backend reports an [`ExecError`] (use [`try_run_sweep`]
/// when running on the fallible subprocess backend).
#[must_use]
pub fn run_sweep(spec: &SweepSpec, options: &SweepOptions) -> SweepSummary {
    try_run_sweep(spec, options).unwrap_or_else(|e| panic!("sweep execution failed: {e}"))
}

/// Runs an explicit batch of jobs — the submission API that long-running
/// front-ends (e.g. `sigcomp-serve`) feed coalesced request batches into.
///
/// Exactly the engine behind [`try_run_sweep`], minus the design-space
/// enumeration: every job runs on the configured backend, cache hits are
/// substituted where [`SweepOptions::cache`] holds a result, and
/// [`SweepSummary::outcomes`] comes back in `jobs` order. On the local
/// backend duplicate specs in `jobs` are each answered — batch
/// deduplication is the caller's concern, keyed by [`JobSpec::job_id`]
/// (see [`crate::dedup_jobs`]); the subprocess backend dedups internally
/// and answers follower positions from their leader's run.
///
/// # Errors
///
/// Any [`ExecError`] from the subprocess backend; the local backend is
/// infallible.
pub fn try_run_jobs(jobs: &[JobSpec], options: &SweepOptions) -> Result<SweepSummary, ExecError> {
    try_run_jobs_traced(jobs, &[], options)
}

/// Infallible [`try_run_jobs`] for the local backend.
///
/// # Panics
///
/// Panics if a workload named by a job does not exist or fails to run, if a
/// [`TraceSource::File`] job's digest has no matching trace (use
/// [`run_jobs_traced`] to supply recorded traces), or if the configured
/// backend reports an [`ExecError`].
#[must_use]
pub fn run_jobs(jobs: &[JobSpec], options: &SweepOptions) -> SweepSummary {
    try_run_jobs(jobs, options).unwrap_or_else(|e| panic!("job execution failed: {e}"))
}

/// [`try_run_jobs`] with a set of recorded traces resolving the jobs'
/// [`TraceSource::File`] digests. Kernel jobs ignore `traces` entirely.
/// (On the subprocess backend workers re-load traces from
/// [`crate::SubprocessConfig::trace_paths`]; the wire protocol ships only
/// content digests.)
///
/// # Errors
///
/// Any [`ExecError`] from the subprocess backend; the local backend is
/// infallible.
pub fn try_run_jobs_traced(
    jobs: &[JobSpec],
    traces: &[TraceInput],
    options: &SweepOptions,
) -> Result<SweepSummary, ExecError> {
    match &options.backend {
        ExecBackend::LocalThreads => Ok(run_jobs_local(jobs, traces, options)),
        ExecBackend::Subprocess(config) => {
            crate::backend::run_subprocess(jobs, traces, options, config)
        }
        ExecBackend::Fleet(config) => crate::backend::run_fleet(jobs, traces, options, config),
    }
}

/// Infallible [`try_run_jobs_traced`] for the local backend.
///
/// # Panics
///
/// Panics if a workload named by a job does not exist or fails to run, if a
/// file job's digest matches none of `traces` — both indicate a bug in the
/// caller's sweep assembly, not a runtime condition — or if the configured
/// backend reports an [`ExecError`].
#[must_use]
pub fn run_jobs_traced(
    jobs: &[JobSpec],
    traces: &[TraceInput],
    options: &SweepOptions,
) -> SweepSummary {
    try_run_jobs_traced(jobs, traces, options)
        .unwrap_or_else(|e| panic!("job execution failed: {e}"))
}

/// The [`ExecBackend::LocalThreads`] engine: every job on the in-process
/// work-stealing executor, results reassembled in job order.
fn run_jobs_local(jobs: &[JobSpec], traces: &[TraceInput], options: &SweepOptions) -> SweepSummary {
    // Mirror the executor's clamp so the summary reports the worker count
    // actually used.
    let workers = options.effective_workers().min(jobs.len().max(1));

    // Each (workload, size) is assembled at most once, shared by every job
    // that needs it — and not at all when all of its jobs hit the cache.
    let mut benchmarks: HashMap<(&'static str, WorkloadSize), OnceLock<Benchmark>> = HashMap::new();
    for job in jobs {
        if job.source == TraceSource::Kernel {
            benchmarks.entry((job.workload, job.size)).or_default();
        }
    }
    let traces_by_digest: HashMap<u64, &TraceInput> =
        traces.iter().map(|t| (t.digest(), t)).collect();

    // Handles are fetched once; the per-job hot path below records through
    // them lock-free.
    let obs = sigcomp_obs::global();
    let obs_simulated = obs.counter("replay.jobs_simulated");
    let obs_cached = obs.counter("replay.jobs_cached");
    let obs_instructions = obs.counter("replay.instructions");
    obs.gauge("explore.workers").set_max(workers as u64);

    let started = Instant::now();
    let (outcomes, reports) =
        run_parallel::<JobOutcome, SweepShard, _>(jobs.len(), workers, |index, shard| {
            let job = jobs[index];
            let key = job.job_id();
            let _span = sigcomp_obs::span!("replay.job", job_id = format_args!("{key:016x}"));
            let (metrics, from_cache) = if let Some(metrics) =
                options.cache.as_ref().and_then(|c| c.load(key))
            {
                (metrics, true)
            } else {
                let metrics = match job.source {
                    TraceSource::Kernel => {
                        let benchmark = benchmarks[&(job.workload, job.size)].get_or_init(|| {
                            find(job.workload, job.size)
                                .unwrap_or_else(|| panic!("unknown workload {}", job.workload))
                        });
                        simulate_job(&job, benchmark)
                    }
                    TraceSource::File { digest } => {
                        let input = traces_by_digest.get(&digest).unwrap_or_else(|| {
                            panic!("no trace with digest {digest:016x} for job {}", job.label())
                        });
                        simulate_decoded(&job, input.decoded())
                    }
                };
                if let Some(cache) = options.cache.as_ref() {
                    // A failed store only costs a re-simulation next run.
                    let _ = cache.store(key, &metrics);
                }
                (metrics, false)
            };
            if from_cache {
                shard.cached += 1;
                obs_cached.incr();
            } else {
                shard.simulated += 1;
                shard.instructions_simulated += metrics.instructions;
                obs_simulated.incr();
                obs_instructions.add(metrics.instructions);
            }
            shard.activity.merge(&metrics.activity);
            JobOutcome {
                spec: job,
                metrics,
                from_cache,
            }
        });
    let wall = started.elapsed();
    obs.histogram("explore.batch.wall", sigcomp_obs::DEFAULT_SPAN_BOUNDS_US)
        .observe(u64::try_from(wall.as_micros()).unwrap_or(u64::MAX));

    let mut totals = SweepShard::default();
    let mut worker_loads = Vec::with_capacity(reports.len());
    for report in &reports {
        totals.merge(&report.shard);
        worker_loads.push((report.jobs, report.steals));
    }

    SweepSummary {
        outcomes,
        totals,
        worker_loads,
        workers,
        wall,
        backend: "local",
        shard_obs: Vec::new(),
    }
}
