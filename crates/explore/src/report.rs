//! Sweep reporting: aggregation into configuration points, Pareto-frontier
//! extraction (dynamic-energy saving vs CPI), and CSV/JSON export.

use crate::spec::MemProfile;
use crate::sweep::JobOutcome;
use sigcomp::{ActivityReport, EnergyModel, ExtScheme};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;
use std::fmt::Write as _;

/// One hardware configuration (scheme × organization × memory × size) with
/// its metrics aggregated over every workload of the sweep, the way the
/// paper reports suite-level numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// Extension-bit scheme.
    pub scheme: ExtScheme,
    /// Pipeline organization.
    pub org: OrgKind,
    /// Memory-hierarchy profile.
    pub mem: MemProfile,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Workloads aggregated into this point.
    pub workloads: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Merged activity across the aggregated workloads.
    pub activity: ActivityReport,
}

impl ConfigPoint {
    /// Suite-level cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Suite-level fractional energy saving (zero for the baseline
    /// organization, which carries no extension bits).
    #[must_use]
    pub fn energy_saving(&self, model: &EnergyModel) -> f64 {
        if self.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.saving(&self.activity)
        }
    }

    /// `scheme/org/mem/size` label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.scheme.id(),
            self.org.id(),
            self.mem.id(),
            self.size.name()
        )
    }
}

/// Aggregates per-job outcomes into configuration points, in first-seen
/// (job-enumeration) order — deterministic because the outcome list is.
#[must_use]
pub fn config_points(outcomes: &[JobOutcome]) -> Vec<ConfigPoint> {
    let mut points: Vec<ConfigPoint> = Vec::new();
    for outcome in outcomes {
        let spec = outcome.spec;
        let point = points.iter_mut().find(|p| {
            p.scheme == spec.scheme && p.org == spec.org && p.mem == spec.mem && p.size == spec.size
        });
        let point = match point {
            Some(p) => p,
            None => {
                points.push(ConfigPoint {
                    scheme: spec.scheme,
                    org: spec.org,
                    mem: spec.mem,
                    size: spec.size,
                    workloads: 0,
                    instructions: 0,
                    cycles: 0,
                    activity: ActivityReport::default(),
                });
                points.last_mut().expect("just pushed")
            }
        };
        point.workloads += 1;
        point.instructions += outcome.metrics.instructions;
        point.cycles += outcome.metrics.cycles;
        point.activity.merge(&outcome.metrics.activity);
    }
    points
}

/// Extracts the Pareto frontier of the energy/performance trade-off: a point
/// survives if no other point has both lower-or-equal CPI and
/// higher-or-equal energy saving (with at least one strict). The frontier is
/// returned sorted by CPI ascending.
#[must_use]
pub fn pareto_frontier(points: &[ConfigPoint], model: &EnergyModel) -> Vec<ConfigPoint> {
    let mut frontier: Vec<ConfigPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                let better_cpi = q.cpi() <= p.cpi();
                let better_saving = q.energy_saving(model) >= p.energy_saving(model);
                let strictly = q.cpi() < p.cpi() || q.energy_saving(model) > p.energy_saving(model);
                better_cpi && better_saving && strictly
            })
        })
        .copied()
        .collect();
    frontier.sort_by(|a, b| {
        a.cpi()
            .partial_cmp(&b.cpi())
            .expect("CPI is never NaN")
            .then_with(|| a.label().cmp(&b.label()))
    });
    frontier.dedup_by(|a, b| a.label() == b.label());
    frontier
}

/// Formats the configuration points (frontier members starred) in the same
/// fixed-width style as the paper tables in `sigcomp-bench`.
#[must_use]
pub fn frontier_table(points: &[ConfigPoint], model: &EnergyModel) -> String {
    let frontier = pareto_frontier(points, model);
    let on_frontier = |p: &ConfigPoint| frontier.iter().any(|f| f.label() == p.label());
    let mut sorted: Vec<ConfigPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.cpi()
            .partial_cmp(&b.cpi())
            .expect("CPI is never NaN")
            .then_with(|| a.label().cmp(&b.label()))
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Energy/performance frontier (dynamic-energy saving vs CPI; * = Pareto-optimal)"
    );
    let _ = writeln!(
        out,
        "{:<44} {:>8} {:>15} {:>9}",
        "configuration", "CPI", "energy saving", "frontier"
    );
    for p in &sorted {
        let _ = writeln!(
            out,
            "{:<44} {:>8.3} {:>14.1}% {:>9}",
            p.label(),
            p.cpi(),
            p.energy_saving(model) * 100.0,
            if on_frontier(p) { "*" } else { "" }
        );
    }
    let _ = writeln!(
        out,
        "{} of {} configurations are Pareto-optimal",
        frontier.len(),
        points.len()
    );
    out
}

/// Serializes per-job outcomes as CSV (header + one row per job), in job
/// order. Numeric formatting is fixed, so equal outcomes give byte-equal
/// files.
#[must_use]
pub fn to_csv(outcomes: &[JobOutcome], model: &EnergyModel) -> String {
    let mut out = String::new();
    out.push_str(
        "job_id,workload,size,scheme,org,mem,source,from_cache,instructions,cycles,branches,\
         stall_structural,stall_data_hazard,stall_control,cpi,energy_saving\n",
    );
    for o in outcomes {
        let m = &o.metrics;
        let _ = writeln!(
            out,
            "{:016x},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6}",
            o.spec.job_id(),
            o.spec.workload,
            o.spec.size_label(),
            o.spec.scheme.id(),
            o.spec.org.id(),
            o.spec.mem.id(),
            o.spec.source_id(),
            u8::from(o.from_cache),
            m.instructions,
            m.cycles,
            m.branches,
            m.stall_structural,
            m.stall_data_hazard,
            m.stall_control,
            o.cpi(),
            o.energy_saving(model),
        );
    }
    out
}

/// Serializes per-job outcomes as a JSON array, in job order. Hand-rolled
/// (the workspace carries no serialization dependency); every emitted value
/// is a number or a `[a-z0-9/_-]` string, so no escaping is required.
#[must_use]
pub fn to_json(outcomes: &[JobOutcome], model: &EnergyModel) -> String {
    let mut out = String::from("[\n");
    for (i, o) in outcomes.iter().enumerate() {
        let m = &o.metrics;
        let _ = write!(
            out,
            "  {{\"job_id\": \"{:016x}\", \"workload\": \"{}\", \"size\": \"{}\", \
             \"scheme\": \"{}\", \"org\": \"{}\", \"mem\": \"{}\", \"source\": \"{}\", \
             \"from_cache\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"branches\": {}, \
             \"stall_structural\": {}, \"stall_data_hazard\": {}, \"stall_control\": {}, \
             \"cpi\": {:.6}, \"energy_saving\": {:.6}}}",
            o.spec.job_id(),
            o.spec.workload,
            o.spec.size_label(),
            o.spec.scheme.id(),
            o.spec.org.id(),
            o.spec.mem.id(),
            o.spec.source_id(),
            o.from_cache,
            m.instructions,
            m.cycles,
            m.branches,
            m.stall_structural,
            m.stall_data_hazard,
            m.stall_control,
            o.cpi(),
            o.energy_saving(model),
        );
        out.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;
    use crate::sweep::JobMetrics;

    fn outcome(org: OrgKind, workload: &'static str, cycles: u64, saving_bits: u64) -> JobOutcome {
        let activity = ActivityReport {
            alu: sigcomp::StageActivity::new(1000 - saving_bits, 1000),
            ..ActivityReport::default()
        };
        JobOutcome {
            spec: JobSpec {
                scheme: ExtScheme::ThreeBit,
                org,
                workload,
                size: WorkloadSize::Tiny,
                mem: MemProfile::Paper,
                source: crate::TraceSource::Kernel,
            },
            metrics: JobMetrics {
                instructions: 1000,
                cycles,
                branches: 10,
                stall_structural: 1,
                stall_data_hazard: 2,
                stall_control: 3,
                activity,
            },
            from_cache: false,
        }
    }

    #[test]
    fn points_aggregate_workloads_per_configuration() {
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::Baseline32, "b", 1300, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
        ];
        let points = config_points(&outcomes);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workloads, 2);
        assert_eq!(points[0].instructions, 2000);
        assert!((points[0].cpi() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn frontier_keeps_only_undominated_points() {
        // baseline: cpi 1.1, saving 0 (by definition).
        // byte-serial: cpi 1.9, saving 30 % — on the frontier.
        // semi-parallel: cpi 1.3, saving 30 % — dominates byte-serial? No:
        // byte-serial has equal saving and worse cpi → byte-serial is off.
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
            outcome(OrgKind::SemiParallel, "a", 1300, 300),
        ];
        let model = EnergyModel::default();
        let frontier = pareto_frontier(&config_points(&outcomes), &model);
        let labels: Vec<String> = frontier.iter().map(ConfigPoint::label).collect();
        assert_eq!(labels.len(), 2, "{labels:?}");
        assert!(labels[0].contains("baseline32"));
        assert!(labels[1].contains("semi-parallel"));

        let table = frontier_table(&config_points(&outcomes), &model);
        assert!(table.contains("Pareto-optimal"));
        assert!(table.contains('*'));
    }

    #[test]
    fn csv_and_json_are_deterministic() {
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
        ];
        let model = EnergyModel::default();
        let csv = to_csv(&outcomes, &model);
        assert_eq!(csv, to_csv(&outcomes, &model));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().contains("baseline32"));
        let json = to_json(&outcomes, &model);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"workload\"").count(), 2);
    }
}
