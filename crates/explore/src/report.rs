//! Sweep reporting: aggregation into configuration points, Pareto-frontier
//! extraction (total-energy saving vs CPI), and CSV/JSON export.
//!
//! Exports are energy-model aware: with a dynamic-only model (every leakage
//! weight zero, e.g. [`sigcomp::ProcessNode::Paper180nm`]) the emitted bytes
//! are exactly the paper-era format; a model with nonzero leakage weights
//! adds `total_energy_saving` and `leakage_saving` columns alongside the
//! dynamic `energy_saving` figure.

use crate::spec::MemProfile;
use crate::sweep::JobOutcome;
use sigcomp::{ActivityReport, EnergyModel, ExtScheme};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;
use std::fmt::Write as _;

/// One hardware configuration (scheme × organization × memory × size) with
/// its metrics aggregated over every workload of the sweep, the way the
/// paper reports suite-level numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// Extension-bit scheme.
    pub scheme: ExtScheme,
    /// Pipeline organization.
    pub org: OrgKind,
    /// Memory-hierarchy profile.
    pub mem: MemProfile,
    /// Workload scale.
    pub size: WorkloadSize,
    /// Workloads aggregated into this point.
    pub workloads: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Merged activity across the aggregated workloads.
    pub activity: ActivityReport,
}

impl ConfigPoint {
    /// Suite-level cycles per instruction. A point that retired no
    /// instructions (e.g. an aggregation of empty replayed traces) has
    /// *infinite* CPI — not zero, which would let it Pareto-dominate every
    /// real configuration.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Suite-level fractional total-energy saving under `model` (zero for
    /// the baseline organization, which carries no extension bits). With a
    /// dynamic-only model this is exactly the dynamic saving.
    #[must_use]
    pub fn energy_saving(&self, model: &EnergyModel) -> f64 {
        if self.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.saving(&self.activity)
        }
    }

    /// Fractional saving of the dynamic (switching) term alone — the
    /// paper's number, independent of the model's leakage weights.
    #[must_use]
    pub fn dynamic_energy_saving(&self, model: &EnergyModel) -> f64 {
        if self.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.dynamic_saving(&self.activity)
        }
    }

    /// Fractional saving of the static (leakage) term alone; zero under a
    /// dynamic-only model.
    #[must_use]
    pub fn leakage_saving(&self, model: &EnergyModel) -> f64 {
        if self.org == OrgKind::Baseline32 {
            0.0
        } else {
            model.leakage_saving(&self.activity)
        }
    }

    /// `scheme/org/mem/size` label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.scheme.id(),
            self.org.id(),
            self.mem.id(),
            self.size.name()
        )
    }
}

/// Aggregates per-job outcomes into configuration points, in first-seen
/// (job-enumeration) order — deterministic because the outcome list is.
#[must_use]
pub fn config_points(outcomes: &[JobOutcome]) -> Vec<ConfigPoint> {
    let mut points: Vec<ConfigPoint> = Vec::new();
    for outcome in outcomes {
        let spec = outcome.spec;
        let point = points.iter_mut().find(|p| {
            p.scheme == spec.scheme && p.org == spec.org && p.mem == spec.mem && p.size == spec.size
        });
        let point = if let Some(p) = point {
            p
        } else {
            points.push(ConfigPoint {
                scheme: spec.scheme,
                org: spec.org,
                mem: spec.mem,
                size: spec.size,
                workloads: 0,
                instructions: 0,
                cycles: 0,
                activity: ActivityReport::default(),
            });
            points.last_mut().expect("just pushed")
        };
        point.workloads += 1;
        point.instructions += outcome.metrics.instructions;
        point.cycles += outcome.metrics.cycles;
        point.activity.merge(&outcome.metrics.activity);
    }
    points
}

/// Per-point figures computed once per report: the O(n²) dominance scan and
/// the table/sort paths compare these cached values instead of re-deriving
/// CPI, energy savings and label strings on every comparison.
struct PointMetrics {
    cpi: f64,
    saving: f64,
    dynamic_saving: f64,
    leakage_saving: f64,
    label: String,
}

fn point_metrics(points: &[ConfigPoint], model: &EnergyModel) -> Vec<PointMetrics> {
    points
        .iter()
        .map(|p| PointMetrics {
            cpi: p.cpi(),
            saving: p.energy_saving(model),
            dynamic_saving: p.dynamic_energy_saving(model),
            leakage_saving: p.leakage_saving(model),
            label: p.label(),
        })
        .collect()
}

/// Frontier membership over cached metrics: `true` for every point no other
/// point dominates. Zero-instruction points (infinite CPI) measured nothing
/// and can neither dominate nor join the frontier.
fn frontier_membership(metrics: &[PointMetrics]) -> Vec<bool> {
    metrics
        .iter()
        .map(|p| {
            p.cpi.is_finite()
                && !metrics.iter().any(|q| {
                    q.cpi.is_finite()
                        && q.cpi <= p.cpi
                        && q.saving >= p.saving
                        && (q.cpi < p.cpi || q.saving > p.saving)
                })
        })
        .collect()
}

/// Extracts the Pareto frontier of the energy/performance trade-off: a point
/// survives if no other point has both lower-or-equal CPI and
/// higher-or-equal total-energy saving (with at least one strict). The
/// frontier is returned sorted by CPI ascending. Points that retired no
/// instructions are excluded — an empty replayed trace measures nothing and
/// must not outrank real configurations.
#[must_use]
pub fn pareto_frontier(points: &[ConfigPoint], model: &EnergyModel) -> Vec<ConfigPoint> {
    let metrics = point_metrics(points, model);
    let membership = frontier_membership(&metrics);
    let mut frontier: Vec<usize> = (0..points.len()).filter(|&i| membership[i]).collect();
    frontier.sort_by(|&a, &b| {
        metrics[a]
            .cpi
            .partial_cmp(&metrics[b].cpi)
            .expect("CPI is never NaN")
            .then_with(|| metrics[a].label.cmp(&metrics[b].label))
    });
    frontier.dedup_by(|&mut a, &mut b| metrics[a].label == metrics[b].label);
    frontier.into_iter().map(|i| points[i]).collect()
}

/// Formats the configuration points (frontier members starred) in the same
/// fixed-width style as the paper tables in `sigcomp-bench`. Under a
/// dynamic-only model the columns are exactly the paper-era table; a model
/// with leakage weights adds the total and leakage savings.
#[must_use]
pub fn frontier_table(points: &[ConfigPoint], model: &EnergyModel) -> String {
    let metrics = point_metrics(points, model);
    let membership = frontier_membership(&metrics);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        metrics[a]
            .cpi
            .partial_cmp(&metrics[b].cpi)
            .expect("CPI is never NaN")
            .then_with(|| metrics[a].label.cmp(&metrics[b].label))
    });
    let leaky = model.has_leakage();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Energy/performance frontier ({}-energy saving vs CPI; * = Pareto-optimal)",
        if leaky { "total" } else { "dynamic" }
    );
    if leaky {
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>15} {:>15} {:>15} {:>9}",
            "configuration", "CPI", "dynamic saving", "leakage saving", "total saving", "frontier"
        );
    } else {
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>15} {:>9}",
            "configuration", "CPI", "energy saving", "frontier"
        );
    }
    for &i in &order {
        let m = &metrics[i];
        let star = if membership[i] { "*" } else { "" };
        if leaky {
            let _ = writeln!(
                out,
                "{:<44} {:>8.3} {:>14.1}% {:>14.1}% {:>14.1}% {:>9}",
                m.label,
                m.cpi,
                m.dynamic_saving * 100.0,
                m.leakage_saving * 100.0,
                m.saving * 100.0,
                star
            );
        } else {
            let _ = writeln!(
                out,
                "{:<44} {:>8.3} {:>14.1}% {:>9}",
                m.label,
                m.cpi,
                m.saving * 100.0,
                star
            );
        }
    }
    let _ = writeln!(
        out,
        "{} of {} configurations are Pareto-optimal",
        membership.iter().filter(|&&m| m).count(),
        points.len()
    );
    out
}

/// Escapes one CSV field per RFC 4180: fields containing a quote, comma, or
/// line break are wrapped in quotes with embedded quotes doubled; clean
/// fields (every built-in kernel and axis id) pass through byte-identically.
fn csv_field(s: &str) -> String {
    if s.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Formats a CPI figure for the JSON export: fixed six decimals, except
/// that the infinite CPI of a zero-instruction job becomes `null` — `inf`
/// is not a JSON number. (The CSV export prints `inf` literally; either
/// way a consumer sorting by CPI no longer sees the empty job as fastest.)
fn json_cpi(cpi: f64) -> String {
    if cpi.is_finite() {
        format!("{cpi:.6}")
    } else {
        "null".to_owned()
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Clean identifiers pass through byte-identically.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes per-job outcomes as CSV (header + one row per job), in job
/// order. Numeric formatting is fixed, so equal outcomes give byte-equal
/// files. Workload display names come from user-controlled trace file stems
/// and are RFC 4180-escaped; every other emitted string is a `[a-z0-9/_-]`
/// identifier. A model with leakage weights appends `total_energy_saving`
/// and `leakage_saving` columns; a dynamic-only model reproduces the
/// paper-era format bit for bit.
#[must_use]
pub fn to_csv(outcomes: &[JobOutcome], model: &EnergyModel) -> String {
    let leaky = model.has_leakage();
    let mut out = String::new();
    out.push_str(
        "job_id,workload,size,scheme,org,mem,source,from_cache,instructions,cycles,branches,\
         stall_structural,stall_data_hazard,stall_control,cpi,energy_saving",
    );
    if leaky {
        out.push_str(",total_energy_saving,leakage_saving");
    }
    out.push('\n');
    for o in outcomes {
        let m = &o.metrics;
        let _ = write!(
            out,
            "{:016x},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6}",
            o.spec.job_id(),
            csv_field(o.spec.workload),
            o.spec.size_label(),
            o.spec.scheme.id(),
            o.spec.org.id(),
            o.spec.mem.id(),
            o.spec.source_id(),
            u8::from(o.from_cache),
            m.instructions,
            m.cycles,
            m.branches,
            m.stall_structural,
            m.stall_data_hazard,
            m.stall_control,
            o.cpi(),
            o.dynamic_energy_saving(model),
        );
        if leaky {
            let _ = write!(
                out,
                ",{:.6},{:.6}",
                o.energy_saving(model),
                o.leakage_saving(model)
            );
        }
        out.push('\n');
    }
    out
}

/// Serializes per-job outcomes as a JSON array, in job order. Hand-rolled
/// (the workspace carries no serialization dependency); workload display
/// names come from user-controlled trace file stems and are escaped, every
/// other emitted value is a number or a `[a-z0-9/_-]` string. A model with
/// leakage weights appends `total_energy_saving` and `leakage_saving`
/// fields; a dynamic-only model reproduces the paper-era format bit for
/// bit.
#[must_use]
pub fn to_json(outcomes: &[JobOutcome], model: &EnergyModel) -> String {
    let leaky = model.has_leakage();
    let mut out = String::from("[\n");
    for (i, o) in outcomes.iter().enumerate() {
        let m = &o.metrics;
        let _ = write!(
            out,
            "  {{\"job_id\": \"{:016x}\", \"workload\": \"{}\", \"size\": \"{}\", \
             \"scheme\": \"{}\", \"org\": \"{}\", \"mem\": \"{}\", \"source\": \"{}\", \
             \"from_cache\": {}, \
             \"instructions\": {}, \"cycles\": {}, \"branches\": {}, \
             \"stall_structural\": {}, \"stall_data_hazard\": {}, \"stall_control\": {}, \
             \"cpi\": {}, \"energy_saving\": {:.6}",
            o.spec.job_id(),
            json_escape(o.spec.workload),
            o.spec.size_label(),
            o.spec.scheme.id(),
            o.spec.org.id(),
            o.spec.mem.id(),
            o.spec.source_id(),
            o.from_cache,
            m.instructions,
            m.cycles,
            m.branches,
            m.stall_structural,
            m.stall_data_hazard,
            m.stall_control,
            json_cpi(o.cpi()),
            o.dynamic_energy_saving(model),
        );
        if leaky {
            let _ = write!(
                out,
                ", \"total_energy_saving\": {:.6}, \"leakage_saving\": {:.6}",
                o.energy_saving(model),
                o.leakage_saving(model)
            );
        }
        out.push('}');
        out.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;
    use crate::sweep::JobMetrics;
    use sigcomp::{ProcessNode, StageActivity};

    fn outcome(org: OrgKind, workload: &'static str, cycles: u64, saving_bits: u64) -> JobOutcome {
        let activity = ActivityReport {
            alu: StageActivity::with_gating(1000 - saving_bits, 1000, 300, 1000),
            ..ActivityReport::default()
        };
        JobOutcome {
            spec: JobSpec {
                scheme: ExtScheme::ThreeBit,
                org,
                workload,
                size: WorkloadSize::Tiny,
                mem: MemProfile::Paper,
                source: crate::TraceSource::Kernel,
            },
            metrics: JobMetrics {
                instructions: 1000,
                cycles,
                branches: 10,
                stall_structural: 1,
                stall_data_hazard: 2,
                stall_control: 3,
                activity,
            },
            from_cache: false,
        }
    }

    /// An outcome from an empty replayed trace: no instructions, no cycles,
    /// no activity.
    fn empty_outcome(org: OrgKind) -> JobOutcome {
        JobOutcome {
            spec: JobSpec {
                scheme: ExtScheme::ThreeBit,
                org,
                workload: "empty",
                size: WorkloadSize::Default,
                mem: MemProfile::Paper,
                source: crate::TraceSource::File { digest: 0 },
            },
            metrics: JobMetrics::default(),
            from_cache: false,
        }
    }

    #[test]
    fn points_aggregate_workloads_per_configuration() {
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::Baseline32, "b", 1300, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
        ];
        let points = config_points(&outcomes);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workloads, 2);
        assert_eq!(points[0].instructions, 2000);
        assert!((points[0].cpi() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn frontier_keeps_only_undominated_points() {
        // baseline: cpi 1.1, saving 0 (by definition).
        // byte-serial: cpi 1.9, saving 30 % — on the frontier.
        // semi-parallel: cpi 1.3, saving 30 % — dominates byte-serial? No:
        // byte-serial has equal saving and worse cpi → byte-serial is off.
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
            outcome(OrgKind::SemiParallel, "a", 1300, 300),
        ];
        let model = EnergyModel::default();
        let frontier = pareto_frontier(&config_points(&outcomes), &model);
        let labels: Vec<String> = frontier.iter().map(ConfigPoint::label).collect();
        assert_eq!(labels.len(), 2, "{labels:?}");
        assert!(labels[0].contains("baseline32"));
        assert!(labels[1].contains("semi-parallel"));

        let table = frontier_table(&config_points(&outcomes), &model);
        assert!(table.contains("Pareto-optimal"));
        assert!(table.contains('*'));
        assert!(table.contains("dynamic-energy saving"));
        assert!(!table.contains("total saving"));
    }

    #[test]
    fn zero_instruction_points_never_dominate_or_join_the_frontier() {
        // Regression: `ConfigPoint::cpi()` used to report 0.0 for a point
        // with no instructions, which Pareto-dominated every real
        // configuration. An empty replayed trace must be excluded instead.
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::SemiParallel, "a", 1300, 300),
            empty_outcome(OrgKind::ByteSerial),
        ];
        let points = config_points(&outcomes);
        let empty = points
            .iter()
            .find(|p| p.instructions == 0)
            .expect("the empty point aggregates");
        assert_eq!(empty.cpi(), f64::INFINITY);

        let model = EnergyModel::default();
        let frontier = pareto_frontier(&points, &model);
        let labels: Vec<String> = frontier.iter().map(ConfigPoint::label).collect();
        assert_eq!(labels.len(), 2, "{labels:?}");
        assert!(labels[0].contains("baseline32"), "{labels:?}");
        assert!(labels[1].contains("semi-parallel"), "{labels:?}");
        assert!(
            !labels.iter().any(|l| l.contains("byte-serial")),
            "an empty point must never reach the frontier: {labels:?}"
        );
        // The real points must survive: the old 0.0-CPI bug made the empty
        // point dominate both of them.
        let table = frontier_table(&points, &model);
        assert!(table.contains("2 of 3 configurations"), "{table}");

        // The per-job exports must not rank the empty job best either: its
        // CPI exports as `null` (JSON has no inf) / `inf` (CSV), never 0.
        let json = to_json(&outcomes, &model);
        assert!(json.contains("\"cpi\": null"), "{json}");
        assert!(!json.contains("\"cpi\": 0.000000"), "{json}");
        let csv = to_csv(&outcomes, &model);
        assert!(csv.contains(",inf,"), "{csv}");
    }

    #[test]
    fn leaky_models_add_columns_and_can_shift_the_frontier() {
        // byte-serial: poor dynamic saving, heavy gating. semi-parallel:
        // better dynamic saving, no gating. Under the dynamic-only model
        // byte-serial is dominated; a leakage-heavy model rewards its gated
        // lanes and pulls it onto the frontier.
        let mut serial = outcome(OrgKind::ByteSerial, "a", 1900, 100);
        serial.metrics.activity.alu = StageActivity::with_gating(900, 1000, 900, 1000);
        let mut semi = outcome(OrgKind::SemiParallel, "a", 1300, 300);
        semi.metrics.activity.alu = StageActivity::with_gating(700, 1000, 0, 1000);
        let outcomes = vec![outcome(OrgKind::Baseline32, "a", 1100, 0), serial, semi];
        let points = config_points(&outcomes);

        let dynamic_only = ProcessNode::Paper180nm.model();
        let leaky = ProcessNode::Modern7nm.model();
        let dyn_labels: Vec<String> = pareto_frontier(&points, &dynamic_only)
            .iter()
            .map(ConfigPoint::label)
            .collect();
        let leaky_labels: Vec<String> = pareto_frontier(&points, &leaky)
            .iter()
            .map(ConfigPoint::label)
            .collect();
        assert!(!dyn_labels.iter().any(|l| l.contains("byte-serial")));
        assert!(
            leaky_labels.iter().any(|l| l.contains("byte-serial")),
            "{leaky_labels:?}"
        );

        let table = frontier_table(&points, &leaky);
        assert!(table.contains("total-energy saving"), "{table}");
        assert!(table.contains("leakage saving"), "{table}");

        let csv = to_csv(&outcomes, &leaky);
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("energy_saving,total_energy_saving,leakage_saving"));
        let json = to_json(&outcomes, &leaky);
        assert!(json.contains("\"total_energy_saving\": "));
        assert!(json.contains("\"leakage_saving\": "));
    }

    #[test]
    fn zero_leakage_exports_are_bit_identical_to_the_dynamic_only_format() {
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
        ];
        let default = EnergyModel::default();
        let paper = ProcessNode::Paper180nm.model();
        assert_eq!(to_csv(&outcomes, &default), to_csv(&outcomes, &paper));
        assert_eq!(to_json(&outcomes, &default), to_json(&outcomes, &paper));
        assert!(!to_csv(&outcomes, &paper).contains("total_energy_saving"));
        assert!(!to_json(&outcomes, &paper).contains("total_energy_saving"));
        let points = config_points(&outcomes);
        assert_eq!(
            frontier_table(&points, &default),
            frontier_table(&points, &paper)
        );
    }

    #[test]
    fn csv_and_json_are_deterministic() {
        let outcomes = vec![
            outcome(OrgKind::Baseline32, "a", 1100, 300),
            outcome(OrgKind::ByteSerial, "a", 1900, 300),
        ];
        let model = EnergyModel::default();
        let csv = to_csv(&outcomes, &model);
        assert_eq!(csv, to_csv(&outcomes, &model));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().contains("baseline32"));
        let json = to_json(&outcomes, &model);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"workload\"").count(), 2);
    }

    #[test]
    fn hostile_workload_names_are_escaped_in_csv_and_json() {
        // Trace display names come from user-controlled file stems: a stem
        // with quotes, commas or newlines must not corrupt the export
        // structure. (The name is &'static str; leak to build one, exactly
        // as spec interning does.)
        let nasty: &'static str = Box::leak("evil\",\ntrace,\"name\tx".to_owned().into_boxed_str());
        let mut o = outcome(OrgKind::ByteSerial, "placeholder", 1900, 300);
        o.spec.workload = nasty;
        o.spec.source = crate::TraceSource::File { digest: 7 };
        let outcomes = vec![o];
        let model = EnergyModel::default();

        let csv = to_csv(&outcomes, &model);
        // Header + exactly one record: the embedded newline must be quoted,
        // not a row break — so unquoting field 2 restores the raw name.
        let body = &csv[csv.find('\n').unwrap() + 1..];
        let quoted_start = body.find('"').expect("hostile field is quoted");
        let mut rest = &body[quoted_start + 1..];
        let mut recovered = String::new();
        loop {
            let q = rest.find('"').expect("quoted field terminates");
            recovered.push_str(&rest[..q]);
            if rest[q + 1..].starts_with('"') {
                recovered.push('"');
                rest = &rest[q + 2..];
            } else {
                break;
            }
        }
        assert_eq!(recovered, nasty);
        // Every other comma-separated field stays intact around it.
        assert!(body.starts_with(&format!("{:016x},", outcomes[0].spec.job_id())));
        assert!(body.contains(",trace,")); // the size/source columns survive

        let json = to_json(&outcomes, &model);
        // The document must stay parseable; round-trip the name through the
        // serve-side JSON parser idiom: find the workload field and check
        // the escapes are present.
        assert!(json.contains("evil\\\",\\ntrace,\\\"name\\tx"), "{json}");
        assert_eq!(json.matches("\"workload\"").count(), 1);
    }
}
