//! # sigcomp-explore
//!
//! Parallel design-space exploration for the significance-compression
//! models: the paper's results (Tables 5–6, Figures 4–10) are single points
//! in a space of extension scheme × pipeline organization × workload ×
//! workload size × cache geometry; this crate sweeps whole regions of that
//! space at once and reports the energy/performance trade-off.
//!
//! The engine has five parts:
//!
//! * [`SweepSpec`] — a builder that enumerates and filters the cross product
//!   into [`JobSpec`]s with deterministic indices and content-hashed
//!   [`JobSpec::job_id`]s,
//! * [`backend`] — the pluggable execution layer ([`ExecBackend`]):
//!   [`ExecBackend::LocalThreads`] runs jobs on the in-process
//!   work-stealing pool, [`ExecBackend::Subprocess`] shards the deduped
//!   job list across `repro worker` child processes that merge through the
//!   shared cache — with merged output **byte-identical to the
//!   single-process run for any shard count**,
//! * [`executor`] — the dependency-free work-stealing thread pool
//!   (`std` threads + channels) behind the local backend, whose merged
//!   output is **bit-identical for every worker count**: results are
//!   reassembled in job order and the per-worker statistic shards hold
//!   only integer counters,
//! * [`ResultCache`] — an on-disk cache keyed by job content hash, so
//!   re-running a sweep only simulates configurations whose parameters
//!   changed — and the merge point subprocess workers publish through,
//! * [`report`] — aggregation into per-configuration [`ConfigPoint`]s,
//!   Pareto-frontier extraction (dynamic-energy saving vs CPI) and CSV/JSON
//!   export.
//!
//! # Example
//!
//! ```
//! use sigcomp_explore::{run_sweep, SweepOptions, SweepSpec};
//! use sigcomp_workloads::WorkloadSize;
//!
//! let spec = SweepSpec::paper(WorkloadSize::Tiny).workloads(&["rawcaudio", "pgp"]);
//! let summary = run_sweep(&spec, &SweepOptions::with_workers(2));
//! assert_eq!(summary.outcomes.len(), 2 * 7);
//! let points = sigcomp_explore::config_points(&summary.outcomes);
//! let frontier = sigcomp_explore::pareto_frontier(&points, &Default::default());
//! assert!(!frontier.is_empty());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod backend;
mod cache;
pub mod executor;
pub mod prune;
pub mod report;
mod spec;
mod sweep;

pub use backend::{
    dedup_jobs, install_fleet_runner, parse_shard, DedupedJobs, ExecBackend, ExecError,
    FleetConfig, FleetRunner, SubprocessConfig, WORKER_HEADER,
};
pub use cache::{
    cache_stats, column_slug, decode_entry, encode_entry, entry_digest, CacheStats, ResultCache,
};
pub use executor::{run_parallel, WorkerReport};
pub use prune::{static_prune, PruneOutcome, PruneReason, PrunedJob};
pub use report::{config_points, frontier_table, pareto_frontier, to_csv, to_json, ConfigPoint};
pub use spec::{JobSpec, MemProfile, SweepSpec, TraceInput, TraceSource, SWEEP_FORMAT_VERSION};
pub use sweep::{
    run_jobs, run_jobs_traced, run_sweep, simulate_decoded, simulate_job, simulate_trace,
    try_run_jobs, try_run_jobs_traced, try_run_sweep, JobMetrics, JobOutcome, SweepOptions,
    SweepShard, SweepSummary,
};
