//! The engine's central guarantee: a sweep produces bit-identical merged
//! results for every worker count — and for every process count sharing one
//! result cache — and its cache keys are stable, so cached and
//! freshly-simulated runs are indistinguishable.

use sigcomp::EnergyModel;
use sigcomp_explore::{
    config_points, run_sweep, to_csv, to_json, JobSpec, MemProfile, ResultCache, SweepOptions,
    SweepSpec, TraceInput,
};
use sigcomp_workloads::{find, WorkloadSize};

fn small_spec() -> SweepSpec {
    // 2 workloads × 7 organizations × 2 schemes = 28 jobs; Tiny keeps each
    // job to a few thousand instructions.
    SweepSpec::paper(WorkloadSize::Tiny)
        .workloads(&["rawcaudio", "pgp"])
        .schemes(&[sigcomp::ExtScheme::ThreeBit, sigcomp::ExtScheme::Halfword])
}

#[test]
fn parallel_and_serial_sweeps_are_bit_identical() {
    let spec = small_spec();
    let serial = run_sweep(&spec, &SweepOptions::with_workers(1));
    for workers in [2, 4, 7] {
        let parallel = run_sweep(&spec, &SweepOptions::with_workers(workers));

        // Per-job outcomes match one for one, in the same order.
        assert_eq!(serial.outcomes, parallel.outcomes, "{workers} workers");

        // The sharded totals merge to the same integers.
        assert_eq!(
            serial.totals.activity, parallel.totals.activity,
            "{workers} workers"
        );
        assert_eq!(serial.totals.simulated, parallel.totals.simulated);
        assert_eq!(
            serial.totals.instructions_simulated,
            parallel.totals.instructions_simulated
        );

        // And the exported artefacts are byte-identical.
        let model = EnergyModel::default();
        assert_eq!(
            to_csv(&serial.outcomes, &model),
            to_csv(&parallel.outcomes, &model)
        );
        assert_eq!(
            to_json(&serial.outcomes, &model),
            to_json(&parallel.outcomes, &model)
        );
        assert_eq!(
            config_points(&serial.outcomes),
            config_points(&parallel.outcomes)
        );
    }
}

#[test]
fn cache_keys_are_identical_across_worker_counts_and_runs() {
    let spec = small_spec();
    let keys =
        |spec: &SweepSpec| -> Vec<u64> { spec.enumerate().iter().map(JobSpec::job_id).collect() };
    // Enumeration (and therefore the key sequence) does not depend on any
    // execution parameter — recompute a few times and compare.
    let reference = keys(&spec);
    assert_eq!(reference, keys(&spec));
    assert_eq!(reference.len(), 2 * 7 * 2);
    let unique: std::collections::HashSet<_> = reference.iter().collect();
    assert_eq!(unique.len(), reference.len());
}

#[test]
fn trace_file_jobs_are_deterministic_across_workers_and_cache_compatible() {
    // A recorded trace swept as a TraceSource::File axis behaves exactly
    // like a kernel axis: bit-identical across worker counts, and its
    // content-hashed job ids make cache hits indistinguishable from fresh
    // simulation.
    let trace = find("rawcaudio", WorkloadSize::Tiny)
        .unwrap()
        .trace()
        .unwrap();
    let input = TraceInput::from_trace("recorded-rawcaudio", trace).unwrap();
    let spec = SweepSpec::paper(WorkloadSize::Tiny)
        .no_kernels()
        .trace_files(std::slice::from_ref(&input));
    assert_eq!(spec.len(), 7);

    let serial = run_sweep(&spec, &SweepOptions::with_workers(1));
    let parallel = run_sweep(&spec, &SweepOptions::with_workers(4));
    assert_eq!(serial.outcomes, parallel.outcomes);

    // And the file-sourced metrics equal the live kernel's for the same
    // scheme/org/mem (the trace IS that execution).
    let kernel_spec = SweepSpec::paper(WorkloadSize::Tiny).workloads(&["rawcaudio"]);
    let live = run_sweep(&kernel_spec, &SweepOptions::with_workers(1));
    for (file_job, live_job) in serial.outcomes.iter().zip(&live.outcomes) {
        assert_eq!(file_job.spec.org, live_job.spec.org);
        assert_eq!(file_job.metrics, live_job.metrics);
        // Same result, different identity: the cache can never conflate a
        // file job with its kernel twin.
        assert_ne!(file_job.spec.job_id(), live_job.spec.job_id());
    }

    let dir = std::env::temp_dir().join(format!(
        "sigcomp-explore-trace-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cold = run_sweep(
        &spec,
        &SweepOptions::with_workers(2).cache(ResultCache::open(&dir).unwrap()),
    );
    assert_eq!(cold.simulated(), 7);
    let warm = run_sweep(
        &spec,
        &SweepOptions::with_workers(3).cache(ResultCache::open(&dir).unwrap()),
    );
    assert_eq!(warm.cached(), 7);
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.metrics, w.metrics);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_executors_share_one_cache_without_tearing_or_duplicates() {
    // Two executors hammering one ResultCache directory concurrently — a
    // running server plus a CLI sweep, or two shard processes of a sharded
    // sweep — must produce: no torn or duplicate entries, and merged
    // summaries bit-identical to an uncached reference run.
    let dir = std::env::temp_dir().join(format!("sigcomp-explore-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = small_spec();
    let reference = run_sweep(&spec, &SweepOptions::with_workers(2));

    let summaries: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|racer| {
                let spec = spec.clone();
                let dir = dir.clone();
                scope.spawn(move || {
                    run_sweep(
                        &spec,
                        &SweepOptions::with_workers(2 + racer)
                            .cache(ResultCache::open(&dir).expect("cache opens")),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for summary in &summaries {
        // Bit-identical to the uncached run, whatever mix of fresh
        // simulation and concurrent-cache hits each racer saw.
        assert_eq!(summary.outcomes.len(), reference.outcomes.len());
        for (raced, direct) in summary.outcomes.iter().zip(&reference.outcomes) {
            assert_eq!(raced.spec, direct.spec);
            assert_eq!(raced.metrics, direct.metrics);
        }
        assert_eq!(summary.totals.activity, reference.totals.activity);
        // Every job was answered exactly once per racer, one way or the
        // other. (Exports are not compared verbatim here: their from_cache
        // provenance column legitimately depends on which racer published
        // an entry first — every *measured* byte was asserted above.)
        assert_eq!(
            summary.totals.simulated + summary.totals.cached,
            spec.len() as u64
        );
    }

    // The cache holds exactly one entry per distinct job — no duplicates —
    // and no torn temp files leaked from the races.
    let cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len().unwrap(), spec.len());
    let leftovers = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "tmp")
        })
        .count();
    assert_eq!(leftovers, 0, "temp files must not leak");
    // And every entry round-trips to the reference metrics.
    for outcome in &reference.outcomes {
        assert_eq!(
            cache.load(outcome.spec.job_id()),
            Some(outcome.metrics),
            "{}",
            outcome.spec.label()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn obs_snapshots_merge_order_independently_and_round_trip_the_wire() {
    // The observability merge the sharded backend relies on: whatever order
    // the shard reports arrive in, the folded registry is identical — and
    // the wire form each worker prints re-parses to the exact snapshot.
    let make = |counter: u64, observations: &[u64]| {
        let registry = sigcomp_obs::Registry::new();
        registry.counter("replay.jobs_simulated").add(counter);
        registry.gauge("explore.workers").set_max(counter);
        let hist = registry.histogram("replay.job", sigcomp_obs::DEFAULT_SPAN_BOUNDS_US);
        for &value in observations {
            hist.observe(value);
        }
        registry.snapshot()
    };
    let shards = [
        make(3, &[40, 800, 120_000]),
        make(5, &[75, 75, 2_000_000]),
        make(1, &[999]),
    ];

    let merged = |order: &[usize]| {
        let target = sigcomp_obs::Registry::new();
        for &i in order {
            target.merge_snapshot(&shards[i]).unwrap();
        }
        target.snapshot()
    };
    let reference = merged(&[0, 1, 2]);
    for order in [[1, 2, 0], [2, 1, 0], [0, 2, 1]] {
        assert_eq!(reference, merged(&order), "merge order {order:?}");
    }
    assert_eq!(reference.counter("replay.jobs_simulated"), 9);
    assert_eq!(
        reference.gauges["explore.workers"], 5,
        "gauges merge by max"
    );

    // Wire round-trip, exactly as the worker protocol carries it.
    let wire = reference.to_wire();
    let reparsed = sigcomp_obs::Snapshot::from_wire(&wire).unwrap();
    assert_eq!(reference, reparsed);
    assert_eq!(wire, reparsed.to_wire());
}

#[test]
fn shard_registries_fold_to_the_single_process_registry() {
    // Splitting one run's observations across shard registries and merging
    // the snapshots must be indistinguishable from recording everything in
    // one process — the invariant behind `sweep --shards` obs totals.
    let observations: Vec<u64> = (0..28).map(|i| 50 + i * 37).collect();

    let single = sigcomp_obs::Registry::new();
    let hist = single.histogram("replay.job", sigcomp_obs::DEFAULT_SPAN_BOUNDS_US);
    for &value in &observations {
        single.counter("replay.jobs_simulated").incr();
        hist.observe(value);
    }

    let folded = sigcomp_obs::Registry::new();
    for shard in 0..3 {
        let registry = sigcomp_obs::Registry::new();
        let hist = registry.histogram("replay.job", sigcomp_obs::DEFAULT_SPAN_BOUNDS_US);
        for (i, &value) in observations.iter().enumerate() {
            if i % 3 == shard {
                registry.counter("replay.jobs_simulated").incr();
                hist.observe(value);
            }
        }
        folded.merge_snapshot(&registry.snapshot()).unwrap();
    }
    assert_eq!(single.snapshot(), folded.snapshot());

    // Quantiles are computed on the snapshot, so they agree too.
    let s = single.snapshot().histograms["replay.job"].clone();
    let f = folded.snapshot().histograms["replay.job"].clone();
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(s.quantile(q).to_bits(), f.quantile(q).to_bits());
    }
}

#[test]
fn second_run_hits_the_cache_with_identical_results() {
    let dir = std::env::temp_dir().join(format!(
        "sigcomp-explore-determinism-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = SweepSpec::paper(WorkloadSize::Tiny)
        .workloads(&["rawdaudio"])
        .mems(&[MemProfile::Paper, MemProfile::SlowMemory]);

    let cold = run_sweep(
        &spec,
        &SweepOptions::with_workers(2).cache(ResultCache::open(&dir).unwrap()),
    );
    assert_eq!(cold.simulated(), spec.len() as u64);
    assert_eq!(cold.cached(), 0);

    let warm = run_sweep(
        &spec,
        &SweepOptions::with_workers(3).cache(ResultCache::open(&dir).unwrap()),
    );
    assert_eq!(warm.simulated(), 0);
    assert_eq!(warm.cached(), spec.len() as u64);

    // Cache-restored outcomes are bit-identical to the simulated ones apart
    // from their provenance flag.
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        assert_eq!(c.spec, w.spec);
        assert_eq!(c.metrics, w.metrics);
        assert!(!c.from_cache);
        assert!(w.from_cache);
    }

    // A widened sweep only simulates the new configurations.
    let wider = spec.mems(&[
        MemProfile::Paper,
        MemProfile::SlowMemory,
        MemProfile::SmallL1,
    ]);
    let mixed = run_sweep(
        &wider,
        &SweepOptions::with_workers(2).cache(ResultCache::open(&dir).unwrap()),
    );
    assert_eq!(mixed.cached(), 2 * 7);
    assert_eq!(mixed.simulated(), 7);

    let _ = std::fs::remove_dir_all(&dir);
}
