//! The worker's side of fleet membership: a background thread that
//! registers with the frontier and then heartbeats on an interval, carrying
//! the worker's capacity and its current obs snapshot.
//!
//! Registration is retried until it succeeds (a worker may come up before
//! its frontier), and a lost heartbeat is just a counter — the worker keeps
//! trying, and the frontier's liveness TTL decides what silence means.

use crate::client::HttpClient;
use crate::proto;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often [`Heartbeater::spawn`]'s thread checks whether it was stopped;
/// bounds shutdown latency without busy-waiting.
const STOP_POLL: Duration = Duration::from_millis(100);

/// A handle to the background registration/heartbeat thread. Dropping it
/// without calling [`Heartbeater::stop`] detaches the thread (fine for a
/// worker process that heartbeats until it exits).
#[derive(Debug)]
pub struct Heartbeater {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Heartbeater {
    /// Spawns the membership thread: registers `self_addr` (this worker's
    /// dial-back `host:port`) with the frontier at `frontier`, retrying
    /// until the registration lands, then heartbeats every `interval` with
    /// the worker's capacity and the global registry's snapshot.
    #[must_use]
    pub fn spawn(frontier: String, self_addr: String, interval: Duration) -> Heartbeater {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || run(&frontier, &self_addr, interval, &flag));
        Heartbeater {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(frontier: &str, self_addr: &str, interval: Duration, stop: &AtomicBool) {
    let obs = sigcomp_obs::global();
    let client = HttpClient::new(interval.max(Duration::from_millis(250)));
    let capacity =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64;

    // Register until it lands; the frontier may not be up yet.
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let body = proto::encode_register(self_addr, capacity);
        match client.post(frontier, "/register", &body) {
            Ok(response) if response.status == 200 => {
                obs.counter("fleet.worker.registered").incr();
                break;
            }
            _ => obs.counter("fleet.worker.register_failures").incr(),
        }
        sleep_until(interval, stop);
    }

    // Heartbeat until stopped.
    loop {
        sleep_until(interval, stop);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let body = proto::encode_heartbeat(self_addr, capacity, &obs.snapshot());
        match client.post(frontier, "/heartbeat", &body) {
            Ok(response) if response.status == 200 => {
                obs.counter("fleet.worker.heartbeats").incr();
            }
            _ => obs.counter("fleet.worker.heartbeat_failures").incr(),
        }
    }
}

/// Sleeps `total` in [`STOP_POLL`] slices, returning early once stopped.
fn sleep_until(total: Duration, stop: &AtomicBool) {
    let mut remaining = total;
    while !remaining.is_zero() && !stop.load(Ordering::Relaxed) {
        let step = remaining.min(STOP_POLL);
        std::thread::sleep(step);
        remaining -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_heartbeater_against_a_dead_frontier_stops_promptly() {
        // Nothing listens here; the thread must spin on register retries
        // and still stop within a few polls.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let hb = Heartbeater::spawn(
            format!("127.0.0.1:{port}"),
            "127.0.0.1:1".to_owned(),
            Duration::from_millis(200),
        );
        std::thread::sleep(Duration::from_millis(50));
        let started = std::time::Instant::now();
        hb.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() must not hang on a dead frontier"
        );
    }
}
