//! The frontier: the fleet runner installed into `sigcomp-explore`.
//!
//! [`run_fleet_jobs`] is the [`FleetRunner`](sigcomp_explore::FleetRunner)
//! behind [`ExecBackend::Fleet`](sigcomp_explore::ExecBackend) and upholds
//! the contract every backend shares: outcomes in submission order, merged
//! output **byte-identical to a single-process run** for any worker count —
//! including zero workers, a worker list full of dead addresses, or a
//! worker killed mid-sweep.
//!
//! The shape deliberately mirrors the subprocess backend: dedup, sort the
//! unique jobs by content-hashed id, partition round-robin, execute, then
//! restore *everything* from the shared [`ResultCache`] and fold totals per
//! submitted position. Only the middle differs — instead of child
//! processes on one machine, shards travel as `POST /fleet/dispatch` bodies
//! to worker servers, and results come back as digest-verified cache-entry
//! bytes that the frontier replicates into its own cache. Because the cache
//! is the merge point and entries are keyed by config hash, the merge logic
//! cannot tell (and does not care) which machine produced a result.

use crate::client::HttpClient;
use crate::pool::{self, WorkerPool, DEFAULT_LIVENESS_TTL};
use crate::proto::{self, FleetReport};
use sigcomp_explore::{
    dedup_jobs, ExecBackend, ExecError, FleetConfig, JobSpec, SweepOptions, SweepShard,
    SweepSummary, TraceInput, TraceSource,
};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Upper bound on the exponential retry backoff.
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Runs `jobs` across the fleet: dedup, shard round-robin over the live
/// workers, dispatch with retry/backoff, re-shard a dead worker's jobs to
/// the survivors, and degrade to local execution when no workers remain.
///
/// Workers come from [`FleetConfig::workers`] when non-empty, otherwise
/// from the registered [`pool::global()`] members that heartbeated within
/// [`DEFAULT_LIVENESS_TTL`].
///
/// # Errors
///
/// [`ExecError::CacheRequired`] without a cache (it is the merge point),
/// [`ExecError::Config`] for trace-file jobs (the fleet wire carries only
/// content digests and workers have no trace channel yet), and
/// [`ExecError::ResultMissing`] if the cache lost an entry after execution.
/// Worker failures are *not* errors: they cost retries, then a re-shard,
/// then at worst a local fallback.
pub fn run_fleet_jobs(
    jobs: &[JobSpec],
    traces: &[TraceInput],
    options: &SweepOptions,
    config: &FleetConfig,
) -> Result<SweepSummary, ExecError> {
    let cache = options.cache.as_ref().ok_or(ExecError::CacheRequired)?;
    let started = Instant::now();
    if let Some(job) = jobs
        .iter()
        .find(|j| matches!(j.source, TraceSource::File { .. }))
    {
        return Err(ExecError::Config(format!(
            "job {:016x} is trace-sourced; the fleet backend dispatches kernel jobs only \
             (run trace sweeps locally or on the subprocess backend)",
            job.job_id()
        )));
    }
    let _ = traces; // kernel-only for now; kept for runner-signature parity
    if jobs.is_empty() {
        return Ok(SweepSummary {
            outcomes: Vec::new(),
            totals: SweepShard::default(),
            worker_loads: Vec::new(),
            workers: 0,
            wall: started.elapsed(),
            backend: "fleet",
            shard_obs: Vec::new(),
        });
    }

    let deduped = dedup_jobs(jobs);
    // Sorted by job id: the dispatch order is a pure function of the job
    // contents, so any fleet shape partitions the same list the same way.
    let mut ordered: Vec<(u64, usize)> = deduped
        .unique
        .iter()
        .enumerate()
        .map(|(u, job)| (job.job_id(), u))
        .collect();
    ordered.sort_unstable_by_key(|&(id, _)| id);
    let spec_of: HashMap<u64, JobSpec> = ordered
        .iter()
        .map(|&(id, u)| (id, deduped.unique[u]))
        .collect();

    let pool = pool::global();
    let mut live: Vec<String> = if config.workers.is_empty() {
        pool.live(DEFAULT_LIVENESS_TTL)
    } else {
        config.workers.clone()
    };
    live.sort_unstable();
    live.dedup();

    let obs = sigcomp_obs::global();
    let client = HttpClient::new(Duration::from_millis(config.timeout_ms.max(1)));
    let mut pending: Vec<u64> = ordered.iter().map(|&(id, _)| id).collect();
    let mut provenance: HashMap<u64, bool> = HashMap::new();
    let mut worker_loads: Vec<(u64, u64)> = Vec::new();
    let mut shard_obs: Vec<sigcomp_obs::Snapshot> = Vec::new();

    while !pending.is_empty() && !live.is_empty() {
        // Round-robin partition of the pending (id-sorted) jobs over the
        // live workers, skipping workers the round leaves empty.
        let assignments: Vec<(String, Vec<u64>)> = live
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let ids: Vec<u64> = pending
                    .iter()
                    .enumerate()
                    .filter(|(rank, _)| rank % live.len() == i)
                    .map(|(_, &id)| id)
                    .collect();
                (addr.clone(), ids)
            })
            .filter(|(_, ids)| !ids.is_empty())
            .collect();

        let results: Vec<(String, Result<FleetReport, String>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|(addr, ids)| {
                    let client = &client;
                    let spec_of = &spec_of;
                    scope.spawn(move || {
                        let shard: Vec<JobSpec> = ids.iter().map(|id| spec_of[id]).collect();
                        let outcome = dispatch_with_retry(client, addr, &shard, config, pool);
                        (addr.clone(), outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("dispatch thread never panics"))
                .collect()
        });

        let mut completed: HashSet<u64> = HashSet::new();
        let mut survivors: Vec<String> = Vec::new();
        let mut lost = false;
        for (addr, outcome) in results {
            match outcome {
                Ok(report) => {
                    // Replicate the worker's verified entry bytes into the
                    // local cache. Store failures are deliberately ignored
                    // here: the restore pass below is the arbiter, and a
                    // genuinely missing entry becomes ResultMissing there.
                    for (id, text) in &report.entries {
                        let _ = cache.store_entry_text(*id, text);
                    }
                    for &(id, from_cache) in &report.jobs {
                        provenance.insert(id, from_cache);
                        completed.insert(id);
                    }
                    obs.counter("fleet.frontier.dispatches").incr();
                    obs.counter("fleet.frontier.jobs_remote")
                        .add(report.jobs.len() as u64);
                    pool.note_dispatch(&addr);
                    pool.update_obs(&addr, report.obs.clone());
                    worker_loads.push((report.jobs.len() as u64, 0));
                    shard_obs.push(report.obs);
                    survivors.push(addr);
                }
                Err(_detail) => {
                    // The worker exhausted its attempts: drop it from this
                    // sweep and hand its jobs back to the pending set.
                    obs.counter("fleet.frontier.workers_lost").incr();
                    pool.note_failure(&addr);
                    lost = true;
                }
            }
        }
        pending.retain(|id| !completed.contains(id));
        live = survivors;
        if lost && !pending.is_empty() && !live.is_empty() {
            obs.counter("fleet.frontier.reshards").incr();
        }
    }

    // Graceful degradation: anything still pending (no workers registered,
    // or the whole fleet died) runs locally over the same cache, so the
    // sweep always completes and always merges identically.
    if !pending.is_empty() {
        let local_specs: Vec<JobSpec> = pending.iter().map(|id| spec_of[id]).collect();
        let local_options = SweepOptions {
            workers: options.workers,
            cache: Some(cache.clone()),
            backend: ExecBackend::LocalThreads,
        };
        let local = sigcomp_explore::try_run_jobs_traced(&local_specs, &[], &local_options)
            .map_err(|e| ExecError::Config(format!("local fallback failed: {e}")))?;
        obs.counter("fleet.frontier.jobs_local")
            .add(local.outcomes.len() as u64);
        for outcome in &local.outcomes {
            provenance.insert(outcome.spec.job_id(), outcome.from_cache);
        }
        worker_loads.push((local.outcomes.len() as u64, 0));
    }

    // Merge through the cache, exactly like the subprocess backend: restore
    // every unique job unobserved (the cache traffic happened where the job
    // ran) and fold totals per submitted position.
    let mut metrics_of = HashMap::with_capacity(ordered.len());
    for &(id, _) in &ordered {
        let metrics = cache
            .load_unobserved(id)
            .ok_or(ExecError::ResultMissing { job_id: id })?;
        metrics_of.insert(id, metrics);
    }
    let mut totals = SweepShard::default();
    let mut outcomes = Vec::with_capacity(jobs.len());
    for (pos, &leader) in deduped.leader_of.iter().enumerate() {
        let spec = deduped.unique[leader];
        let id = spec.job_id();
        let metrics = metrics_of[&id];
        let from_cache = deduped.is_follower(pos) || provenance[&id];
        totals.activity.merge(&metrics.activity);
        if from_cache {
            totals.cached += 1;
        } else {
            totals.simulated += 1;
            totals.instructions_simulated += metrics.instructions;
        }
        outcomes.push(sigcomp_explore::JobOutcome {
            spec,
            metrics,
            from_cache,
        });
    }

    let workers = worker_loads.len();
    Ok(SweepSummary {
        outcomes,
        totals,
        worker_loads,
        workers,
        wall: started.elapsed(),
        backend: "fleet",
        shard_obs,
    })
}

/// One worker's shard: up to [`FleetConfig::attempts`] `POST /fleet/dispatch`
/// exchanges with exponential backoff, each response verified by
/// [`proto::parse_report`] against the exact id set dispatched.
///
/// An overloaded worker's `503` honors its `Retry-After` header (capped at
/// [`MAX_BACKOFF`]); every other failure — connect/read timeout, non-200
/// status, protocol violation — waits `100ms · 2^attempt`.
fn dispatch_with_retry(
    client: &HttpClient,
    addr: &str,
    shard: &[JobSpec],
    config: &FleetConfig,
    pool: &WorkerPool,
) -> Result<FleetReport, String> {
    let body = proto::encode_dispatch(shard);
    let expected: HashSet<u64> = shard.iter().map(JobSpec::job_id).collect();
    let attempts = config.attempts.max(1);
    let mut last_error = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            pool.note_retry(addr);
            sigcomp_obs::global()
                .counter("fleet.frontier.retries")
                .incr();
        }
        let mut backoff = Duration::from_millis(100 << attempt.min(8)).min(MAX_BACKOFF);
        match client.post(addr, "/fleet/dispatch", &body) {
            Ok(response) if response.status == 200 => {
                match proto::parse_report(&response.body, &expected) {
                    Ok(report) => return Ok(report),
                    Err(detail) => last_error = format!("protocol violation: {detail}"),
                }
            }
            Ok(response) => {
                if response.status == 503 {
                    if let Some(secs) = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                    {
                        backoff = Duration::from_secs(secs).min(MAX_BACKOFF);
                    }
                }
                let body = response.body.trim();
                last_error = format!(
                    "HTTP {}{}{}",
                    response.status,
                    if body.is_empty() { "" } else { ": " },
                    body
                );
            }
            Err(error) => last_error = format!("request failed: {error}"),
        }
        if attempt + 1 < attempts {
            std::thread::sleep(backoff);
        }
    }
    Err(format!(
        "worker {addr} failed after {attempts} attempts: {last_error}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_explore::{ResultCache, SweepSpec};
    use sigcomp_workloads::WorkloadSize;

    fn jobs() -> Vec<JobSpec> {
        SweepSpec::paper(WorkloadSize::Tiny)
            .workloads(&["rawcaudio"])
            .enumerate()
    }

    fn temp_cache(tag: &str) -> (std::path::PathBuf, ResultCache) {
        let dir = std::env::temp_dir().join(format!(
            "sigcomp-fabric-frontier-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("cache opens");
        (dir, cache)
    }

    #[test]
    fn fleet_without_a_cache_is_a_named_error() {
        let err = run_fleet_jobs(
            &jobs(),
            &[],
            &SweepOptions::default(),
            &FleetConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::CacheRequired), "{err}");
    }

    #[test]
    fn no_workers_degrades_to_local_and_matches_the_local_backend() {
        let (dir, cache) = temp_cache("local");
        let jobs = jobs();
        let options = SweepOptions {
            workers: Some(2),
            cache: Some(cache),
            backend: ExecBackend::LocalThreads,
        };
        // Explicitly empty worker list and (in a fresh process) an empty
        // registration pool: the run must fall through to local execution.
        let fleet = run_fleet_jobs(&jobs, &[], &options, &FleetConfig::default()).expect("runs");
        assert_eq!(fleet.backend, "fleet");
        assert_eq!(fleet.outcomes.len(), jobs.len());
        assert!(fleet.totals.simulated + fleet.totals.cached == jobs.len() as u64);

        let local = sigcomp_explore::try_run_jobs_traced(&jobs, &[], &options).expect("runs");
        for (a, b) in fleet.outcomes.iter().zip(&local.outcomes) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.metrics, b.metrics);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_workers_are_retried_then_execution_falls_back_locally() {
        let (dir, cache) = temp_cache("dead");
        // Bind-then-drop: almost certainly nothing listens on this port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").port()
        };
        let jobs = jobs();
        let options = SweepOptions {
            workers: Some(2),
            cache: Some(cache),
            backend: ExecBackend::LocalThreads,
        };
        let config = FleetConfig {
            workers: vec![format!("127.0.0.1:{port}")],
            timeout_ms: 300,
            attempts: 2,
        };
        let before = sigcomp_obs::global()
            .snapshot()
            .counter("fleet.frontier.workers_lost");
        let fleet = run_fleet_jobs(&jobs, &[], &options, &config).expect("completes anyway");
        assert_eq!(fleet.outcomes.len(), jobs.len());
        let after = sigcomp_obs::global()
            .snapshot()
            .counter("fleet.frontier.workers_lost");
        assert!(after > before, "the dead worker must be counted as lost");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_jobs_are_rejected_with_a_named_error() {
        let (dir, cache) = temp_cache("trace");
        let mut job = jobs()[0];
        job.source = TraceSource::File { digest: 0xdead };
        let options = SweepOptions {
            workers: Some(1),
            cache: Some(cache),
            backend: ExecBackend::LocalThreads,
        };
        let err = run_fleet_jobs(&[job], &[], &options, &FleetConfig::default()).unwrap_err();
        assert!(err.to_string().contains("kernel jobs only"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
