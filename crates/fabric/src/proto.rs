//! The `sigcomp-fleet v1` line protocol: dispatch requests, dispatch
//! reports carrying replicated cache entries, and registration/heartbeat
//! bodies.
//!
//! Like the `sigcomp-worker` stdout protocol it generalizes, the grammar is
//! strict by design — every violation is a named error, because a frontier
//! merging results from machines it does not control must be able to prove
//! (not assume) that what arrived is what was sent. The payload of a report
//! is the worker's results encoded as **verbatim on-disk cache-entry text**
//! ([`sigcomp_explore::encode_entry`]) guarded by an FNV-1a digest
//! ([`sigcomp_explore::entry_digest`]); the frontier checks the digest and
//! the decodability of every entry before a byte touches its cache.
//!
//! ```text
//! # request (POST /fleet/dispatch)
//! sigcomp-fleet v1 dispatch jobs=2
//! kernel rawcaudio tiny paper 3bit byte-serial
//! kernel pgp tiny paper 3bit byte-serial
//!
//! # response
//! sigcomp-fleet v1 report jobs=2
//! job 00f3a6e2d41b9c70 simulated
//! entry 00f3a6e2d41b9c70 9c41b70f3a6e2d05 lines=39
//! sigcomp-explore v2
//! instructions=181203
//! ...
//! job 3b1e09c55a7d2f18 cached
//! entry 3b1e09c55a7d2f18 05f8a2c91d3e6b47 lines=39
//! ...
//! obs counter replay.jobs_simulated 1
//! done jobs=2
//! ```

use sigcomp_explore::{decode_entry, encode_entry, entry_digest, JobMetrics, JobSpec, TraceSource};
use sigcomp_obs::Snapshot;
use std::collections::HashSet;
use std::fmt::Write as _;

/// First token run of every fleet payload; bumped whenever any body grammar
/// changes so mismatched frontier/worker builds fail loudly.
pub const FLEET_HEADER: &str = "sigcomp-fleet v1";

/// One job's result as a worker reports it: the spec it was asked to run,
/// the measured metrics, and whether the worker answered from cache/memo
/// rather than a fresh simulation.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// The dispatched job.
    pub spec: JobSpec,
    /// Its measured counters.
    pub metrics: JobMetrics,
    /// `true` when the worker answered without simulating (memo or cache).
    pub from_cache: bool,
}

/// A parsed and fully verified dispatch report.
#[derive(Debug, Default)]
pub struct FleetReport {
    /// `(job_id, from_cache)` per job, in the worker's report order.
    pub jobs: Vec<(u64, bool)>,
    /// `(job_id, entry_text)` per job — digest-verified, decodable,
    /// ready for [`ResultCache::store_entry_text`](sigcomp_explore::ResultCache::store_entry_text).
    pub entries: Vec<(u64, String)>,
    /// The worker's observability-registry snapshot (cumulative over the
    /// worker's lifetime — attribution, not a per-dispatch delta).
    pub obs: Snapshot,
}

/// Encodes a dispatch request: the header with the job count, then one
/// [`JobSpec::to_wire`] line per job.
#[must_use]
pub fn encode_dispatch(jobs: &[JobSpec]) -> String {
    let mut out = format!("{FLEET_HEADER} dispatch jobs={}\n", jobs.len());
    for job in jobs {
        out.push_str(&job.to_wire());
        out.push('\n');
    }
    out
}

/// Parses a dispatch request body into its job list.
///
/// Trace-file jobs are rejected here — the fleet wire carries only content
/// digests and workers have no trace upload channel yet, so a frontier that
/// let one through would hand the worker a job it cannot resolve.
///
/// # Errors
///
/// A message naming the violation: bad header, a declared count that does
/// not match the lines present, an unparsable job line, or a trace job.
pub fn parse_dispatch(body: &str) -> Result<Vec<JobSpec>, String> {
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| "empty dispatch body".to_owned())?;
    let declared = header
        .strip_prefix(FLEET_HEADER)
        .and_then(|rest| rest.trim().strip_prefix("dispatch jobs="))
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| {
            format!("bad dispatch header '{header}' (expected '{FLEET_HEADER} dispatch jobs=N')")
        })?;
    let jobs: Vec<JobSpec> = lines.map(JobSpec::from_wire).collect::<Result<_, _>>()?;
    if jobs.len() != declared {
        return Err(format!(
            "dispatch declares {declared} jobs but carries {}",
            jobs.len()
        ));
    }
    if let Some(job) = jobs
        .iter()
        .find(|j| matches!(j.source, TraceSource::File { .. }))
    {
        return Err(format!(
            "job {:016x} is trace-sourced; the fleet protocol dispatches kernel jobs only",
            job.job_id()
        ));
    }
    Ok(jobs)
}

/// Encodes a dispatch report: per job a `job` provenance line followed by
/// its digest-guarded cache-entry block, then the worker's obs snapshot,
/// then the `done` trailer.
#[must_use]
pub fn encode_report(outcomes: &[DispatchOutcome], obs: &Snapshot) -> String {
    let mut out = format!("{FLEET_HEADER} report jobs={}\n", outcomes.len());
    for outcome in outcomes {
        let id = outcome.spec.job_id();
        let text = encode_entry(&outcome.metrics);
        let provenance = if outcome.from_cache {
            "cached"
        } else {
            "simulated"
        };
        let _ = writeln!(out, "job {id:016x} {provenance}");
        let _ = writeln!(
            out,
            "entry {id:016x} {:016x} lines={}",
            entry_digest(&text),
            text.lines().count()
        );
        out.push_str(&text);
    }
    for line in obs.to_wire().lines() {
        let _ = writeln!(out, "obs {line}");
    }
    let _ = writeln!(out, "done jobs={}", outcomes.len());
    out
}

/// Parses and verifies a dispatch report against the job-id set that was
/// dispatched: every assigned job must be answered exactly once, every
/// entry's digest must match its bytes and its bytes must decode as a
/// current-version cache entry.
///
/// # Errors
///
/// A message naming the violation — these are protocol violations, and the
/// frontier treats the worker that produced one as failed.
pub fn parse_report(body: &str, expected: &HashSet<u64>) -> Result<FleetReport, String> {
    let mut lines = body.lines();
    let header = loop {
        match lines.next() {
            None => return Err("empty report".to_owned()),
            Some(l) if l.trim().is_empty() => {}
            Some(l) => break l,
        }
    };
    let declared = header
        .strip_prefix(FLEET_HEADER)
        .and_then(|rest| rest.trim().strip_prefix("report jobs="))
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| {
            format!("bad report header '{header}' (expected '{FLEET_HEADER} report jobs=N')")
        })?;

    let mut report = FleetReport::default();
    let mut awaiting_entry: Option<u64> = None;
    let mut done = false;
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        if done {
            return Err(format!("line after the done line: '{line}'"));
        }
        if let Some(rest) = line.strip_prefix("job ") {
            if let Some(id) = awaiting_entry {
                return Err(format!("job {id:016x} has no entry block"));
            }
            let (id, provenance) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed job line '{line}'"))?;
            let id =
                u64::from_str_radix(id, 16).map_err(|_| format!("malformed job id in '{line}'"))?;
            let from_cache = match provenance {
                "simulated" => false,
                "cached" => true,
                other => return Err(format!("unknown provenance '{other}' in '{line}'")),
            };
            if !expected.contains(&id) {
                return Err(format!("job {id:016x} was not dispatched to this worker"));
            }
            if report.jobs.iter().any(|&(seen, _)| seen == id) {
                return Err(format!("job {id:016x} reported twice"));
            }
            report.jobs.push((id, from_cache));
            awaiting_entry = Some(id);
        } else if let Some(rest) = line.strip_prefix("entry ") {
            let job_id = awaiting_entry
                .take()
                .ok_or_else(|| format!("entry block without a preceding job line: '{line}'"))?;
            let mut parts = rest.split_whitespace();
            let id = parts
                .next()
                .and_then(|t| u64::from_str_radix(t, 16).ok())
                .ok_or_else(|| format!("malformed entry id in '{line}'"))?;
            let digest = parts
                .next()
                .and_then(|t| u64::from_str_radix(t, 16).ok())
                .ok_or_else(|| format!("malformed entry digest in '{line}'"))?;
            let count = parts
                .next()
                .and_then(|t| t.strip_prefix("lines="))
                .and_then(|n| n.parse::<usize>().ok())
                .ok_or_else(|| format!("malformed entry line count in '{line}'"))?;
            if parts.next().is_some() {
                return Err(format!("trailing tokens in '{line}'"));
            }
            if id != job_id {
                return Err(format!(
                    "entry {id:016x} does not match its job line {job_id:016x}"
                ));
            }
            let mut text = String::new();
            for _ in 0..count {
                let raw = lines
                    .next()
                    .ok_or_else(|| format!("entry {id:016x} truncated mid-block"))?;
                text.push_str(raw);
                text.push('\n');
            }
            if entry_digest(&text) != digest {
                return Err(format!(
                    "entry {id:016x} digest mismatch (corrupted in transit?)"
                ));
            }
            if decode_entry(&text).is_none() {
                return Err(format!("entry {id:016x} does not decode as a cache entry"));
            }
            report.entries.push((id, text));
        } else if let Some(rest) = line.strip_prefix("obs ") {
            if awaiting_entry.is_some() {
                return Err(format!("obs line inside a job block: '{line}'"));
            }
            report
                .obs
                .parse_wire_line(rest)
                .map_err(|e| e.to_string())?;
        } else if let Some(rest) = line.strip_prefix("done ") {
            if let Some(id) = awaiting_entry {
                return Err(format!("job {id:016x} has no entry block"));
            }
            let trailer = rest
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("jobs="))
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| format!("malformed done line '{line}'"))?;
            if trailer != report.jobs.len() {
                return Err(format!(
                    "done line declares {trailer} jobs but {} were reported",
                    report.jobs.len()
                ));
            }
            done = true;
        } else {
            return Err(format!("unexpected line '{line}'"));
        }
    }
    if !done {
        return Err("report ended without a done line (worker died mid-dispatch?)".to_owned());
    }
    if declared != report.jobs.len() {
        return Err(format!(
            "report header declares {declared} jobs but {} were reported",
            report.jobs.len()
        ));
    }
    if report.jobs.len() != expected.len() {
        return Err(format!(
            "worker answered {} of its {} dispatched jobs",
            report.jobs.len(),
            expected.len()
        ));
    }
    Ok(report)
}

/// Encodes a registration body: the worker's dial-back address and its
/// capacity (worker threads it can bring to bear).
#[must_use]
pub fn encode_register(addr: &str, capacity: u64) -> String {
    format!("{FLEET_HEADER} register addr={addr} capacity={capacity}\n")
}

/// Encodes a heartbeat body: the registration fields plus the worker's
/// current observability snapshot as `obs` lines.
#[must_use]
pub fn encode_heartbeat(addr: &str, capacity: u64, obs: &Snapshot) -> String {
    let mut out = format!("{FLEET_HEADER} heartbeat addr={addr} capacity={capacity}\n");
    for line in obs.to_wire().lines() {
        let _ = writeln!(out, "obs {line}");
    }
    out
}

/// Parses a registration body into `(addr, capacity)`.
///
/// # Errors
///
/// A message naming the violation (bad header/fields, or an address that is
/// not a plain `host:port` authority).
pub fn parse_register(body: &str) -> Result<(String, u64), String> {
    let (addr, capacity, mut rest) = parse_announcement(body, "register")?;
    if rest.next().is_some() {
        return Err("trailing lines after a register body".to_owned());
    }
    Ok((addr, capacity))
}

/// Parses a heartbeat body into `(addr, capacity, obs_snapshot)`.
///
/// # Errors
///
/// Same conditions as [`parse_register`], plus malformed `obs` lines.
pub fn parse_heartbeat(body: &str) -> Result<(String, u64, Snapshot), String> {
    let (addr, capacity, rest) = parse_announcement(body, "heartbeat")?;
    let mut obs = Snapshot::default();
    for line in rest {
        let payload = line
            .strip_prefix("obs ")
            .ok_or_else(|| format!("unexpected heartbeat line '{line}'"))?;
        obs.parse_wire_line(payload).map_err(|e| e.to_string())?;
    }
    Ok((addr, capacity, obs))
}

/// Shared head of register/heartbeat bodies:
/// `sigcomp-fleet v1 <verb> addr=A capacity=N`.
fn parse_announcement<'a>(
    body: &'a str,
    verb: &str,
) -> Result<(String, u64, impl Iterator<Item = &'a str>), String> {
    let mut lines = body.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| format!("empty {verb} body"))?;
    let bad = || {
        format!(
            "bad {verb} header '{header}' \
             (expected '{FLEET_HEADER} {verb} addr=HOST:PORT capacity=N')"
        )
    };
    let rest = header.strip_prefix(FLEET_HEADER).ok_or_else(bad)?.trim();
    let mut parts = rest.split_whitespace();
    if parts.next() != Some(verb) {
        return Err(bad());
    }
    let addr = parts
        .next()
        .and_then(|t| t.strip_prefix("addr="))
        .ok_or_else(bad)?;
    let capacity: u64 = parts
        .next()
        .and_then(|t| t.strip_prefix("capacity="))
        .and_then(|n| n.parse().ok())
        .ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    validate_addr(addr)?;
    Ok((addr.to_owned(), capacity, lines))
}

/// A worker address must be a plain `host:port` authority from a restricted
/// alphabet: it is echoed into JSON status documents and used as a dial
/// target, so anything exotic is rejected at the door.
fn validate_addr(addr: &str) -> Result<(), String> {
    let ok = !addr.is_empty()
        && addr.contains(':')
        && addr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | ':' | '-' | '_' | '[' | ']'));
    if ok {
        Ok(())
    } else {
        Err(format!(
            "invalid worker address '{addr}' (expected host:port)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_explore::SweepSpec;
    use sigcomp_obs::Registry;
    use sigcomp_workloads::WorkloadSize;

    fn jobs(n: usize) -> Vec<JobSpec> {
        let all = SweepSpec::paper(WorkloadSize::Tiny).enumerate();
        all.into_iter().take(n).collect()
    }

    fn outcome(spec: JobSpec, seed: u64, from_cache: bool) -> DispatchOutcome {
        DispatchOutcome {
            spec,
            metrics: JobMetrics {
                instructions: 100 + seed,
                cycles: 170 + seed,
                ..JobMetrics::default()
            },
            from_cache,
        }
    }

    #[test]
    fn dispatch_round_trips() {
        let jobs = jobs(3);
        let body = encode_dispatch(&jobs);
        assert!(body.starts_with(&format!("{FLEET_HEADER} dispatch jobs=3\n")));
        let parsed = parse_dispatch(&body).expect("parses");
        assert_eq!(parsed, jobs);
        assert_eq!(
            parsed.iter().map(JobSpec::job_id).collect::<Vec<_>>(),
            jobs.iter().map(JobSpec::job_id).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn dispatch_violations_are_named() {
        let good = encode_dispatch(&jobs(2));
        for (body, needle) in [
            (String::new(), "empty dispatch body"),
            ("who goes there\n".to_owned(), "bad dispatch header"),
            (
                good.replace("jobs=2", "jobs=5"),
                "declares 5 jobs but carries 2",
            ),
            (
                format!(
                    "{FLEET_HEADER} dispatch jobs=1\nkernel nope tiny paper 3bit byte-serial\n"
                ),
                "unknown workload",
            ),
            (
                format!(
                    "{FLEET_HEADER} dispatch jobs=1\n\
                     trace 00000000deadbeef paper 3bit byte-serial mystery\n"
                ),
                "kernel jobs only",
            ),
        ] {
            let err = parse_dispatch(&body).unwrap_err();
            assert!(err.contains(needle), "{body:?}: {err}");
        }
    }

    #[test]
    fn reports_round_trip_with_verified_entries_and_obs() {
        let specs = jobs(2);
        let outcomes = vec![outcome(specs[0], 1, false), outcome(specs[1], 2, true)];
        let registry = Registry::new();
        registry.counter("replay.jobs_simulated").add(1);
        let body = encode_report(&outcomes, &registry.snapshot());
        let expected: HashSet<u64> = specs.iter().map(JobSpec::job_id).collect();
        let report = parse_report(&body, &expected).expect("parses");
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.obs.counter("replay.jobs_simulated"), 1);
        for (outcome, &(id, from_cache)) in outcomes.iter().zip(&report.jobs) {
            assert_eq!(outcome.spec.job_id(), id);
            assert_eq!(outcome.from_cache, from_cache);
        }
        // The replicated text decodes to the exact metrics that were sent.
        for (outcome, (id, text)) in outcomes.iter().zip(&report.entries) {
            assert_eq!(outcome.spec.job_id(), *id);
            assert_eq!(decode_entry(text), Some(outcome.metrics));
        }
    }

    #[test]
    fn report_violations_are_named() {
        let specs = jobs(2);
        let outcomes = vec![outcome(specs[0], 1, false), outcome(specs[1], 2, false)];
        let good = encode_report(&outcomes, &Snapshot::default());
        let expected: HashSet<u64> = specs.iter().map(JobSpec::job_id).collect();
        let id0 = specs[0].job_id();

        // A flipped byte inside an entry block breaks that entry's digest.
        let corrupted = good.replacen("instructions=101", "instructions=999", 1);
        let err = parse_report(&corrupted, &expected).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");

        for (body, needle) in [
            (String::new(), "empty report"),
            ("hello\n".to_owned(), "bad report header"),
            (
                format!("{FLEET_HEADER} report jobs=0\ndone jobs=0\n"),
                "answered 0 of its 2",
            ),
            (
                format!("{FLEET_HEADER} report jobs=1\njob {id0:016x} simulated\ndone jobs=1\n"),
                "has no entry block",
            ),
            (
                format!("{FLEET_HEADER} report jobs=1\njob {id0:016x} teleported\n"),
                "unknown provenance",
            ),
            (
                format!(
                    "{FLEET_HEADER} report jobs=1\njob 00000000deadbeef simulated\n\
                     done jobs=1\n"
                ),
                "was not dispatched",
            ),
            (
                format!("{FLEET_HEADER} report jobs=1\njob {id0:016x} simulated\n"),
                "without a done line",
            ),
            (
                format!(
                    "{FLEET_HEADER} report jobs=1\njob {id0:016x} simulated\n\
                     entry {id0:016x} 0000000000000000 lines=400\nsigcomp-explore v2\n"
                ),
                "truncated mid-block",
            ),
            (
                good.replace("done jobs=2", "done jobs=3"),
                "declares 3 jobs",
            ),
            (good.replace("done jobs=2\n", ""), "without a done line"),
            (format!("{good}late line\n"), "line after the done line"),
        ] {
            let err = parse_report(&body, &expected).unwrap_err();
            assert!(err.contains(needle), "{body:?}: {err}");
        }
    }

    #[test]
    fn partial_reports_are_rejected() {
        // A worker that silently drops one of its jobs must not pass.
        let specs = jobs(2);
        let body = encode_report(&[outcome(specs[0], 1, false)], &Snapshot::default());
        let expected: HashSet<u64> = specs.iter().map(JobSpec::job_id).collect();
        let err = parse_report(&body, &expected).unwrap_err();
        assert!(err.contains("answered 1 of its 2"), "{err}");
    }

    #[test]
    fn registration_and_heartbeats_round_trip() {
        let (addr, capacity) =
            parse_register(&encode_register("127.0.0.1:7878", 8)).expect("parses");
        assert_eq!(addr, "127.0.0.1:7878");
        assert_eq!(capacity, 8);

        let registry = Registry::new();
        registry.counter("replay.jobs_simulated").add(42);
        let body = encode_heartbeat("worker-3.local:9000", 4, &registry.snapshot());
        let (addr, capacity, obs) = parse_heartbeat(&body).expect("parses");
        assert_eq!(addr, "worker-3.local:9000");
        assert_eq!(capacity, 4);
        assert_eq!(obs.counter("replay.jobs_simulated"), 42);
    }

    #[test]
    fn announcement_violations_are_named() {
        for (body, needle) in [
            ("", "empty register body"),
            ("nope", "bad register header"),
            (
                "sigcomp-fleet v1 register addr=127.0.0.1:1",
                "bad register header",
            ),
            (
                "sigcomp-fleet v1 register addr=127.0.0.1:1 capacity=x",
                "bad register header",
            ),
            (
                "sigcomp-fleet v1 register addr=spaces-not-ok capacity=1",
                "invalid worker address",
            ),
            (
                "sigcomp-fleet v1 register addr=evil\"quote:1 capacity=1",
                "invalid worker address",
            ),
            (
                "sigcomp-fleet v1 register addr=127.0.0.1:1 capacity=1\nextra",
                "trailing lines",
            ),
        ] {
            let err = parse_register(body).unwrap_err();
            assert!(err.contains(needle), "{body:?}: {err}");
        }
        let err =
            parse_heartbeat("sigcomp-fleet v1 heartbeat addr=a:1 capacity=1\nnot-obs").unwrap_err();
        assert!(err.contains("unexpected heartbeat line"), "{err}");
    }
}
