//! A minimal std-only HTTP/1.1 client — the fabric's outbound half,
//! mirroring the hand-rolled server in `sigcomp-serve`.
//!
//! One request per connection (`Connection: close`), a connect timeout and
//! per-operation read/write timeouts, and a hard response-size cap. That is
//! everything the fleet protocol needs: dispatches and heartbeats are
//! single request/response exchanges, and a stuck or dead peer must turn
//! into a timely named error, never a hang.

use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Hard cap on response bodies: a dispatch report for a large sweep runs to
/// a few hundred KiB of cache-entry text, so 64 MiB is comfortably above
/// any legitimate exchange while still bounding a misbehaving peer.
const MAX_RESPONSE_BYTES: u64 = 64 * 1024 * 1024;

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, decoded as (lossy) UTF-8 — every fleet payload is text.
    pub body: String,
}

impl HttpResponse {
    /// The first header named `name` (case-insensitive), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A client with one timeout governing connect and every read/write
/// operation of a request.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
}

impl HttpClient {
    /// A client whose connect/read/write operations each time out after
    /// `timeout` (clamped to at least 1 ms — a zero `Duration` means
    /// "no timeout" to the socket API, the opposite of the intent).
    #[must_use]
    pub fn new(timeout: Duration) -> Self {
        HttpClient {
            timeout: timeout.max(Duration::from_millis(1)),
        }
    }

    /// Issues `GET path` against `addr` (a `host:port` authority).
    ///
    /// # Errors
    ///
    /// Any I/O failure (unresolvable address, refused connection, timeout)
    /// or a response that does not parse as HTTP/1.x.
    pub fn get(&self, addr: &str, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", addr, path, "")
    }

    /// Issues `POST path` with the given body against `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HttpClient::get`].
    pub fn post(&self, addr: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", addr, path, body)
    }

    fn request(
        &self,
        method: &str,
        addr: &str,
        path: &str,
        body: &str,
    ) -> io::Result<HttpResponse> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("'{addr}' resolves to no address"),
            )
        })?;
        let mut stream = TcpStream::connect_timeout(&sock, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut raw = Vec::new();
        stream.take(MAX_RESPONSE_BYTES).read_to_end(&mut raw)?;
        parse_response(&raw)
    }
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    if !status_line.starts_with("HTTP/1.") {
        return Err(bad("response is not HTTP/1.x"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("response line carries no status code"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn responses_parse_with_status_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nRetry-After: 2\r\n\r\n{\"error\": \"full\"}";
        let resp = parse_response(raw).expect("parses");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.header("x-missing"), None);
        assert!(resp.body.contains("full"));
    }

    #[test]
    fn malformed_responses_are_named_errors() {
        for (raw, needle) in [
            (&b"not http at all\r\n\r\n"[..], "not HTTP/1.x"),
            (&b"HTTP/1.1\r\n\r\n"[..], "no status code"),
            (&b"HTTP/1.1 200 OK"[..], "no header/body separator"),
        ] {
            let err = parse_response(raw).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn dead_addresses_fail_fast_with_io_errors() {
        // Bind then drop: the port is (almost certainly) unreachable, and a
        // connection attempt must come back as an error, not a hang.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let client = HttpClient::new(Duration::from_millis(500));
        assert!(client
            .get(&format!("127.0.0.1:{port}"), "/healthz")
            .is_err());
        assert!(client.get("definitely-not-a-host.invalid:1", "/").is_err());
    }
}
