//! A minimal std-only HTTP/1.1 client — the fabric's outbound half,
//! mirroring the hand-rolled server in `sigcomp-serve`.
//!
//! The client keeps **one pooled keep-alive connection per peer address**:
//! requests send `Connection: keep-alive`, responses are read framed by
//! their `Content-Length` (not to EOF), and the connection goes back into
//! the pool for the next exchange. A worker heartbeating every couple of
//! seconds therefore costs one TCP connection for its whole life, not one
//! per beat. Reconnection is transparent: when a pooled connection turns
//! out to be stale (the server idle-closed it between exchanges), the
//! exchange is retried once on a fresh connection; errors on that fresh
//! connection propagate. A connect timeout, per-operation read/write
//! timeouts, and a hard response-size cap bound every exchange: a stuck or
//! dead peer must turn into a timely named error, never a hang.

use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hard cap on response bodies: a dispatch report for a large sweep runs to
/// a few hundred KiB of cache-entry text, so 64 MiB is comfortably above
/// any legitimate exchange while still bounding a misbehaving peer.
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Hard cap on response heads (status line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the response line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, decoded as (lossy) UTF-8 — every fleet payload is text.
    pub body: String,
}

impl HttpResponse {
    /// The first header named `name` (case-insensitive), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server committed to keeping the connection open: the
    /// response is framed (`Content-Length`) and does not say
    /// `Connection: close`.
    fn reusable(&self) -> bool {
        self.header("content-length").is_some()
            && !self
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A pooling keep-alive client with one timeout governing connect and every
/// read/write operation of a request.
///
/// Clones share the connection pool, so handing copies to helper threads
/// still keeps one connection per peer.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
    pool: Arc<Mutex<HashMap<String, TcpStream>>>,
}

impl HttpClient {
    /// A client whose connect/read/write operations each time out after
    /// `timeout` (clamped to at least 1 ms — a zero `Duration` means
    /// "no timeout" to the socket API, the opposite of the intent).
    #[must_use]
    pub fn new(timeout: Duration) -> Self {
        HttpClient {
            timeout: timeout.max(Duration::from_millis(1)),
            pool: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// Issues `GET path` against `addr` (a `host:port` authority).
    ///
    /// # Errors
    ///
    /// Any I/O failure (unresolvable address, refused connection, timeout)
    /// or a response that does not parse as HTTP/1.x.
    pub fn get(&self, addr: &str, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", addr, path, "")
    }

    /// Issues `POST path` with the given body against `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HttpClient::get`].
    pub fn post(&self, addr: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", addr, path, body)
    }

    fn request(
        &self,
        method: &str,
        addr: &str,
        path: &str,
        body: &str,
    ) -> io::Result<HttpResponse> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        // Try the pooled connection first. Every fleet exchange is
        // idempotent (register/heartbeat/dispatch all converge on repeat),
        // so a failure on a *reused* connection — the server idle-closed it
        // between exchanges — is retried once on a fresh one. Fresh-
        // connection failures propagate: the peer is genuinely unwell.
        if let Some(mut stream) = self.take_pooled(addr) {
            if let Ok(response) = exchange(&mut stream, request.as_bytes()) {
                if response.reusable() {
                    self.pool_back(addr, stream);
                }
                return Ok(response);
            }
        }
        let mut stream = self.connect(addr)?;
        let response = exchange(&mut stream, request.as_bytes())?;
        if response.reusable() {
            self.pool_back(addr, stream);
        }
        Ok(response)
    }

    fn connect(&self, addr: &str) -> io::Result<TcpStream> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("'{addr}' resolves to no address"),
            )
        })?;
        let stream = TcpStream::connect_timeout(&sock, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn take_pooled(&self, addr: &str) -> Option<TcpStream> {
        self.pool.lock().expect("client pool poisoned").remove(addr)
    }

    fn pool_back(&self, addr: &str, stream: TcpStream) {
        self.pool
            .lock()
            .expect("client pool poisoned")
            .insert(addr.to_owned(), stream);
    }
}

/// Writes one request and reads one framed response off the stream.
fn exchange(stream: &mut TcpStream, request: &[u8]) -> io::Result<HttpResponse> {
    stream.write_all(request)?;
    read_response(stream)
}

/// Reads exactly one response: head until the blank line, then a body of
/// exactly `Content-Length` bytes (or to EOF when the server did not frame
/// it — such a response is terminal for the connection and never pooled).
fn read_response(stream: &mut TcpStream) -> io::Result<HttpResponse> {
    let bad = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
    let mut raw = Vec::new();
    let mut buf = [0_u8; 16 * 1024];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&raw) {
            break pos;
        }
        if raw.len() > MAX_HEAD_BYTES {
            return Err(bad("response head exceeds the size cap"));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(if raw.is_empty() {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the response",
                )
            } else {
                bad("connection closed inside the response head")
            });
        }
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let (status, headers) = parse_head(&head)?;
    let content_length: Option<usize> = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok());
    let mut body = raw.split_off(head_end);
    // `split_off` leaves the head in `raw`; the separator rode along at the
    // front of `body`.
    let sep = if body.starts_with(b"\r\n\r\n") { 4 } else { 2 };
    body.drain(..sep.min(body.len()));
    match content_length {
        Some(len) => {
            if len > MAX_RESPONSE_BYTES {
                return Err(bad("response body exceeds the size cap"));
            }
            while body.len() < len {
                let n = stream.read(&mut buf)?;
                if n == 0 {
                    return Err(bad("connection closed inside the response body"));
                }
                body.extend_from_slice(&buf[..n]);
            }
            body.truncate(len);
        }
        None => {
            // Unframed: the close is the frame. Read to EOF (bounded).
            loop {
                if body.len() > MAX_RESPONSE_BYTES {
                    return Err(bad("response body exceeds the size cap"));
                }
                let n = stream.read(&mut buf)?;
                if n == 0 {
                    break;
                }
                body.extend_from_slice(&buf[..n]);
            }
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Index just past the status line + headers, i.e. the start of the blank
/// line, accepting both CRLF and bare-LF framing.
fn find_blank_line(raw: &[u8]) -> Option<usize> {
    raw.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| raw.windows(2).position(|w| w == b"\n\n").map(|p| p + 1))
}

fn parse_head(head: &str) -> io::Result<(u16, Vec<(String, String)>)> {
    let bad = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    if !status_line.starts_with("HTTP/1.") {
        return Err(bad("response is not HTTP/1.x"));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("response line carries no status code"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        })
        .collect();
    Ok((status, headers))
}

/// Parses a complete raw response (head + body already in hand) — the
/// EOF-framed form, pinned by tests as the parser's baseline behavior.
#[cfg(test)]
fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |reason: &str| io::Error::new(io::ErrorKind::InvalidData, reason.to_owned());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let (status, headers) = parse_head(head)?;
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead as _, BufReader};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn responses_parse_with_status_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nRetry-After: 2\r\n\r\n{\"error\": \"full\"}";
        let resp = parse_response(raw).expect("parses");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.header("Retry-After"), Some("2"));
        assert_eq!(resp.header("x-missing"), None);
        assert!(resp.body.contains("full"));
    }

    #[test]
    fn malformed_responses_are_named_errors() {
        for (raw, needle) in [
            (&b"not http at all\r\n\r\n"[..], "not HTTP/1.x"),
            (&b"HTTP/1.1\r\n\r\n"[..], "no status code"),
            (&b"HTTP/1.1 200 OK"[..], "no header/body separator"),
        ] {
            let err = parse_response(raw).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn dead_addresses_fail_fast_with_io_errors() {
        // Bind then drop: the port is (almost certainly) unreachable, and a
        // connection attempt must come back as an error, not a hang.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").port()
        };
        let client = HttpClient::new(Duration::from_millis(500));
        assert!(client
            .get(&format!("127.0.0.1:{port}"), "/healthz")
            .is_err());
        assert!(client.get("definitely-not-a-host.invalid:1", "/").is_err());
    }

    /// A tiny keep-alive server: accepts connections (counting them), and on
    /// each serves `responses_per_conn` framed 200s before dropping the
    /// socket without warning.
    fn keepalive_server(responses_per_conn: usize) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                counter.fetch_add(1, Ordering::SeqCst);
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut stream = stream;
                for _ in 0..responses_per_conn {
                    // Read one request: head lines until blank, then the
                    // Content-Length'd body.
                    let mut body_len = 0_usize;
                    let mut saw_request_line = false;
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) => return,
                            Ok(_) => {}
                            Err(_) => return,
                        }
                        if !saw_request_line {
                            saw_request_line = true;
                            continue;
                        }
                        let trimmed = line.trim();
                        if trimmed.is_empty() {
                            break;
                        }
                        if let Some(v) =
                            trimmed.to_ascii_lowercase().strip_prefix("content-length:")
                        {
                            body_len = v.trim().parse().unwrap_or(0);
                        }
                    }
                    let mut body = vec![0_u8; body_len];
                    if body_len > 0 && std::io::Read::read_exact(&mut reader, &mut body).is_err() {
                        return;
                    }
                    let _ = stream.write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
                    );
                }
                // Drop both halves: an unannounced close, as an idle
                // timeout would produce.
            }
        });
        (addr, accepts)
    }

    #[test]
    fn n_heartbeats_ride_one_pooled_connection() {
        let (addr, accepts) = keepalive_server(usize::MAX);
        let client = HttpClient::new(Duration::from_secs(5));
        for i in 0..5 {
            let resp = client
                .post(&addr, "/heartbeat", &format!("beat {i}"))
                .expect("heartbeat");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, "ok");
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "five exchanges must share one connection"
        );
    }

    #[test]
    fn a_stale_pooled_connection_reconnects_transparently() {
        // The server hangs up (unannounced) after each response, exactly
        // like an idle-deadline close between heartbeats. Every request
        // must still succeed; the client just redials.
        let (addr, accepts) = keepalive_server(1);
        let client = HttpClient::new(Duration::from_secs(5));
        for _ in 0..3 {
            let resp = client.get(&addr, "/healthz").expect("get");
            assert_eq!(resp.status, 200);
        }
        assert_eq!(accepts.load(Ordering::SeqCst), 3);
    }
}
