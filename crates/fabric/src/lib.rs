//! # sigcomp-fabric
//!
//! The distributed sweep fabric: a **frontier/worker topology over HTTP**
//! that promotes the PR 5 subprocess scale-out to a fleet of machines while
//! preserving its merge invariant — *N hosts × M shards byte-identical to
//! one process*.
//!
//! Workers are ordinary `repro serve` processes. They register with a
//! frontier (`POST /register`), then heartbeat periodically with their
//! capacity and observability snapshot (`POST /heartbeat`); the frontier
//! tracks them in a [`WorkerPool`]. A sweep run on
//! [`ExecBackend::Fleet`](sigcomp_explore::ExecBackend) is deduplicated,
//! sorted by content-hashed [`JobSpec::job_id`](sigcomp_explore::JobSpec)
//! (so the partition is a pure function of the job *contents*), sharded
//! round-robin across the live workers, and dispatched as one
//! `POST /fleet/dispatch` per worker carrying
//! [`JobSpec::to_wire`](sigcomp_explore::JobSpec::to_wire) lines — the same
//! wire grammar the subprocess backend broadcasts on stdin.
//!
//! Results come back as **replicated cache entries**: each worker answers
//! with the exact on-disk [`ResultCache`](sigcomp_explore::ResultCache)
//! entry text for every job, guarded by an FNV-1a digest
//! ([`sigcomp_explore::entry_digest`]). The frontier verifies each digest,
//! publishes the bytes into its own cache
//! ([`ResultCache::store_entry_text`](sigcomp_explore::ResultCache::store_entry_text)),
//! and restores every outcome from the cache in submission order — the
//! cache is the merge point, generalized across machines. Every entry is
//! keyed by config hash, so replication is conflict-free by construction:
//! two workers racing the same key write identical bytes.
//!
//! Robustness is first-class:
//!
//! * per-dispatch timeouts with bounded retry + exponential backoff
//!   ([`FleetConfig`](sigcomp_explore::FleetConfig)),
//! * a worker that exhausts its attempts (killed mid-sweep, say) is dropped
//!   and its outstanding jobs are **re-sharded** across the survivors,
//! * with no workers left (or none registered), the frontier **degrades
//!   gracefully to local execution** over the same cache — the sweep always
//!   completes, byte-identically.
//!
//! `sigcomp-explore` stays free of networking: it exposes the
//! [`ExecBackend::Fleet`](sigcomp_explore::ExecBackend) variant as pure
//! data plus an [`install_fleet_runner`](sigcomp_explore::install_fleet_runner)
//! hook, and this crate registers its [`frontier`] runner via [`install`]
//! (called by `sigcomp_serve::Server::bind` and every `repro fleet` path).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod frontier;
pub mod pool;
pub mod proto;
pub mod worker;

pub use client::{HttpClient, HttpResponse};
pub use frontier::run_fleet_jobs;
pub use pool::{WorkerPool, WorkerStatus, DEFAULT_LIVENESS_TTL};
pub use proto::{
    encode_dispatch, encode_heartbeat, encode_register, encode_report, parse_dispatch,
    parse_heartbeat, parse_register, parse_report, DispatchOutcome, FleetReport, FLEET_HEADER,
};
pub use worker::Heartbeater;

/// Registers the fleet runner with `sigcomp-explore`, making
/// [`ExecBackend::Fleet`](sigcomp_explore::ExecBackend) executable.
/// Idempotent and cheap — call it from every entry point that might select
/// the fleet backend.
pub fn install() {
    sigcomp_explore::install_fleet_runner(frontier::run_fleet_jobs);
}
