//! The frontier's view of its fleet: registered workers, their liveness,
//! and per-worker dispatch accounting.
//!
//! The pool is deliberately dumb — a mutexed map from worker address to the
//! facts the frontier needs (capacity, when it last spoke, cumulative
//! counters, its latest obs snapshot). Liveness is derived, not stored: a
//! worker is live when its last announcement is younger than the TTL, so
//! there is no reaper thread to race against and a worker that went silent
//! simply stops being picked.

use sigcomp_obs::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How stale a worker's last announcement may be before the frontier stops
/// dispatching to it. Heartbeats default to a fraction of this, so a single
/// dropped heartbeat does not evict a healthy worker.
pub const DEFAULT_LIVENESS_TTL: Duration = Duration::from_secs(10);

/// Everything the pool tracks per worker.
#[derive(Debug)]
struct WorkerEntry {
    capacity: u64,
    /// Whether the worker has ever *announced itself* (register/heartbeat).
    /// Rows auto-created by dispatch accounting — an explicit `--fleet`
    /// address, say — are visible in status output but never count as live:
    /// only the worker's own voice confers liveness.
    announced: bool,
    last_seen: Instant,
    heartbeats: u64,
    dispatches: u64,
    retries: u64,
    failures: u64,
    /// The worker's latest obs snapshot, replaced (not merged) on every
    /// heartbeat: worker registries are cumulative over the process
    /// lifetime, so folding successive snapshots would double-count.
    obs: Snapshot,
}

impl WorkerEntry {
    fn new(capacity: u64) -> Self {
        WorkerEntry {
            capacity,
            announced: false,
            last_seen: Instant::now(),
            heartbeats: 0,
            dispatches: 0,
            retries: 0,
            failures: 0,
            obs: Snapshot::default(),
        }
    }
}

/// A point-in-time status row for one worker, as reported by
/// [`WorkerPool::status`].
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// The worker's dial-back `host:port` address.
    pub addr: String,
    /// Worker threads the worker advertises.
    pub capacity: u64,
    /// Whether the worker announced itself within the liveness TTL.
    pub live: bool,
    /// Milliseconds since the worker last spoke.
    pub age_ms: u64,
    /// Heartbeats received (registration does not count).
    pub heartbeats: u64,
    /// Dispatches the frontier sent this worker.
    pub dispatches: u64,
    /// Dispatch attempts that were retried.
    pub retries: u64,
    /// Dispatches abandoned after exhausting their attempts.
    pub failures: u64,
}

/// The frontier's worker registry. Cheap to share (`&'static` via
/// [`global`]); every method takes `&self`.
#[derive(Debug, Default)]
pub struct WorkerPool {
    inner: Mutex<BTreeMap<String, WorkerEntry>>,
}

impl WorkerPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Records a registration: the worker becomes known (or refreshes its
    /// capacity and last-seen time if it already was).
    pub fn register(&self, addr: &str, capacity: u64) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner
            .entry(addr.to_owned())
            .or_insert_with(|| WorkerEntry::new(capacity));
        entry.capacity = capacity;
        entry.announced = true;
        entry.last_seen = Instant::now();
    }

    /// Records a heartbeat, auto-registering unknown workers (a frontier
    /// restart must not orphan a fleet that keeps heartbeating). The
    /// snapshot replaces the previous one — see [`WorkerEntry::obs`].
    pub fn heartbeat(&self, addr: &str, capacity: u64, obs: Snapshot) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner
            .entry(addr.to_owned())
            .or_insert_with(|| WorkerEntry::new(capacity));
        entry.capacity = capacity;
        entry.announced = true;
        entry.last_seen = Instant::now();
        entry.heartbeats += 1;
        entry.obs = obs;
    }

    /// Addresses of workers whose last announcement is younger than `ttl`,
    /// in sorted (deterministic) order.
    #[must_use]
    pub fn live(&self, ttl: Duration) -> Vec<String> {
        let now = Instant::now();
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|(_, e)| e.announced && now.duration_since(e.last_seen) < ttl)
            .map(|(addr, _)| addr.clone())
            .collect()
    }

    /// Notes a dispatch sent to `addr` (auto-creating the row so explicit
    /// `--fleet` worker lists show up in status output too).
    pub fn note_dispatch(&self, addr: &str) {
        self.bump(addr, |e| e.dispatches += 1);
    }

    /// Notes a retried dispatch attempt against `addr`.
    pub fn note_retry(&self, addr: &str) {
        self.bump(addr, |e| e.retries += 1);
    }

    /// Notes a dispatch abandoned after `addr` exhausted its attempts.
    pub fn note_failure(&self, addr: &str) {
        self.bump(addr, |e| e.failures += 1);
    }

    /// Replaces `addr`'s stored obs snapshot (dispatch reports carry fresher
    /// snapshots than the last heartbeat).
    pub fn update_obs(&self, addr: &str, obs: Snapshot) {
        self.bump(addr, move |e| e.obs = obs);
    }

    fn bump(&self, addr: &str, f: impl FnOnce(&mut WorkerEntry)) {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner
            .entry(addr.to_owned())
            .or_insert_with(|| WorkerEntry::new(0));
        f(entry);
    }

    /// The latest obs snapshots of every worker, folded into one. Safe to
    /// sum because each worker contributes exactly its latest snapshot —
    /// never two generations of the same registry.
    #[must_use]
    pub fn merged_obs(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut merged = Snapshot::default();
        for entry in inner.values() {
            // Bounds mismatches cannot happen between workers running the
            // same build; if they do (mixed versions), skip rather than
            // poison the whole fleet view.
            let _ = merged.merge(&entry.obs);
        }
        merged
    }

    /// One status row per known worker, in sorted address order.
    #[must_use]
    pub fn status(&self, ttl: Duration) -> Vec<WorkerStatus> {
        let now = Instant::now();
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(addr, e)| {
                let age = now.duration_since(e.last_seen);
                WorkerStatus {
                    addr: addr.clone(),
                    capacity: e.capacity,
                    live: e.announced && age < ttl,
                    age_ms: age.as_millis() as u64,
                    heartbeats: e.heartbeats,
                    dispatches: e.dispatches,
                    retries: e.retries,
                    failures: e.failures,
                }
            })
            .collect()
    }

    /// Known workers (live or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no worker has ever announced itself.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }

    /// The fleet as a JSON document: per-worker rows (address, capacity,
    /// liveness, dispatch/retry/heartbeat counters) plus the merged
    /// fleet-wide obs snapshot. This is the body of the frontier's
    /// `GET /fleet` and the `"fleet"` section of its `/metrics`.
    #[must_use]
    pub fn to_json(&self, ttl: Duration) -> String {
        let rows = self.status(ttl);
        let live = rows.iter().filter(|r| r.live).count();
        let mut out = String::from("{\n  \"workers\": [");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"addr\": \"{}\", \"capacity\": {}, \"live\": {}, \
                 \"age_ms\": {}, \"heartbeats\": {}, \"dispatches\": {}, \
                 \"retries\": {}, \"failures\": {}}}",
                r.addr,
                r.capacity,
                r.live,
                r.age_ms,
                r.heartbeats,
                r.dispatches,
                r.retries,
                r.failures
            );
        }
        if !rows.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"known\": {},\n  \"live\": {live},\n  \"merged_obs\": ",
            rows.len()
        );
        // Indent the snapshot document under the "merged_obs" key.
        let obs = self.merged_obs().to_json();
        out.push_str(obs.trim_end());
        out.push_str("\n}\n");
        out
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide pool the serve endpoints feed and the frontier runner
/// reads. Created on first use; never torn down.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(WorkerPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_obs::Registry;

    fn snap(counter: u64) -> Snapshot {
        let r = Registry::new();
        r.counter("replay.jobs_simulated").add(counter);
        r.snapshot()
    }

    #[test]
    fn registration_and_liveness() {
        let pool = WorkerPool::new();
        assert!(pool.is_empty());
        pool.register("a:1", 4);
        pool.register("b:2", 8);
        pool.register("a:1", 6); // re-registration refreshes, not duplicates
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.live(Duration::from_mins(1)), vec!["a:1", "b:2"]);
        // A zero TTL makes everyone stale immediately.
        assert!(pool.live(Duration::ZERO).is_empty());
        let rows = pool.status(Duration::from_mins(1));
        assert_eq!(rows[0].capacity, 6);
        assert!(rows.iter().all(|r| r.live));
    }

    #[test]
    fn heartbeats_replace_snapshots_rather_than_accumulate() {
        let pool = WorkerPool::new();
        pool.heartbeat("a:1", 4, snap(10));
        pool.heartbeat("a:1", 4, snap(25)); // cumulative registry, later gen
        pool.heartbeat("b:2", 2, snap(7));
        // 25 + 7, NOT 10 + 25 + 7: per-worker latest, summed across workers.
        assert_eq!(pool.merged_obs().counter("replay.jobs_simulated"), 32);
        let rows = pool.status(Duration::from_mins(1));
        assert_eq!(rows[0].heartbeats, 2);
        assert_eq!(rows[1].heartbeats, 1);
    }

    #[test]
    fn dispatch_accounting_and_json() {
        let pool = WorkerPool::new();
        pool.heartbeat("a:1", 4, snap(3));
        pool.note_dispatch("a:1");
        pool.note_retry("a:1");
        pool.note_failure("a:1");
        pool.note_dispatch("explicit:9"); // --fleet worker never registered
                                          // Accounting rows are visible but only announced workers are live.
        assert_eq!(pool.live(Duration::from_mins(1)), vec!["a:1"]);
        let json = pool.to_json(Duration::from_mins(1));
        assert!(json.contains("\"addr\": \"a:1\""), "{json}");
        assert!(json.contains("\"dispatches\": 1"), "{json}");
        assert!(json.contains("\"retries\": 1"), "{json}");
        assert!(json.contains("\"failures\": 1"), "{json}");
        assert!(json.contains("\"addr\": \"explicit:9\""), "{json}");
        assert!(json.contains("\"known\": 2"), "{json}");
        assert!(json.contains("\"replay.jobs_simulated\": 3"), "{json}");
    }
}
