//! The kernel collection.
//!
//! Each kernel is an integer program written against the `sigcomp-isa`
//! assembler, mirroring one Mediabench program (the suite the paper uses).
//! Kernels are deterministic: input data is generated from fixed seeds, so a
//! benchmark always produces the same trace.

mod audio;
mod crypto;
mod image;

use crate::benchmark::{Benchmark, WorkloadSize};
use crate::rng::SmallRng;

pub use audio::{adpcm_decode, adpcm_encode, g721_predict, gsm_autocorrelation};
pub use crypto::{pegwit_modmul, pgp_crc32, rasta_filter};
pub use image::{epic_wavelet, jpeg_fdct, jpeg_idct, mpeg2_motion};

/// Builds the full kernel suite at the given size, in the order the paper's
/// figures list the benchmarks.
///
/// # Panics
///
/// Panics if a kernel fails to assemble (a bug in this crate).
#[must_use]
pub fn all(size: WorkloadSize) -> Vec<Benchmark> {
    BUILDERS.iter().map(|build| build(size)).collect()
}

/// Kernel constructors in suite order (parallel to [`NAMES`]).
pub(crate) const BUILDERS: &[fn(WorkloadSize) -> Benchmark] = &[
    adpcm_encode,
    adpcm_decode,
    epic_wavelet,
    g721_predict,
    gsm_autocorrelation,
    jpeg_fdct,
    jpeg_idct,
    mpeg2_motion,
    pegwit_modmul,
    pgp_crc32,
    rasta_filter,
];

/// The name each kernel registers itself under, in suite order (parallel to
/// [`BUILDERS`]); kept in sync by a unit test.
pub(crate) const NAMES: &[&str] = &[
    "rawcaudio",
    "rawdaudio",
    "epic",
    "g721",
    "gsmencode",
    "cjpeg",
    "djpeg",
    "mpeg2decode",
    "pegwit",
    "pgp",
    "rasta",
];

/// Deterministic RNG for kernel input data.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Generates `n` pseudo-audio samples in `[-amplitude, amplitude]` with some
/// low-frequency correlation (adjacent samples are close), like PCM audio.
pub(crate) fn audio_samples(n: u32, amplitude: i16, seed: u64) -> Vec<i16> {
    let mut r = rng(seed);
    let mut value: i32 = 0;
    (0..n)
        .map(|_| {
            let step = r.gen_range(-(i32::from(amplitude) / 8)..=(i32::from(amplitude) / 8));
            value = (value + step).clamp(-i32::from(amplitude), i32::from(amplitude));
            value as i16
        })
        .collect()
}

/// Generates `n` pseudo-pixel bytes (0–255) with spatial correlation.
pub(crate) fn pixel_bytes(n: u32, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut value: i32 = 128;
    (0..n)
        .map(|_| {
            value = (value + r.gen_range::<i32, _>(-12..=12)).clamp(0, 255);
            value as u8
        })
        .collect()
}

/// Generates `n` words drawn uniformly from the full 32-bit range (for the
/// cryptographic kernels, whose values are wide by nature).
pub(crate) fn wide_words(n: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

/// The standard CRC-32 (IEEE 802.3) lookup table.
pub(crate) fn crc32_table() -> Vec<u32> {
    (0u32..256)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audio_samples_are_bounded_and_correlated() {
        let s = audio_samples(1000, 2000, 1);
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|&v| (-2000..=2000).contains(&v)));
        // Adjacent samples move by at most amplitude/8.
        assert!(s.windows(2).all(|w| (w[1] - w[0]).abs() <= 250));
        // Deterministic.
        assert_eq!(s, audio_samples(1000, 2000, 1));
        assert_ne!(s, audio_samples(1000, 2000, 2));
    }

    #[test]
    fn pixels_are_bytes() {
        let p = pixel_bytes(4096, 7);
        assert_eq!(p.len(), 4096);
        assert_eq!(p, pixel_bytes(4096, 7));
    }

    #[test]
    fn crc_table_matches_known_values() {
        let t = crc32_table();
        assert_eq!(t.len(), 256);
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 0x7707_3096);
        assert_eq!(t[255], 0x2d02_ef8d);
    }

    #[test]
    fn wide_words_fill_the_range() {
        let w = wide_words(256, 3);
        // With 256 uniform words, at least one should exceed 2^31.
        assert!(w.iter().any(|&v| v > 0x8000_0000));
        assert!(w.iter().any(|&v| v < 0x8000_0000));
    }
}
