//! Audio/speech kernels: ADPCM encode/decode (`rawcaudio`/`rawdaudio`),
//! G.721-style prediction and GSM-style autocorrelation.

use super::{audio_samples, WorkloadSize};
use crate::benchmark::Benchmark;
use sigcomp_isa::reg::{A0, A1, A2, S0, S1, T0, T1, T2, T3, T4, T5, T6, T7, T8, ZERO};
use sigcomp_isa::ProgramBuilder;

const FUEL: u64 = 50_000_000;

/// A 16-entry quantizer step table (a coarsened IMA-ADPCM step table).
const STEP_TABLE: [u32; 16] = [
    7, 13, 25, 45, 80, 140, 250, 440, 780, 1370, 2400, 4200, 7350, 12800, 22000, 32767,
];

fn emit_index_clamp(b: &mut ProgramBuilder, code_reg: sigcomp_isa::Reg, prefix: &str) {
    // index += (code & 7) >= 4 ? +2 : -1, clamped to [0, 15].
    let up = format!("{prefix}_up");
    let clamp = format!("{prefix}_clamp");
    let cl2 = format!("{prefix}_cl2");
    let done = format!("{prefix}_done");
    b.andi(T7, code_reg, 7);
    b.slti(T6, T7, 4);
    b.beq(T6, ZERO, &up);
    b.addiu(S1, S1, -1);
    b.b(&clamp);
    b.label(&up);
    b.addiu(S1, S1, 2);
    b.label(&clamp);
    b.bgez(S1, &cl2);
    b.li(S1, 0);
    b.label(&cl2);
    b.slti(T6, S1, 16);
    b.bne(T6, ZERO, &done);
    b.li(S1, 15);
    b.label(&done);
}

/// `rawcaudio`: IMA-ADPCM-style encoding of a PCM sample stream into 4-bit
/// codes. Mirrors the Mediabench `adpcm/rawcaudio` program.
#[must_use]
pub fn adpcm_encode(size: WorkloadSize) -> Benchmark {
    let n = size.elements(2048);
    let mut b = ProgramBuilder::new();

    b.dlabel("samples");
    b.halves(&audio_samples(n, 2047, 0xadc0));
    b.align(4);
    b.dlabel("steps");
    b.words(&STEP_TABLE);
    b.dlabel("out");
    b.space(n as usize);

    b.la(A0, "samples");
    b.la(A1, "out");
    b.la(A2, "steps");
    b.li(T0, 0); // i
    b.li(T1, n as i32); // limit
    b.li(S0, 0); // predictor
    b.li(S1, 0); // step index

    b.label("loop");
    b.lh(T2, A0, 0); // sample
    b.subu(T3, T2, S0); // diff
    b.li(T5, 0); // code
    b.bgez(T3, "pos");
    b.subu(T3, ZERO, T3);
    b.ori(T5, T5, 8);
    b.label("pos");
    b.sll(T6, S1, 2);
    b.addu(T6, A2, T6);
    b.lw(T4, T6, 0); // step
                     // bit 2 of the magnitude
    b.slt(T7, T3, T4);
    b.bne(T7, ZERO, "b2");
    b.ori(T5, T5, 4);
    b.subu(T3, T3, T4);
    b.label("b2");
    b.sra(T4, T4, 1);
    b.slt(T7, T3, T4);
    b.bne(T7, ZERO, "b1");
    b.ori(T5, T5, 2);
    b.subu(T3, T3, T4);
    b.label("b1");
    b.sra(T4, T4, 1);
    b.slt(T7, T3, T4);
    b.bne(T7, ZERO, "b0");
    b.ori(T5, T5, 1);
    b.label("b0");
    b.sb(T5, A1, 0);
    // Leaky predictor update: predictor += (sample - predictor) >> 2.
    b.subu(T6, T2, S0);
    b.sra(T6, T6, 2);
    b.addu(S0, S0, T6);
    emit_index_clamp(&mut b, T5, "enc");
    b.addiu(A0, A0, 2);
    b.addiu(A1, A1, 1);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "rawcaudio",
        "ADPCM-style encoding of a PCM audio stream into 4-bit codes",
        b.assemble().expect("rawcaudio assembles"),
        FUEL,
    )
}

/// `rawdaudio`: the matching ADPCM-style decoder (codes back to samples).
#[must_use]
pub fn adpcm_decode(size: WorkloadSize) -> Benchmark {
    let n = size.elements(2048);
    let mut b = ProgramBuilder::new();

    // Feed the decoder pseudo-codes derived from an audio stream: low nibble
    // of each sample delta, which has the right statistics for a decoder.
    let samples = audio_samples(n, 2047, 0xdec0);
    let codes: Vec<u8> = samples
        .windows(2)
        .map(|w| {
            let d = i32::from(w[1]) - i32::from(w[0]);
            let sign = if d < 0 { 8u8 } else { 0 };
            sign | ((d.unsigned_abs() >> 6).min(7) as u8)
        })
        .chain(std::iter::once(0))
        .collect();

    b.dlabel("codes");
    b.bytes(&codes);
    b.align(4);
    b.dlabel("steps");
    b.words(&STEP_TABLE);
    b.dlabel("out");
    b.space(2 * n as usize);

    b.la(A0, "codes");
    b.la(A1, "out");
    b.la(A2, "steps");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, 0); // predictor
    b.li(S1, 0); // step index

    b.label("loop");
    b.lbu(T2, A0, 0); // code
    b.sll(T6, S1, 2);
    b.addu(T6, A2, T6);
    b.lw(T4, T6, 0); // step
    b.sra(T3, T4, 3); // diff = step >> 3
    b.andi(T7, T2, 4);
    b.beq(T7, ZERO, "skip4");
    b.addu(T3, T3, T4);
    b.label("skip4");
    b.andi(T7, T2, 2);
    b.beq(T7, ZERO, "skip2");
    b.sra(T6, T4, 1);
    b.addu(T3, T3, T6);
    b.label("skip2");
    b.andi(T7, T2, 1);
    b.beq(T7, ZERO, "skip1");
    b.sra(T6, T4, 2);
    b.addu(T3, T3, T6);
    b.label("skip1");
    b.andi(T7, T2, 8);
    b.beq(T7, ZERO, "positive");
    b.subu(T3, ZERO, T3);
    b.label("positive");
    b.addu(S0, S0, T3);
    b.sh(S0, A1, 0);
    emit_index_clamp(&mut b, T2, "dec");
    b.addiu(A0, A0, 1);
    b.addiu(A1, A1, 2);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "rawdaudio",
        "ADPCM-style decoding of 4-bit codes back into PCM samples",
        b.assemble().expect("rawdaudio assembles"),
        FUEL,
    )
}

/// `g721`: a fixed four-tap linear predictor over a sample stream, storing
/// the prediction error (the heart of G.721/G.723 encoders).
#[must_use]
pub fn g721_predict(size: WorkloadSize) -> Benchmark {
    let n = size.elements(2048);
    let mut b = ProgramBuilder::new();

    b.dlabel("samples");
    b.halves(&audio_samples(n + 4, 4000, 0x0721));
    b.align(4);
    b.dlabel("errors");
    b.space(2 * n as usize);

    b.la(A0, "samples");
    b.addiu(A0, A0, 8); // start at x[4]
    b.la(A1, "errors");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, 0); // error energy accumulator

    b.label("loop");
    b.lh(T2, A0, 0); // x[i]
    b.lh(T3, A0, -2); // x[i-1]
    b.lh(T4, A0, -4); // x[i-2]
    b.lh(T5, A0, -6); // x[i-3]
    b.lh(T6, A0, -8); // x[i-4]
                      // pred = (3*x1 + 2*x2 - x3 + x4) >> 2
    b.sll(T7, T3, 1);
    b.addu(T7, T7, T3);
    b.sll(T8, T4, 1);
    b.addu(T7, T7, T8);
    b.subu(T7, T7, T5);
    b.addu(T7, T7, T6);
    b.sra(T7, T7, 2);
    b.subu(T7, T2, T7); // err
    b.sh(T7, A1, 0);
    // Accumulate |err| as a rough energy measure.
    b.bgez(T7, "accum");
    b.subu(T7, ZERO, T7);
    b.label("accum");
    b.addu(S0, S0, T7);
    b.addiu(A0, A0, 2);
    b.addiu(A1, A1, 2);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "g721",
        "four-tap linear prediction with error-energy accumulation (G.721 style)",
        b.assemble().expect("g721 assembles"),
        FUEL,
    )
}

/// `gsmencode`: short-term autocorrelation of a speech frame for eight lags,
/// the dominant loop of the GSM 06.10 LPC analysis.
#[must_use]
pub fn gsm_autocorrelation(size: WorkloadSize) -> Benchmark {
    let n = size.elements(512);
    let lags = 8u32;
    let mut b = ProgramBuilder::new();

    b.dlabel("frame");
    b.halves(&audio_samples(n, 1500, 0x6513));
    b.align(4);
    b.dlabel("acf");
    b.space(4 * lags as usize);

    b.la(A0, "frame");
    b.la(A1, "acf");
    b.li(S1, 0); // k (lag)
    b.li(T8, lags as i32);

    b.label("lag_loop");
    b.li(S0, 0); // acc
    b.mov(T0, S1); // i = k
    b.li(T1, n as i32);
    b.sll(T2, S1, 1);
    b.addu(T2, A0, T2); // &frame[k] ... pointer for s[i]
    b.la(A2, "frame"); // pointer for s[i-k]

    b.label("sample_loop");
    b.lh(T3, T2, 0); // s[i]
    b.lh(T4, A2, 0); // s[i-k]
    b.mult(T3, T4);
    b.mflo(T5);
    b.addu(S0, S0, T5);
    b.addiu(T2, T2, 2);
    b.addiu(A2, A2, 2);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "sample_loop");

    b.sw(S0, A1, 0);
    b.addiu(A1, A1, 4);
    b.addiu(S1, S1, 1);
    b.bne(S1, T8, "lag_loop");
    b.halt();

    Benchmark::new(
        "gsmencode",
        "eight-lag autocorrelation of a speech frame (GSM 06.10 LPC analysis)",
        b.assemble().expect("gsmencode assembles"),
        FUEL,
    )
}
