//! Security/DSP kernels: Pegwit-style modular arithmetic, a PGP/CRC-style
//! checksum and a RASTA-style recursive filter bank.
//!
//! The cryptographic kernels intentionally manipulate full-width values —
//! they are the benchmarks for which significance compression helps least,
//! which is exactly the per-benchmark spread the paper's Table 5 shows.

use super::{audio_samples, crc32_table, pixel_bytes, wide_words, WorkloadSize};
use crate::benchmark::Benchmark;
use sigcomp_isa::reg::{A0, A1, A2, S0, S1, T0, T1, T2, T3, T4, T5, T6, T7, T8};
use sigcomp_isa::ProgramBuilder;

const FUEL: u64 = 50_000_000;

/// `pegwit`: a square-and-add modular recurrence over full-width words
/// (elliptic-curve-style field arithmetic stand-in). Values stay wide, so
/// compression gains are small — the pessimistic end of the benchmark spread.
#[must_use]
pub fn pegwit_modmul(size: WorkloadSize) -> Benchmark {
    let n = size.elements(1024);
    let mut b = ProgramBuilder::new();

    b.dlabel("seeds");
    b.words(&wide_words(n, 0x9e37));
    b.dlabel("digest");
    b.space(4 * n as usize);

    b.la(A0, "seeds");
    b.la(A1, "digest");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, 0x7fff_fff1u32 as i32); // a large prime-ish modulus
    b.li(S1, 0x0badc0deu32 as i32); // running state

    b.label("loop");
    b.lw(T2, A0, 0);
    b.xor(T3, T2, S1); // mix in the running state
    b.multu(T3, T3); // square
    b.mflo(T4);
    b.mfhi(T5);
    b.addu(T4, T4, T5); // fold the high half back in
    b.addu(T4, T4, T2);
    b.divu(T4, S0); // reduce modulo S0
    b.mfhi(T6); // remainder
    b.xor(S1, S1, T6);
    b.sw(T6, A1, 0);
    b.addiu(A0, A0, 4);
    b.addiu(A1, A1, 4);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "pegwit",
        "square-and-add modular recurrence over full-width words (public-key kernel)",
        b.assemble().expect("pegwit assembles"),
        FUEL,
    )
}

/// `pgp`: a table-driven CRC-32 over a message buffer, the checksum loop that
/// dominates PGP-style packet processing.
#[must_use]
pub fn pgp_crc32(size: WorkloadSize) -> Benchmark {
    let n = size.elements(4096);
    let mut b = ProgramBuilder::new();

    b.dlabel("message");
    b.bytes(&pixel_bytes(n, 0x9690));
    b.align(4);
    b.dlabel("crc_table");
    b.words(&crc32_table());
    b.dlabel("crc_out");
    b.space(4);

    b.la(A0, "message");
    b.la(A1, "crc_table");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, -1); // crc = 0xffffffff

    b.label("loop");
    b.lbu(T2, A0, 0);
    b.xor(T3, S0, T2);
    b.andi(T3, T3, 0xff);
    b.sll(T3, T3, 2);
    b.addu(T3, A1, T3);
    b.lw(T4, T3, 0); // table[(crc ^ byte) & 0xff]
    b.srl(T5, S0, 8);
    b.xor(S0, T4, T5);
    b.addiu(A0, A0, 1);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.nor(S0, S0, sigcomp_isa::reg::ZERO); // final complement
    b.la(T6, "crc_out");
    b.sw(S0, T6, 0);
    b.halt();

    Benchmark::new(
        "pgp",
        "table-driven CRC-32 over a message buffer (PGP packet checksum)",
        b.assemble().expect("pgp assembles"),
        FUEL,
    )
}

/// `rasta`: a two-pole, fixed-point recursive (IIR) filter bank applied to a
/// speech signal, as in the RASTA-PLP front end.
#[must_use]
pub fn rasta_filter(size: WorkloadSize) -> Benchmark {
    let n = size.elements(2048);
    let mut b = ProgramBuilder::new();

    b.dlabel("signal");
    b.halves(&audio_samples(n, 3000, 0x7a57));
    b.align(4);
    b.dlabel("filtered");
    b.space(2 * n as usize);

    b.la(A0, "signal");
    b.la(A1, "filtered");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, 0); // y[n-1] (Q12)
    b.li(S1, 0); // y[n-2] (Q12)
    b.li(T7, 3993); // a1 ≈ 0.975 in Q12
    b.li(T8, -3702); // a2 ≈ -0.904 in Q12

    b.label("loop");
    b.lh(T2, A0, 0); // x[n]
    b.mult(S0, T7);
    b.mflo(T3); // a1*y1
    b.mult(S1, T8);
    b.mflo(T4); // a2*y2
    b.addu(T5, T3, T4);
    b.sra(T5, T5, 12);
    b.addu(T5, T5, T2); // y = x + (a1*y1 + a2*y2) >> 12
    b.mov(S1, S0);
    b.mov(S0, T5);
    // Output the band-passed sample (y - x) saturated by an arithmetic shift.
    b.subu(T6, T5, T2);
    b.sra(A2, T6, 1);
    b.sh(A2, A1, 0);
    b.addiu(A0, A0, 2);
    b.addiu(A1, A1, 2);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "rasta",
        "two-pole fixed-point IIR filter bank over a speech signal (RASTA front end)",
        b.assemble().expect("rasta assembles"),
        FUEL,
    )
}
