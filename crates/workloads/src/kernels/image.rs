//! Image/video kernels: JPEG-style forward and inverse DCT rows, an
//! EPIC-style wavelet lifting filter and MPEG-2-style motion estimation.

use super::{pixel_bytes, WorkloadSize};
use crate::benchmark::Benchmark;
use sigcomp_isa::reg::{A0, A1, A2, S0, S1, S2, S3, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9, ZERO};
use sigcomp_isa::ProgramBuilder;

const FUEL: u64 = 50_000_000;

/// `cjpeg`: the row pass of an 8-point integer forward DCT (butterflies,
/// shifts and a coarse quantization), applied to rows of image samples.
#[must_use]
pub fn jpeg_fdct(size: WorkloadSize) -> Benchmark {
    let rows = size.elements(256);
    let mut b = ProgramBuilder::new();

    let pixels = pixel_bytes(rows * 8, 0x0dc7);
    let samples: Vec<i16> = pixels.iter().map(|&p| i16::from(p) - 128).collect();
    b.dlabel("rows");
    b.halves(&samples);
    b.align(4);
    b.dlabel("coeffs");
    b.space(2 * (rows * 8) as usize);

    b.la(A0, "rows");
    b.la(A1, "coeffs");
    b.li(T0, 0);
    b.li(T1, rows as i32);

    b.label("row_loop");
    // Load the eight samples of the row.
    b.lh(T2, A0, 0);
    b.lh(T3, A0, 2);
    b.lh(T4, A0, 4);
    b.lh(T5, A0, 6);
    b.lh(T6, A0, 8);
    b.lh(T7, A0, 10);
    b.lh(T8, A0, 12);
    b.lh(T9, A0, 14);
    // Even part: sums of mirrored pairs.
    b.addu(S0, T2, T9); // s0 = x0 + x7
    b.addu(S1, T3, T8); // s1 = x1 + x6
    b.addu(S2, T4, T7); // s2 = x2 + x5
    b.addu(S3, T5, T6); // s3 = x3 + x4
                        // DC and the low even coefficients.
    b.addu(A2, S0, S3);
    b.addu(T2, S1, S2);
    b.addu(T3, A2, T2); // c0 = s0+s1+s2+s3
    b.subu(T4, A2, T2); // c4 = s0-s1-s2+s3
    b.sh(T3, A1, 0);
    b.sh(T4, A1, 8);
    // c2 ≈ ((s0-s3)*362 + (s1-s2)*150) >> 8 (integer rotation).
    b.subu(T5, S0, S3);
    b.subu(T6, S1, S2);
    b.li(T7, 362);
    b.mult(T5, T7);
    b.mflo(T8);
    b.li(T7, 150);
    b.mult(T6, T7);
    b.mflo(T9);
    b.addu(T8, T8, T9);
    b.sra(T8, T8, 8);
    b.sh(T8, A1, 4);
    b.subu(T8, T9, T8);
    b.sra(T8, T8, 8);
    b.sh(T8, A1, 12);
    // Odd part: reload the inputs and take mirrored differences.
    b.lh(T2, A0, 0);
    b.lh(T9, A0, 14);
    b.subu(S0, T2, T9); // d0 = x0 - x7
    b.lh(T3, A0, 2);
    b.lh(T8, A0, 12);
    b.subu(S1, T3, T8); // d1 = x1 - x6
    b.lh(T4, A0, 4);
    b.lh(T7, A0, 10);
    b.subu(S2, T4, T7); // d2 = x2 - x5
    b.lh(T5, A0, 6);
    b.lh(T6, A0, 8);
    b.subu(S3, T5, T6); // d3 = x3 - x4
                        // Coarse odd coefficients (shift-add rotations).
    b.sll(T2, S0, 1);
    b.addu(T2, T2, S1);
    b.sra(T2, T2, 1);
    b.sh(T2, A1, 2);
    b.sll(T3, S1, 1);
    b.subu(T3, T3, S2);
    b.sra(T3, T3, 1);
    b.sh(T3, A1, 6);
    b.addu(T4, S2, S3);
    b.sra(T4, T4, 1);
    b.sh(T4, A1, 10);
    b.subu(T5, S3, S0);
    b.sra(T5, T5, 2);
    b.sh(T5, A1, 14);
    // Next row.
    b.addiu(A0, A0, 16);
    b.addiu(A1, A1, 16);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "row_loop");
    b.halt();

    Benchmark::new(
        "cjpeg",
        "8-point integer forward DCT row pass with coarse quantization (JPEG encode)",
        b.assemble().expect("cjpeg assembles"),
        FUEL,
    )
}

/// `djpeg`: an inverse-DCT-style reconstruction of rows followed by clamping
/// to the 0–255 pixel range (JPEG decode).
#[must_use]
pub fn jpeg_idct(size: WorkloadSize) -> Benchmark {
    let rows = size.elements(256);
    let mut b = ProgramBuilder::new();

    // Coefficients: mostly small values with a large DC term, like real
    // quantized DCT blocks.
    let pixels = pixel_bytes(rows * 8, 0x1dc7);
    let coeffs: Vec<i16> = pixels
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            if i % 8 == 0 {
                (i16::from(p) - 128) * 8
            } else {
                (i16::from(p) - 128) / 16
            }
        })
        .collect();
    b.dlabel("coeffs");
    b.halves(&coeffs);
    b.align(4);
    b.dlabel("pixels");
    b.space((rows * 8) as usize);

    b.la(A0, "coeffs");
    b.la(A1, "pixels");
    b.li(T0, 0);
    b.li(T1, rows as i32);

    b.label("row_loop");
    b.lh(T2, A0, 0); // DC
    b.lh(T3, A0, 2);
    b.lh(T4, A0, 4);
    b.lh(T5, A0, 6);
    // Reconstruct four output pairs from the low coefficients (a truncated
    // inverse butterfly) and clamp each to [0, 255].
    b.li(S1, 0); // column index (bytes)
    b.li(S2, 4); // four pairs
    b.label("col_loop");
    // even estimate = (dc + c2) >> 3 + 128 ; odd estimate = (dc - c2 + c1 - c3) >> 3 + 128
    b.addu(T6, T2, T4);
    b.sra(T6, T6, 3);
    b.addiu(T6, T6, 128);
    b.subu(T7, T2, T4);
    b.addu(T7, T7, T3);
    b.subu(T7, T7, T5);
    b.sra(T7, T7, 3);
    b.addiu(T7, T7, 128);
    // clamp T6
    b.bgez(T6, "clamp_lo_done_a");
    b.li(T6, 0);
    b.label("clamp_lo_done_a");
    b.slti(T8, T6, 256);
    b.bne(T8, ZERO, "clamp_hi_done_a");
    b.li(T6, 255);
    b.label("clamp_hi_done_a");
    // clamp T7
    b.bgez(T7, "clamp_lo_done_b");
    b.li(T7, 0);
    b.label("clamp_lo_done_b");
    b.slti(T8, T7, 256);
    b.bne(T8, ZERO, "clamp_hi_done_b");
    b.li(T7, 255);
    b.label("clamp_hi_done_b");
    b.addu(T9, A1, S1);
    b.sb(T6, T9, 0);
    b.sb(T7, T9, 1);
    // Rotate the coefficient estimate so the four pairs differ.
    b.addu(T3, T3, T4);
    b.subu(T4, T4, T5);
    b.addiu(S1, S1, 2);
    b.addiu(S2, S2, -1);
    b.bne(S2, ZERO, "col_loop");
    // Next row.
    b.addiu(A0, A0, 16);
    b.addiu(A1, A1, 8);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "row_loop");
    b.halt();

    Benchmark::new(
        "djpeg",
        "truncated inverse DCT row reconstruction with pixel clamping (JPEG decode)",
        b.assemble().expect("djpeg assembles"),
        FUEL,
    )
}

/// `epic`: one level of a wavelet lifting transform (predict + update steps)
/// over a sample vector, as in the EPIC image coder's filter pyramid.
#[must_use]
pub fn epic_wavelet(size: WorkloadSize) -> Benchmark {
    let n = size.elements(2048); // must be even
    let n = n & !1;
    let mut b = ProgramBuilder::new();

    let pixels = pixel_bytes(n + 2, 0xe91c);
    let samples: Vec<i16> = pixels.iter().map(|&p| i16::from(p)).collect();
    b.dlabel("signal");
    b.halves(&samples);
    b.align(4);
    b.dlabel("detail");
    b.space(n as usize); // n/2 halfwords
    b.dlabel("approx");
    b.space(n as usize);

    b.la(A0, "signal");
    b.la(A1, "detail");
    b.la(A2, "approx");
    b.li(T0, 0);
    b.li(T1, (n / 2) as i32);

    b.label("loop");
    b.lh(T2, A0, 0); // even sample x[2i]
    b.lh(T3, A0, 2); // odd sample x[2i+1]
    b.lh(T4, A0, 4); // next even x[2i+2]
                     // Predict: d = x[2i+1] - ((x[2i] + x[2i+2]) >> 1)
    b.addu(T5, T2, T4);
    b.sra(T5, T5, 1);
    b.subu(T6, T3, T5);
    b.sh(T6, A1, 0);
    // Update: s = x[2i] + (d >> 2)
    b.sra(T7, T6, 2);
    b.addu(T8, T2, T7);
    b.sh(T8, A2, 0);
    b.addiu(A0, A0, 4);
    b.addiu(A1, A1, 2);
    b.addiu(A2, A2, 2);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.halt();

    Benchmark::new(
        "epic",
        "one level of a wavelet lifting transform (EPIC-style image pyramid)",
        b.assemble().expect("epic assembles"),
        FUEL,
    )
}

/// `mpeg2decode`: motion compensation inner loops — the sum of absolute
/// differences between a current and a reference block plus the halfpel
/// averaging write, over a sequence of 16-byte block rows.
#[must_use]
pub fn mpeg2_motion(size: WorkloadSize) -> Benchmark {
    let n = size.elements(4096);
    let mut b = ProgramBuilder::new();

    b.dlabel("cur");
    b.bytes(&pixel_bytes(n, 0x2001));
    b.dlabel("ref");
    b.bytes(&pixel_bytes(n, 0x2002));
    b.align(4);
    b.dlabel("pred");
    b.space(n as usize);
    b.dlabel("sad");
    b.space(4);

    b.la(A0, "cur");
    b.la(A1, "ref");
    b.la(A2, "pred");
    b.li(T0, 0);
    b.li(T1, n as i32);
    b.li(S0, 0); // SAD accumulator

    b.label("loop");
    b.lbu(T2, A0, 0);
    b.lbu(T3, A1, 0);
    b.subu(T4, T2, T3);
    b.bgez(T4, "abs_done");
    b.subu(T4, ZERO, T4);
    b.label("abs_done");
    b.addu(S0, S0, T4);
    // Half-pel average prediction: (cur + ref + 1) >> 1.
    b.addu(T5, T2, T3);
    b.addiu(T5, T5, 1);
    b.srl(T5, T5, 1);
    b.sb(T5, A2, 0);
    b.addiu(A0, A0, 1);
    b.addiu(A1, A1, 1);
    b.addiu(A2, A2, 1);
    b.addiu(T0, T0, 1);
    b.bne(T0, T1, "loop");
    b.la(T6, "sad");
    b.sw(S0, T6, 0);
    b.halt();

    Benchmark::new(
        "mpeg2decode",
        "block SAD and half-pel averaging (MPEG-2 motion compensation)",
        b.assemble().expect("mpeg2decode assembles"),
        FUEL,
    )
}
