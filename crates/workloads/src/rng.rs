//! A tiny deterministic PRNG with the slice of the `rand` API this crate
//! uses.
//!
//! The original seed code drew on the external `rand` crate; this module
//! replaces it with a self-contained splitmix64/xorshift generator so the
//! workspace builds with no external dependencies. Kernels and the trace
//! synthesizer only need reproducible, reasonably-distributed values — not
//! cryptographic quality — and every consumer seeds explicitly, so traces
//! stay bit-identical from run to run.

/// Deterministic 64-bit PRNG (xorshift64* seeded through splitmix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; equal seeds yield equal sequences forever.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step so that small/sequential seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SmallRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Draws a uniform value of type `T`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types [`SmallRng::gen`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for bool {
    fn sample(rng: &mut SmallRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    fn sample(rng: &mut SmallRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait UniformRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire reduction
/// without the rejection step — the tiny modulo bias is irrelevant here).
fn index(rng: &mut SmallRng, span: u64) -> u64 {
    assert!(span > 0, "cannot sample an empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + index(rng, span) as i128) as $t
            }
        }
        impl UniformRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + index(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-12..=12);
            assert!((-12..=12).contains(&v));
            let w: u32 = r.gen_range(0x10_0000u32..0x20_0000);
            assert!((0x10_0000..0x20_0000).contains(&w));
            let u: usize = r.gen_range(0..6);
            assert!(u < 6);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 25];
        for _ in 0..2_000 {
            seen[(r.gen_range(-12i32..=12) + 12) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }
}
