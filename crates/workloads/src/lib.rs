//! # sigcomp-workloads
//!
//! Workloads for evaluating significance-compressed pipelines.
//!
//! The paper evaluates on the Mediabench suite compiled to MIPS binaries.
//! Those binaries (and the toolchain that produced them) are not available
//! here, so this crate substitutes two things (see DESIGN.md §2):
//!
//! 1. **Kernels** ([`kernels`], exposed through [`suite`]): hand-written
//!    integer kernels in the spirit of the Mediabench programs — ADPCM
//!    encode/decode, G.721-style prediction, GSM autocorrelation, JPEG
//!    FDCT/IDCT, EPIC-style wavelet filtering, MPEG-2 IDCT + motion SAD,
//!    Pegwit-style modular arithmetic, a CRC/PGP-style checksum and a
//!    RASTA-style filter bank — expressed directly in the `sigcomp-isa`
//!    assembler and executed by its interpreter. They produce naturally
//!    narrow integer values, table lookups and branch behaviour like the
//!    originals.
//! 2. **Statistical traces** ([`synth`]): a trace synthesizer calibrated to
//!    the paper's published distributions (Table 1 operand patterns, Table 3
//!    function-code frequencies, §2.3 instruction mix), for experiments that
//!    want the paper's aggregate statistics exactly.
//!
//! # Example
//!
//! ```
//! let suite = sigcomp_workloads::suite(sigcomp_workloads::WorkloadSize::Tiny);
//! assert!(suite.len() >= 10);
//! let trace = suite[0].trace().unwrap();
//! assert!(trace.len() > 100);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod benchmark;
pub mod kernels;
mod rng;
pub mod synth;

pub use benchmark::{find, suite, suite_names, Benchmark, WorkloadSize};
pub use rng::SmallRng;
pub use synth::{SynthConfig, TraceSynthesizer};
