//! Statistical trace synthesis.
//!
//! The paper characterizes Mediabench with a handful of published
//! distributions: the significant-byte patterns of operand values (Table 1),
//! the dynamic function-code frequencies (Table 3), the instruction-format
//! mix and the fraction of 8-bit immediates (§2.3). [`TraceSynthesizer`]
//! draws a synthetic dynamic trace directly from those distributions, so
//! experiments can be run against *exactly* the paper's aggregate statistics
//! even though the original binaries are unavailable.

use crate::rng::SmallRng;
use sigcomp_isa::{reg, BranchOutcome, ExecRecord, Instruction, MemAccess, Op, Reg, Trace};

/// Weights over the eight significant-byte patterns, indexed the same way as
/// `sigcomp::ext::SigPattern::index` (bit *i* of the index set ⇔ byte *i+1*
/// significant).
pub type PatternWeights = [f64; 8];

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of instructions to generate.
    pub instructions: u64,
    /// RNG seed (traces are deterministic for a given configuration).
    pub seed: u64,
    /// Operand-value pattern weights (Table 1).
    pub pattern_weights: PatternWeights,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_fraction: f64,
    /// Fraction of branches that are taken.
    pub branch_taken_fraction: f64,
    /// Fraction of instructions that are unconditional jumps.
    pub jump_fraction: f64,
    /// Fraction of instructions that are R-format ALU operations (the rest
    /// are I-format ALU operations).
    pub r_alu_fraction: f64,
    /// Fraction of immediates that fit in eight bits (§2.3 reports ≈ 80 %).
    pub imm_8bit_fraction: f64,
    /// Relative dynamic frequencies of R-format operations (Table 3).
    pub funct_weights: Vec<(Op, f64)>,
}

impl SynthConfig {
    /// A configuration calibrated to the paper's published Mediabench
    /// statistics: Table 1 pattern frequencies, Table 3 function-code
    /// frequencies, ≈ 57 % I-format / 41 % R-format / 2 % J-format, one third
    /// memory instructions and 80 % 8-bit immediates.
    #[must_use]
    pub fn paper(instructions: u64) -> Self {
        SynthConfig {
            instructions,
            seed: 0x5192_c0de,
            // Index encodes which of bytes 1..3 are significant (bit 0 ↔ byte 1):
            // eees, eess, eses, esss, sees, sess, sses, ssss.
            pattern_weights: [61.0, 13.6, 1.4, 7.4, 0.8, 1.6, 1.8, 12.6],
            load_fraction: 0.21,
            store_fraction: 0.12,
            branch_fraction: 0.12,
            branch_taken_fraction: 0.6,
            jump_fraction: 0.02,
            r_alu_fraction: 0.33,
            imm_8bit_fraction: 0.8,
            funct_weights: vec![
                (Op::Addu, 34.0),
                (Op::Sll, 17.0),
                (Op::Subu, 8.0),
                (Op::Or, 6.5),
                (Op::Slt, 6.0),
                (Op::Sra, 5.0),
                (Op::Sltu, 4.5),
                (Op::Xor, 3.6),
                (Op::Mflo, 2.1),
                (Op::And, 2.0),
                (Op::Srl, 2.0),
                (Op::Mult, 1.8),
                (Op::Addu, 1.5),
                (Op::Nor, 1.0),
                (Op::Divu, 1.0),
                (Op::Sllv, 1.0),
                (Op::Jr, 3.0),
            ],
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper(100_000)
    }
}

/// Generates synthetic dynamic traces from a [`SynthConfig`].
#[derive(Debug, Clone)]
pub struct TraceSynthesizer {
    config: SynthConfig,
}

impl TraceSynthesizer {
    /// Creates a synthesizer.
    #[must_use]
    pub fn new(config: SynthConfig) -> Self {
        TraceSynthesizer { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generates the full synthetic trace.
    #[must_use]
    pub fn generate(&self) -> Trace {
        let mut trace = Trace::new();
        self.generate_each(|r| trace.push(*r));
        trace
    }

    /// Generates the trace, streaming each record to `f`.
    pub fn generate_each<F: FnMut(&ExecRecord)>(&self, mut f: F) {
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut pc: u32 = 0x0040_0000;
        for seq in 0..cfg.instructions {
            let record = self.one_instruction(&mut rng, seq, &mut pc);
            f(&record);
        }
    }

    fn one_instruction(&self, rng: &mut SmallRng, seq: u64, pc: &mut u32) -> ExecRecord {
        let cfg = &self.config;
        let class: f64 = rng.gen();
        let this_pc = *pc;
        let mut next_pc = this_pc.wrapping_add(4);

        let load_t = cfg.load_fraction;
        let store_t = load_t + cfg.store_fraction;
        let branch_t = store_t + cfg.branch_fraction;
        let jump_t = branch_t + cfg.jump_fraction;
        let r_alu_t = jump_t + cfg.r_alu_fraction;

        let (instr, rs_value, rt_value, writeback, mem, branch) = if class < load_t {
            self.synth_load(rng)
        } else if class < store_t {
            self.synth_store(rng)
        } else if class < branch_t {
            let (i, rs, rt, br) = self.synth_branch(rng, this_pc);
            if br.taken {
                next_pc = br.target;
            }
            (i, rs, rt, None, None, Some(br))
        } else if class < jump_t {
            let target = (this_pc.wrapping_add(4) & 0xf000_0000)
                | (rng.gen_range(0x10_0000u32..0x20_0000) << 2);
            next_pc = target;
            let i = Instruction::jump(Op::Jal, target >> 2);
            (
                i,
                None,
                None,
                Some((reg::RA, this_pc.wrapping_add(4))),
                None,
                Some(BranchOutcome {
                    taken: true,
                    target,
                }),
            )
        } else if class < r_alu_t {
            self.synth_r_alu(rng)
        } else {
            self.synth_i_alu(rng)
        };

        *pc = next_pc;
        ExecRecord {
            seq,
            pc: this_pc,
            word: instr.encode(),
            instr,
            rs_value,
            rt_value,
            writeback,
            mem,
            branch,
        }
    }

    /// Draws a 32-bit value whose significant-byte pattern follows the
    /// configured Table 1 weights.
    pub fn draw_value(&self, rng: &mut SmallRng) -> u32 {
        let weights = &self.config.pattern_weights;
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut index = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                index = i;
                break;
            }
            pick -= w;
        }
        value_with_pattern(index, rng)
    }

    fn draw_reg(&self, rng: &mut SmallRng) -> Reg {
        // Favour the temporaries and saved registers like compiled code does.
        Reg::new(rng.gen_range(2..26))
    }

    fn draw_imm(&self, rng: &mut SmallRng) -> u16 {
        if rng.gen::<f64>() < self.config.imm_8bit_fraction {
            (rng.gen_range(-128i32..128) as i16) as u16
        } else {
            (rng.gen_range(-32768i32..32768) as i16) as u16
        }
    }

    #[allow(clippy::type_complexity)]
    fn synth_load(
        &self,
        rng: &mut SmallRng,
    ) -> (
        Instruction,
        Option<u32>,
        Option<u32>,
        Option<(Reg, u32)>,
        Option<MemAccess>,
        Option<BranchOutcome>,
    ) {
        let op = *[Op::Lw, Op::Lw, Op::Lw, Op::Lh, Op::Lbu, Op::Lb]
            .get(rng.gen_range(0..6usize))
            .expect("index in range");
        let width = op.mem_width().expect("load has width");
        let base: u32 = 0x1000_0000 + (rng.gen_range(0..0x4000u32) & !(u32::from(width) - 1));
        let offset = (rng.gen_range(0..64u32) * u32::from(width)) as u16;
        let rt = self.draw_reg(rng);
        let rs = self.draw_reg(rng);
        let value = self.draw_value(rng);
        let value = match op {
            Op::Lb => value as u8 as i8 as i32 as u32,
            Op::Lbu => u32::from(value as u8),
            Op::Lh => value as u16 as i16 as i32 as u32,
            Op::Lhu => u32::from(value as u16),
            _ => value,
        };
        let instr = Instruction::imm(op, rt, rs, offset);
        (
            instr,
            Some(base),
            None,
            Some((rt, value)),
            Some(MemAccess {
                addr: base.wrapping_add(u32::from(offset)),
                width,
                is_store: false,
                value,
            }),
            None,
        )
    }

    #[allow(clippy::type_complexity)]
    fn synth_store(
        &self,
        rng: &mut SmallRng,
    ) -> (
        Instruction,
        Option<u32>,
        Option<u32>,
        Option<(Reg, u32)>,
        Option<MemAccess>,
        Option<BranchOutcome>,
    ) {
        let op = *[Op::Sw, Op::Sw, Op::Sh, Op::Sb]
            .get(rng.gen_range(0..4usize))
            .expect("index in range");
        let width = op.mem_width().expect("store has width");
        let base: u32 = 0x1000_0000 + (rng.gen_range(0..0x4000u32) & !(u32::from(width) - 1));
        let offset = (rng.gen_range(0..64u32) * u32::from(width)) as u16;
        let rt = self.draw_reg(rng);
        let rs = self.draw_reg(rng);
        let value = self.draw_value(rng);
        let instr = Instruction::imm(op, rt, rs, offset);
        (
            instr,
            Some(base),
            Some(value),
            None,
            Some(MemAccess {
                addr: base.wrapping_add(u32::from(offset)),
                width,
                is_store: true,
                value,
            }),
            None,
        )
    }

    fn synth_branch(
        &self,
        rng: &mut SmallRng,
        pc: u32,
    ) -> (Instruction, Option<u32>, Option<u32>, BranchOutcome) {
        let taken = rng.gen::<f64>() < self.config.branch_taken_fraction;
        let displacement: i16 = rng.gen_range(-64..64);
        let target = pc
            .wrapping_add(4)
            .wrapping_add((i32::from(displacement) << 2) as u32);
        let rs = self.draw_reg(rng);
        let rt = self.draw_reg(rng);
        let a = self.draw_value(rng);
        // Generate operand values consistent with the outcome.
        let (op, b) = if rng.gen::<bool>() {
            (Op::Beq, if taken { a } else { a.wrapping_add(1) })
        } else {
            (Op::Bne, if taken { a.wrapping_add(1) } else { a })
        };
        let instr = Instruction::imm(op, rt, rs, displacement as u16);
        (instr, Some(a), Some(b), BranchOutcome { taken, target })
    }

    #[allow(clippy::type_complexity)]
    fn synth_r_alu(
        &self,
        rng: &mut SmallRng,
    ) -> (
        Instruction,
        Option<u32>,
        Option<u32>,
        Option<(Reg, u32)>,
        Option<MemAccess>,
        Option<BranchOutcome>,
    ) {
        let weights = &self.config.funct_weights;
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut op = Op::Addu;
        for &(candidate, w) in weights {
            if pick < w {
                op = candidate;
                break;
            }
            pick -= w;
        }
        if op == Op::Jr {
            // Treat indirect jumps as plain adds here; the jump fraction is
            // modelled separately.
            op = Op::Addu;
        }
        let rd = self.draw_reg(rng);
        let rs_reg = self.draw_reg(rng);
        let rt_reg = self.draw_reg(rng);
        let a = self.draw_value(rng);
        let b = self.draw_value(rng);
        let (instr, rs_value, rt_value, result) = match op {
            Op::Sll | Op::Srl | Op::Sra => {
                let shamt = rng.gen_range(0..16u8);
                let result = match op {
                    Op::Sll => b << shamt,
                    Op::Srl => b >> shamt,
                    _ => ((b as i32) >> shamt) as u32,
                };
                (
                    Instruction::shift_imm(op, rd, rt_reg, shamt),
                    None,
                    Some(b),
                    result,
                )
            }
            Op::Mult | Op::Multu | Op::Divu => (
                Instruction::r3(op, reg::ZERO, rs_reg, rt_reg),
                Some(a),
                Some(b),
                0,
            ),
            Op::Mflo => (Instruction::r3(op, rd, reg::ZERO, reg::ZERO), None, None, a),
            Op::Sllv => (
                Instruction::r3(op, rd, rs_reg, rt_reg),
                Some(a & 0x1f),
                Some(b),
                b << (a & 0x1f),
            ),
            _ => {
                let result = match op {
                    Op::Addu => a.wrapping_add(b),
                    Op::Subu => a.wrapping_sub(b),
                    Op::Or => a | b,
                    Op::And => a & b,
                    Op::Xor => a ^ b,
                    Op::Nor => !(a | b),
                    Op::Slt => u32::from((a as i32) < (b as i32)),
                    Op::Sltu => u32::from(a < b),
                    _ => a.wrapping_add(b),
                };
                (
                    Instruction::r3(op, rd, rs_reg, rt_reg),
                    Some(a),
                    Some(b),
                    result,
                )
            }
        };
        let writeback = instr.dest_reg().map(|d| (d, result));
        (instr, rs_value, rt_value, writeback, None, None)
    }

    #[allow(clippy::type_complexity)]
    fn synth_i_alu(
        &self,
        rng: &mut SmallRng,
    ) -> (
        Instruction,
        Option<u32>,
        Option<u32>,
        Option<(Reg, u32)>,
        Option<MemAccess>,
        Option<BranchOutcome>,
    ) {
        let op = *[
            Op::Addiu,
            Op::Addiu,
            Op::Addiu,
            Op::Andi,
            Op::Ori,
            Op::Slti,
            Op::Lui,
        ]
        .get(rng.gen_range(0..7usize))
        .expect("index in range");
        let rt = self.draw_reg(rng);
        let rs = self.draw_reg(rng);
        let imm = self.draw_imm(rng);
        let a = self.draw_value(rng);
        let imm_se = imm as i16 as i32 as u32;
        let imm_ze = u32::from(imm);
        let (rs_value, result) = match op {
            Op::Addiu => (Some(a), a.wrapping_add(imm_se)),
            Op::Andi => (Some(a), a & imm_ze),
            Op::Ori => (Some(a), a | imm_ze),
            Op::Slti => (Some(a), u32::from((a as i32) < (imm_se as i32))),
            Op::Lui => (None, imm_ze << 16),
            _ => (Some(a), a),
        };
        let instr = Instruction::imm(op, rt, rs, imm);
        let writeback = instr.dest_reg().map(|d| (d, result));
        (instr, rs_value, None, writeback, None, None)
    }
}

/// Constructs a value whose three-bit-scheme pattern has the given index
/// (bit *i* of the index set ⇔ byte *i+1* significant).
fn value_with_pattern(index: usize, rng: &mut SmallRng) -> u32 {
    let mut bytes = [0u8; 4];
    bytes[0] = rng.gen();
    for i in 1..4 {
        let ext = if bytes[i - 1] & 0x80 != 0 {
            0xffu8
        } else {
            0x00
        };
        let significant = index & (1 << (i - 1)) != 0;
        bytes[i] = if significant {
            // Pick any byte other than the sign extension of the previous one.
            loop {
                let candidate: u8 = rng.gen();
                if candidate != ext {
                    break candidate;
                }
            }
        } else {
            ext
        };
    }
    u32::from_le_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::OpClass;

    #[test]
    fn value_patterns_match_their_index() {
        let mut rng = SmallRng::seed_from_u64(7);
        for index in 0..8 {
            for _ in 0..200 {
                let v = value_with_pattern(index, &mut rng);
                let bytes = v.to_le_bytes();
                for i in 1..4 {
                    let ext = if bytes[i - 1] & 0x80 != 0 { 0xff } else { 0x00 };
                    let significant = index & (1 << (i - 1)) != 0;
                    assert_eq!(
                        bytes[i] != ext,
                        significant,
                        "value {v:#010x} index {index}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_is_deterministic_and_sized() {
        let cfg = SynthConfig::paper(5_000);
        let a = TraceSynthesizer::new(cfg.clone()).generate();
        let b = TraceSynthesizer::new(cfg).generate();
        assert_eq!(a.len(), 5_000);
        assert_eq!(a.records()[100], b.records()[100]);
        assert_eq!(a.records()[4_999], b.records()[4_999]);
    }

    #[test]
    fn instruction_mix_tracks_the_configuration() {
        let cfg = SynthConfig::paper(40_000);
        let trace = TraceSynthesizer::new(cfg.clone()).generate();
        let loads = trace.fraction(|r| r.instr.op.is_load());
        let stores = trace.fraction(|r| r.instr.op.is_store());
        let branches = trace.fraction(|r| r.instr.op.is_branch());
        assert!((loads - cfg.load_fraction).abs() < 0.02, "loads {loads}");
        assert!((stores - cfg.store_fraction).abs() < 0.02);
        assert!((branches - cfg.branch_fraction).abs() < 0.02);
        let muldiv = trace.fraction(|r| r.instr.op.class() == OpClass::MulDiv);
        assert!(muldiv > 0.0);
    }

    #[test]
    fn branch_operands_are_consistent_with_outcomes() {
        let trace = TraceSynthesizer::new(SynthConfig::paper(20_000)).generate();
        for r in trace.iter().filter(|r| r.instr.op.is_branch()) {
            let (a, b) = (r.rs_value.unwrap(), r.rt_value.unwrap());
            let taken = r.branch.unwrap().taken;
            match r.instr.op {
                Op::Beq => assert_eq!(a == b, taken),
                Op::Bne => assert_eq!(a != b, taken),
                _ => {}
            }
        }
    }

    #[test]
    fn sequential_pcs_except_after_taken_control() {
        let trace = TraceSynthesizer::new(SynthConfig::paper(5_000)).generate();
        let records = trace.records();
        for w in records.windows(2) {
            let expected = match w[0].branch {
                Some(b) if b.taken => b.target,
                _ => w[0].pc.wrapping_add(4),
            };
            assert_eq!(w[1].pc, expected);
        }
    }

    #[test]
    fn loads_and_stores_carry_memory_accesses() {
        let trace = TraceSynthesizer::new(SynthConfig::paper(10_000)).generate();
        for r in &trace {
            let op = r.instr.op;
            assert_eq!(op.is_load() || op.is_store(), r.mem.is_some());
            if let Some(m) = r.mem {
                assert_eq!(m.is_store, op.is_store());
                assert_eq!(m.addr % u32::from(m.width), 0, "aligned accesses only");
            }
            if op.is_load() {
                assert!(r.writeback.is_some());
            }
        }
    }
}
