//! The benchmark registry: named kernels with assembled programs.

use crate::kernels;
use sigcomp_isa::{ExecRecord, Interpreter, IsaError, Program, Trace};

/// How much work each kernel does. All experiments are trace-driven, so the
/// size only scales run time, not the shape of the results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkloadSize {
    /// A few hundred to a few thousand instructions per kernel — unit tests.
    Tiny,
    /// Tens of thousands of instructions per kernel — the default for the
    /// experiment harness.
    #[default]
    Default,
    /// Hundreds of thousands of instructions per kernel — benches and
    /// high-fidelity runs.
    Large,
}

impl WorkloadSize {
    /// Every size, smallest first (the enumeration order used by sweeps).
    pub const ALL: &'static [WorkloadSize] = &[
        WorkloadSize::Tiny,
        WorkloadSize::Default,
        WorkloadSize::Large,
    ];

    /// Stable lower-case name (`tiny`/`default`/`large`), used in reports and
    /// cache keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadSize::Tiny => "tiny",
            WorkloadSize::Default => "default",
            WorkloadSize::Large => "large",
        }
    }

    /// Parses a size name as produced by [`WorkloadSize::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        WorkloadSize::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// A kernel-neutral element-count scaling factor.
    #[must_use]
    pub fn elements(self, default_elements: u32) -> u32 {
        match self {
            WorkloadSize::Tiny => (default_elements / 16).max(8),
            WorkloadSize::Default => default_elements,
            WorkloadSize::Large => default_elements * 8,
        }
    }
}

/// A named, assembled benchmark kernel.
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    program: Program,
    fuel: u64,
}

impl Benchmark {
    /// Creates a benchmark from an assembled program.
    #[must_use]
    pub fn new(name: &'static str, description: &'static str, program: Program, fuel: u64) -> Self {
        Benchmark {
            name,
            description,
            program,
            fuel,
        }
    }

    /// The benchmark's short name (matches the Mediabench program it mirrors).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// A one-line description of what the kernel computes.
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The assembled program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes the kernel and returns its full dynamic trace.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (these indicate a bug in the kernel).
    pub fn trace(&self) -> Result<Trace, IsaError> {
        let mut interp = Interpreter::new(&self.program);
        interp.run(self.fuel)
    }

    /// Executes the kernel, streaming each retired instruction to `f`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (these indicate a bug in the kernel).
    pub fn run_each<F: FnMut(&ExecRecord)>(&self, f: F) -> Result<(), IsaError> {
        let mut interp = Interpreter::new(&self.program);
        interp.run_each(self.fuel, f)
    }

    /// Executes the kernel and returns the number of retired instructions.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (these indicate a bug in the kernel).
    pub fn instruction_count(&self) -> Result<u64, IsaError> {
        let mut count = 0u64;
        self.run_each(|_| count += 1)?;
        Ok(count)
    }
}

/// Builds the full benchmark suite at the given size.
///
/// The names mirror the Mediabench programs each kernel stands in for.
///
/// # Panics
///
/// Panics if any kernel fails to assemble — that is a bug in this crate, not
/// a runtime condition.
#[must_use]
pub fn suite(size: WorkloadSize) -> Vec<Benchmark> {
    kernels::all(size)
}

/// The names of every benchmark in the suite, in suite order, without
/// assembling any kernel. This is the enumeration API sweeps build their
/// workload axis from.
#[must_use]
pub fn suite_names() -> &'static [&'static str] {
    kernels::NAMES
}

/// Builds a single benchmark by name at the given size.
#[must_use]
pub fn find(name: &str, size: WorkloadSize) -> Option<Benchmark> {
    kernels::NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| (kernels::BUILDERS[i])(size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_assembles_runs_and_terminates() {
        for b in suite(WorkloadSize::Tiny) {
            let trace = b
                .trace()
                .unwrap_or_else(|e| panic!("kernel {} failed: {e}", b.name()));
            assert!(
                trace.len() > 100,
                "kernel {} retired only {} instructions",
                b.name(),
                trace.len()
            );
        }
    }

    #[test]
    fn suite_has_distinct_names() {
        use std::collections::HashSet;
        let names: Vec<_> = suite(WorkloadSize::Tiny)
            .iter()
            .map(super::Benchmark::name)
            .collect();
        let set: HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(names.len() >= 10, "expected at least 10 kernels");
    }

    #[test]
    fn kernels_have_realistic_instruction_mixes() {
        for b in suite(WorkloadSize::Tiny) {
            let trace = b.trace().unwrap();
            let loads = trace.fraction(|r| r.instr.op.is_load());
            let stores = trace.fraction(|r| r.instr.op.is_store());
            let branches = trace.fraction(|r| r.instr.op.is_branch());
            assert!(
                loads + stores > 0.02,
                "{} has almost no memory traffic ({:.3})",
                b.name(),
                loads + stores
            );
            assert!(
                branches > 0.01 && branches < 0.5,
                "{} branch fraction {:.3} is implausible",
                b.name(),
                branches
            );
        }
    }

    #[test]
    fn sizes_scale_instruction_counts() {
        let tiny: u64 = suite(WorkloadSize::Tiny)
            .iter()
            .map(|b| b.instruction_count().unwrap())
            .sum();
        let default: u64 = suite(WorkloadSize::Default)
            .iter()
            .map(|b| b.instruction_count().unwrap())
            .sum();
        assert!(default > tiny * 4, "default {default} vs tiny {tiny}");
    }

    #[test]
    fn workload_size_elements_scale() {
        assert_eq!(WorkloadSize::Default.elements(256), 256);
        assert_eq!(WorkloadSize::Large.elements(256), 2048);
        assert!(WorkloadSize::Tiny.elements(256) >= 8);
        assert_eq!(WorkloadSize::default(), WorkloadSize::Default);
    }

    #[test]
    fn suite_names_match_registered_benchmarks() {
        let names: Vec<_> = suite(WorkloadSize::Tiny)
            .iter()
            .map(super::Benchmark::name)
            .collect();
        assert_eq!(names, suite_names());
        for &n in suite_names() {
            assert_eq!(find(n, WorkloadSize::Tiny).unwrap().name(), n);
        }
        assert!(find("not-a-kernel", WorkloadSize::Tiny).is_none());
    }

    #[test]
    fn size_names_round_trip() {
        for &s in WorkloadSize::ALL {
            assert_eq!(WorkloadSize::parse(s.name()), Some(s));
        }
        assert_eq!(WorkloadSize::parse("huge"), None);
    }

    #[test]
    fn descriptions_are_present() {
        for b in suite(WorkloadSize::Tiny) {
            assert!(!b.description().is_empty());
            assert!(!b.program().is_empty());
        }
    }
}
