//! Property-based tests for the significance-compression core: lossless
//! compression, ALU correctness and the case-3 rule, and the I-cache
//! permutation.

use proptest::prelude::*;
use sigcomp::alu::{self, LogicOp, ShiftOp};
use sigcomp::ext::{
    ext_bits, sig_mask, significant_bytes, sign_extension_of, CompressedWord, ExtScheme,
    SigPattern,
};
use sigcomp::ifetch::{compress_instruction, decompress_instruction, FunctRecoder};
use sigcomp_isa::{Format, Instruction, Op, Reg};

fn arb_scheme() -> impl Strategy<Value = ExtScheme> {
    prop::sample::select(ExtScheme::ALL.to_vec())
}

/// Values biased toward narrow magnitudes, mirroring real operand streams.
fn arb_value() -> impl Strategy<Value = u32> {
    prop_oneof![
        any::<u8>().prop_map(|v| v as i8 as i32 as u32),
        any::<u16>().prop_map(|v| v as i16 as i32 as u32),
        any::<u32>(),
        (any::<u8>()).prop_map(|v| 0x1000_0000 | u32::from(v)),
    ]
}

proptest! {
    /// Compression is lossless for every value under every scheme.
    #[test]
    fn compression_roundtrips(value in any::<u32>(), scheme in arb_scheme()) {
        let c = CompressedWord::compress(value, scheme);
        prop_assert_eq!(c.decompress(), value);
        prop_assert_eq!(u32::from(c.stored_bytes()), u32::from(significant_bytes(value, scheme)));
    }

    /// The significance mask really describes the value: bytes marked as
    /// extensions equal the sign extension of the byte below them.
    #[test]
    fn sig_mask_is_sound(value in any::<u32>(), scheme in arb_scheme()) {
        let mask = sig_mask(value, scheme);
        let bytes = value.to_le_bytes();
        prop_assert!(mask[0]);
        for i in 1..4 {
            if !mask[i] && scheme != ExtScheme::Halfword {
                prop_assert_eq!(bytes[i], sign_extension_of(bytes[i - 1]));
            }
        }
        if scheme == ExtScheme::Halfword && !mask[2] {
            prop_assert_eq!(value, (value as u16) as i16 as i32 as u32);
        }
    }

    /// The two-bit scheme's count and the three-bit scheme's mask agree with
    /// the pattern classification used for Table 1.
    #[test]
    fn pattern_index_matches_mask(value in any::<u32>()) {
        let pattern = SigPattern::of(value);
        let mask = sig_mask(value, ExtScheme::ThreeBit);
        prop_assert_eq!(u32::from(pattern.significant_bytes()),
                        mask.iter().filter(|&&b| b).count() as u32);
        // Extension bits encode the complement of the mask.
        let ext = ext_bits(value, ExtScheme::ThreeBit);
        for i in 1..4usize {
            prop_assert_eq!(ext & (1 << (i - 1)) != 0, !mask[i]);
        }
    }

    /// The significance-aware ALU always produces the architectural result.
    #[test]
    fn alu_matches_wrapping_arithmetic(a in arb_value(), b in arb_value(), scheme in arb_scheme()) {
        prop_assert_eq!(alu::add(a, b, scheme).result, a.wrapping_add(b));
        prop_assert_eq!(alu::sub(a, b, scheme).result, a.wrapping_sub(b));
        prop_assert_eq!(alu::logic(LogicOp::And, a, b, scheme).result, a & b);
        prop_assert_eq!(alu::logic(LogicOp::Or, a, b, scheme).result, a | b);
        prop_assert_eq!(alu::logic(LogicOp::Xor, a, b, scheme).result, a ^ b);
        prop_assert_eq!(alu::logic(LogicOp::Nor, a, b, scheme).result, !(a | b));
        prop_assert_eq!(alu::compare(a, b, true, scheme).result, u32::from((a as i32) < (b as i32)));
        prop_assert_eq!(alu::compare(a, b, false, scheme).result, u32::from(a < b));
    }

    /// Shifts produce the architectural result and touch at least the bytes
    /// of the wider of source and result.
    #[test]
    fn shift_matches_architecture(v in arb_value(), amount in 0u32..32, scheme in arb_scheme()) {
        prop_assert_eq!(alu::shift(ShiftOp::Left, v, amount, scheme).result, v << amount);
        prop_assert_eq!(alu::shift(ShiftOp::RightLogical, v, amount, scheme).result, v >> amount);
        prop_assert_eq!(
            alu::shift(ShiftOp::RightArithmetic, v, amount, scheme).result,
            ((v as i32) >> amount) as u32
        );
    }

    /// The byte positions the compressed adder skips really are sign
    /// extensions of the byte below them in the true result — the safety
    /// property behind the case-3 rule of §2.5 / Table 4.
    #[test]
    fn skipped_add_bytes_are_sign_extensions(a in arb_value(), b in arb_value()) {
        let outcome = alu::add(a, b, ExtScheme::ThreeBit);
        let result_bytes = outcome.result.to_le_bytes();
        let a_mask = sig_mask(a, ExtScheme::ThreeBit);
        let b_mask = sig_mask(b, ExtScheme::ThreeBit);
        // Reconstruct which byte positions the model charged as "operated".
        // Positions not charged must be recoverable purely from the byte
        // below (i.e. they are sign extensions).
        for i in 1..4usize {
            let charged = a_mask[i] || b_mask[i]
                || result_bytes[i] != sign_extension_of(result_bytes[i - 1]);
            if !charged {
                prop_assert_eq!(result_bytes[i], sign_extension_of(result_bytes[i - 1]));
            }
        }
        prop_assert!(outcome.bytes_operated >= 1 && outcome.bytes_operated <= 4);
    }

    /// The case-3 predicate is exactly "the next byte is not the sign
    /// extension of the true sum byte".
    #[test]
    fn case3_predicate_is_exact(a in any::<u8>(), b in any::<u8>(), carry in any::<bool>()) {
        let sum = u16::from(a) + u16::from(b) + u16::from(carry);
        let low = (sum & 0xff) as u8;
        let carry_out = sum > 0xff;
        let next = (u16::from(sign_extension_of(a)) + u16::from(sign_extension_of(b))
            + u16::from(carry_out)) as u8;
        let expected = next != sign_extension_of(low);
        prop_assert_eq!(alu::case3_requires_generation(a, b, carry), expected);
    }

    /// I-cache permutation round-trips every encodable instruction under an
    /// arbitrary (but consistent) recoding profile.
    #[test]
    fn icache_permutation_roundtrips(
        op_index in 0usize..Op::ALL.len(),
        rd in 0u8..32, rs in 0u8..32, rt in 0u8..32,
        shamt in 0u8..32, imm in any::<u16>(), target in 0u32..(1 << 26),
        hot_seed in any::<u64>(),
    ) {
        let op = Op::ALL[op_index];
        let instr = match op.format() {
            Format::R => match op {
                Op::Sll | Op::Srl | Op::Sra =>
                    Instruction::shift_imm(op, Reg::new(rd), Reg::new(rt), shamt),
                _ => Instruction::r3(op, Reg::new(rd), Reg::new(rs), Reg::new(rt)),
            },
            Format::I => Instruction::imm(op, Reg::new(rt), Reg::new(rs), imm),
            Format::J => Instruction::jump(op, target),
        };
        // Build a recoder from a pseudo-random profile.
        let mut counts = std::collections::HashMap::new();
        for f in 0u8..64 {
            counts.insert(f, hot_seed.rotate_left(u32::from(f)) & 0xffff);
        }
        let recoder = FunctRecoder::from_counts(&counts);
        let compressed = compress_instruction(&instr, &recoder);
        prop_assert_eq!(decompress_instruction(compressed.stored_word, &recoder), instr.encode());
        prop_assert!(compressed.fetch_bytes == 3 || compressed.fetch_bytes == 4);
        prop_assert_eq!(compressed.fetch_bytes == 4, compressed.needs_fourth_byte);
    }

    /// Register-file and D-cache activity never exceeds the baseline by more
    /// than the extension-bit overhead.
    #[test]
    fn per_value_activity_is_bounded(value in any::<u32>(), scheme in arb_scheme()) {
        let bytes = significant_bytes(value, scheme);
        let bits = u32::from(bytes) * 8 + scheme.overhead_bits();
        prop_assert!(bits <= 32 + scheme.overhead_bits());
        prop_assert!(u32::from(bytes) >= scheme.granule_bytes());
    }
}
