//! Property tests for the significance-compression core: lossless
//! compression, ALU correctness and the case-3 rule, and the I-cache
//! permutation.
//!
//! Originally written against `proptest`; this environment vendors no
//! external crates, so the same properties are exercised with a deterministic
//! splitmix64 case generator plus the interesting edge values.

use sigcomp::alu::{self, LogicOp, ShiftOp};
use sigcomp::ext::{
    ext_bits, sig_mask, sign_extension_of, significant_bytes, CompressedWord, ExtScheme, SigPattern,
};
use sigcomp::ifetch::{compress_instruction, decompress_instruction, FunctRecoder};
use sigcomp_isa::{Format, Instruction, Op, Reg};

struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_add(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }

    fn scheme(&mut self) -> ExtScheme {
        ExtScheme::ALL[self.below(ExtScheme::ALL.len() as u64) as usize]
    }

    /// Values biased toward narrow magnitudes, mirroring real operand
    /// streams, plus full-width values and pointer-like values.
    fn value(&mut self) -> u32 {
        match self.below(4) {
            0 => (self.next() as u8) as i8 as i32 as u32,
            1 => (self.next() as u16) as i16 as i32 as u32,
            2 => self.u32(),
            _ => 0x1000_0000 | u32::from(self.next() as u8),
        }
    }
}

const EDGE_VALUES: &[u32] = &[
    0,
    1,
    0x7f,
    0x80,
    0xff,
    0x100,
    0x7fff,
    0x8000,
    0xffff,
    0x1_0000,
    0x7f_ffff,
    0x80_0000,
    0xff_ffff,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    0xffff_ff80,
    0xffff_8000,
    0xff80_0000,
];

const CASES: usize = 4_000;

#[test]
fn compression_roundtrips() {
    let mut g = Gen::new(1);
    let values = EDGE_VALUES
        .iter()
        .copied()
        .chain((0..CASES).map(|_| g.u32()));
    for value in values.collect::<Vec<_>>() {
        for &scheme in ExtScheme::ALL {
            let c = CompressedWord::compress(value, scheme);
            assert_eq!(c.decompress(), value, "{value:#010x} under {scheme}");
            assert_eq!(
                u32::from(c.stored_bytes()),
                u32::from(significant_bytes(value, scheme))
            );
        }
    }
}

#[test]
fn sig_mask_is_sound() {
    let mut g = Gen::new(2);
    for value in EDGE_VALUES
        .iter()
        .copied()
        .chain((0..CASES).map(|_| g.u32()))
        .collect::<Vec<_>>()
    {
        for &scheme in ExtScheme::ALL {
            let mask = sig_mask(value, scheme);
            let bytes = value.to_le_bytes();
            assert!(mask[0]);
            for i in 1..4 {
                if !mask[i] && scheme != ExtScheme::Halfword {
                    assert_eq!(bytes[i], sign_extension_of(bytes[i - 1]));
                }
            }
            if scheme == ExtScheme::Halfword && !mask[2] {
                assert_eq!(value, (value as u16) as i16 as i32 as u32);
            }
        }
    }
}

#[test]
fn pattern_index_matches_mask() {
    let mut g = Gen::new(3);
    for value in EDGE_VALUES
        .iter()
        .copied()
        .chain((0..CASES).map(|_| g.u32()))
        .collect::<Vec<_>>()
    {
        let pattern = SigPattern::of(value);
        let mask = sig_mask(value, ExtScheme::ThreeBit);
        assert_eq!(
            u32::from(pattern.significant_bytes()),
            mask.iter().filter(|&&b| b).count() as u32
        );
        // Extension bits encode the complement of the mask.
        let ext = ext_bits(value, ExtScheme::ThreeBit);
        for (i, &significant) in mask.iter().enumerate().skip(1) {
            assert_eq!(ext & (1 << (i - 1)) != 0, !significant);
        }
    }
}

#[test]
fn alu_matches_wrapping_arithmetic() {
    let mut g = Gen::new(4);
    for _ in 0..CASES {
        let (a, b, scheme) = (g.value(), g.value(), g.scheme());
        assert_eq!(alu::add(a, b, scheme).result, a.wrapping_add(b));
        assert_eq!(alu::sub(a, b, scheme).result, a.wrapping_sub(b));
        assert_eq!(alu::logic(LogicOp::And, a, b, scheme).result, a & b);
        assert_eq!(alu::logic(LogicOp::Or, a, b, scheme).result, a | b);
        assert_eq!(alu::logic(LogicOp::Xor, a, b, scheme).result, a ^ b);
        assert_eq!(alu::logic(LogicOp::Nor, a, b, scheme).result, !(a | b));
        assert_eq!(
            alu::compare(a, b, true, scheme).result,
            u32::from((a as i32) < (b as i32))
        );
        assert_eq!(alu::compare(a, b, false, scheme).result, u32::from(a < b));
    }
}

#[test]
fn shift_matches_architecture() {
    let mut g = Gen::new(5);
    for _ in 0..CASES {
        let (v, scheme) = (g.value(), g.scheme());
        let amount = (g.next() % 32) as u32;
        assert_eq!(
            alu::shift(ShiftOp::Left, v, amount, scheme).result,
            v << amount
        );
        assert_eq!(
            alu::shift(ShiftOp::RightLogical, v, amount, scheme).result,
            v >> amount
        );
        assert_eq!(
            alu::shift(ShiftOp::RightArithmetic, v, amount, scheme).result,
            ((v as i32) >> amount) as u32
        );
    }
}

#[test]
fn skipped_add_bytes_are_sign_extensions() {
    let mut g = Gen::new(6);
    for _ in 0..CASES {
        let (a, b) = (g.value(), g.value());
        let outcome = alu::add(a, b, ExtScheme::ThreeBit);
        let result_bytes = outcome.result.to_le_bytes();
        let a_mask = sig_mask(a, ExtScheme::ThreeBit);
        let b_mask = sig_mask(b, ExtScheme::ThreeBit);
        // Positions not charged as operated must be recoverable purely from
        // the byte below (i.e. they are sign extensions) — the safety
        // property behind the case-3 rule of §2.5 / Table 4.
        for i in 1..4usize {
            let charged =
                a_mask[i] || b_mask[i] || result_bytes[i] != sign_extension_of(result_bytes[i - 1]);
            if !charged {
                assert_eq!(result_bytes[i], sign_extension_of(result_bytes[i - 1]));
            }
        }
        assert!(outcome.bytes_operated >= 1 && outcome.bytes_operated <= 4);
    }
}

#[test]
fn case3_predicate_is_exact() {
    // Small enough to enumerate exhaustively (all byte pairs × carry).
    for a in 0..=255u8 {
        for b in 0..=255u8 {
            for carry in [false, true] {
                let sum = u16::from(a) + u16::from(b) + u16::from(carry);
                let low = (sum & 0xff) as u8;
                let carry_out = sum > 0xff;
                let next = (u16::from(sign_extension_of(a))
                    + u16::from(sign_extension_of(b))
                    + u16::from(carry_out)) as u8;
                let expected = next != sign_extension_of(low);
                assert_eq!(
                    alu::case3_requires_generation(a, b, carry),
                    expected,
                    "a={a:#04x} b={b:#04x} carry={carry}"
                );
            }
        }
    }
}

#[test]
fn icache_permutation_roundtrips() {
    let mut g = Gen::new(7);
    for case in 0..CASES {
        let op = Op::ALL[g.below(Op::ALL.len() as u64) as usize];
        let rd = Reg::new((g.next() % 32) as u8);
        let rs = Reg::new((g.next() % 32) as u8);
        let rt = Reg::new((g.next() % 32) as u8);
        let shamt = (g.next() % 32) as u8;
        let imm = g.next() as u16;
        let target = (g.next() as u32) & ((1 << 26) - 1);
        let instr = match op.format() {
            Format::R => match op {
                Op::Sll | Op::Srl | Op::Sra => Instruction::shift_imm(op, rd, rt, shamt),
                _ => Instruction::r3(op, rd, rs, rt),
            },
            Format::I => Instruction::imm(op, rt, rs, imm),
            Format::J => Instruction::jump(op, target),
        };
        // Build a recoder from a pseudo-random profile.
        let hot_seed = (case as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut counts = std::collections::HashMap::new();
        for f in 0u8..64 {
            counts.insert(f, hot_seed.rotate_left(u32::from(f)) & 0xffff);
        }
        let recoder = FunctRecoder::from_counts(&counts);
        let compressed = compress_instruction(&instr, &recoder);
        assert_eq!(
            decompress_instruction(compressed.stored_word, &recoder),
            instr.encode()
        );
        assert!(compressed.fetch_bytes == 3 || compressed.fetch_bytes == 4);
        assert_eq!(compressed.fetch_bytes == 4, compressed.needs_fourth_byte);
    }
}

#[test]
fn per_value_activity_is_bounded() {
    let mut g = Gen::new(8);
    for value in EDGE_VALUES
        .iter()
        .copied()
        .chain((0..CASES).map(|_| g.u32()))
        .collect::<Vec<_>>()
    {
        for &scheme in ExtScheme::ALL {
            let bytes = significant_bytes(value, scheme);
            let bits = u32::from(bytes) * 8 + scheme.overhead_bits();
            assert!(bits <= 32 + scheme.overhead_bits());
            assert!(u32::from(bytes) >= scheme.granule_bytes());
        }
    }
}
