//! # sigcomp — significance-compressed pipelines
//!
//! A reproduction of *"Very Low Power Pipelines using Significance
//! Compression"* (Ramon Canal, Antonio González, James E. Smith — MICRO-33,
//! 2000).
//!
//! Data, addresses and instructions carry two or three *extension bits*
//! recording which bytes are numerically significant; the extension bits flow
//! down a five-stage in-order pipeline and gate off register-file banks, ALU
//! byte slices, cache data-array bytes, PC-increment logic and pipeline
//! latches. The result is a 30–40 % reduction in switching activity — and
//! hence dynamic energy — in every pipeline stage.
//!
//! This crate contains the paper's core contribution as a library:
//!
//! * [`ext`] — extension-bit schemes (2-bit, 3-bit, halfword), significance
//!   classification and lossless [`ext::CompressedWord`] compression,
//! * [`alu`] — the significance-aware byte-serial ALU of §2.5, including the
//!   Table 4 case-3 exception rule,
//! * [`ifetch`] — the I-cache instruction permutation/recoding of §2.3,
//! * [`pc`] — block-serial PC-update activity and latency (Table 2),
//! * [`regfile`] / [`dcache`] — byte-banked register-file and data-cache
//!   activity (§2.4, §2.6, §2.7),
//! * [`cost`] — the per-instruction significance cost vector used by both the
//!   activity study and the pipeline timing models,
//! * [`activity`] — activity/energy accounting shared by all stages,
//! * [`stats`] — trace statistics (Tables 1 and 3),
//! * [`analyzer`] — the trace-driven activity study of §2.9 (Tables 5 and 6).
//!
//! Pipeline *timing* (CPI of the byte-serial, semi-parallel and fully
//! parallel organizations — §4–§6) lives in the companion crate
//! `sigcomp-pipeline`; ready-made workloads live in `sigcomp-workloads`.
//!
//! # Quick start
//!
//! ```
//! use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
//! use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
//!
//! # fn main() -> Result<(), sigcomp_isa::IsaError> {
//! // Build a tiny kernel, run it, and measure per-stage activity savings.
//! let mut b = ProgramBuilder::new();
//! b.li(reg::T0, 0);
//! b.li(reg::T1, 100);
//! b.label("loop");
//! b.addiu(reg::T0, reg::T0, 1);
//! b.bne(reg::T0, reg::T1, "loop");
//! b.halt();
//!
//! let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
//! let mut cpu = Interpreter::new(&b.assemble()?);
//! cpu.run_each(10_000, |rec| analyzer.observe(rec))?;
//!
//! let report = analyzer.report();
//! println!("{report}");
//! assert!(report.rf_read.saving() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod alu;
pub mod analyzer;
pub mod cost;
pub mod dcache;
pub mod ext;
pub mod hash;
pub mod ifetch;
pub mod pc;
pub mod regfile;
pub mod stats;

pub use activity::{ActivityReport, EnergyModel, ProcessNode, StageActivity};
pub use analyzer::{AnalyzerConfig, TraceAnalyzer};
pub use cost::{instr_cost, InstrCost, MemCost};
pub use ext::{CompressedWord, ExtScheme, SigPattern};
pub use hash::{ConfigHash, StableHasher};
pub use ifetch::FunctRecoder;
pub use stats::SigStats;
