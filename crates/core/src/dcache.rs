//! Data-cache activity under significance compression (§2.6 of the paper).
//!
//! The data array of the cache stores extension bits with every word and
//! only the significant bytes are read, written or filled; the tag array is
//! unaffected (hence the near-zero tag saving in Table 5). Extension bits are
//! regenerated whenever a line is filled from the next level.

use crate::ext::{significant_bytes, ExtScheme};
use sigcomp_mem::CacheConfig;

/// Accumulates data-cache data-array and tag-array activity.
#[derive(Debug, Clone)]
pub struct DCacheActivity {
    scheme: ExtScheme,
    tag_bits_per_access: u64,
    accesses: u64,
    compressed_data_bits: u64,
    baseline_data_bits: u64,
    fill_words: u64,
}

impl DCacheActivity {
    /// Creates an accumulator for a cache with the given geometry.
    #[must_use]
    pub fn new(scheme: ExtScheme, config: &CacheConfig) -> Self {
        DCacheActivity {
            scheme,
            tag_bits_per_access: u64::from(config.tag_bits()) + 1, // tag + valid bit
            accesses: 0,
            compressed_data_bits: 0,
            baseline_data_bits: 0,
            fill_words: 0,
        }
    }

    /// Records a load or store of `value` with the given access width in
    /// bytes (1, 2 or 4).
    pub fn access(&mut self, value: u32, width_bytes: u8) {
        self.accesses += 1;
        let sig = significant_bytes(value, self.scheme).min(width_bytes);
        // Sub-word accesses never touch more than their width, but at least
        // one granule is always accessed.
        let granule = self.scheme.granule_bytes() as u8;
        let accessed = sig.max(granule).min(width_bytes.max(granule));
        self.compressed_data_bits +=
            u64::from(accessed) * 8 + u64::from(self.scheme.overhead_bits());
        self.baseline_data_bits += u64::from(width_bytes) * 8;
    }

    /// Records the fill of one word of a cache line (extension bits are
    /// generated at fill time).
    pub fn fill_word(&mut self, value: u32) {
        self.fill_line(value, 1);
    }

    /// Records a whole line fill of `words` identical words in one batch
    /// (the analyzer's stand-in fill, where the accessed word's value
    /// represents its line neighbours).
    pub fn fill_line(&mut self, value: u32, words: u64) {
        self.fill_words += words;
        let sig = significant_bytes(value, self.scheme);
        self.compressed_data_bits +=
            words * (u64::from(sig) * 8 + u64::from(self.scheme.overhead_bits()));
        self.baseline_data_bits += words * 32;
    }

    /// Number of load/store accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of line-fill words observed.
    #[must_use]
    pub fn fill_words(&self) -> u64 {
        self.fill_words
    }

    /// Data-array bits touched under compression.
    #[must_use]
    pub fn data_compressed_bits(&self) -> u64 {
        self.compressed_data_bits
    }

    /// Data-array bits touched by the conventional cache.
    #[must_use]
    pub fn data_baseline_bits(&self) -> u64 {
        self.baseline_data_bits
    }

    /// Tag-array bits touched (identical with and without compression).
    #[must_use]
    pub fn tag_bits(&self) -> u64 {
        self.accesses * self.tag_bits_per_access
    }

    /// Fractional data-array saving.
    #[must_use]
    pub fn data_saving(&self) -> f64 {
        if self.baseline_data_bits == 0 {
            0.0
        } else {
            1.0 - self.compressed_data_bits as f64 / self.baseline_data_bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc() -> DCacheActivity {
        DCacheActivity::new(ExtScheme::ThreeBit, &CacheConfig::paper_l1())
    }

    #[test]
    fn narrow_word_accesses_save_bytes() {
        let mut d = dc();
        d.access(7, 4);
        assert_eq!(d.data_compressed_bits(), 8 + 3);
        assert_eq!(d.data_baseline_bits(), 32);
        assert!(d.data_saving() > 0.6);
    }

    #[test]
    fn byte_accesses_cannot_save_data_bytes() {
        let mut d = dc();
        d.access(0x7f, 1);
        // One byte accessed either way; compression only adds the ext bits.
        assert_eq!(d.data_compressed_bits(), 8 + 3);
        assert_eq!(d.data_baseline_bits(), 8);
        assert!(d.data_saving() < 0.0);
    }

    #[test]
    fn wide_values_do_not_save() {
        let mut d = dc();
        d.access(0xdead_beef, 4);
        assert_eq!(d.data_compressed_bits(), 32 + 3);
        assert!(d.data_saving() < 0.0);
    }

    #[test]
    fn fills_regenerate_extension_bits_per_word() {
        let mut d = dc();
        for &w in &[0u32, 1, 0xffff_ffff, 0x1234_5678] {
            d.fill_word(w);
        }
        assert_eq!(d.fill_words(), 4);
        // 1 + 1 + 1 + 4 significant bytes = 7 bytes + 4×3 ext bits.
        assert_eq!(d.data_compressed_bits(), 7 * 8 + 12);
        assert_eq!(d.data_baseline_bits(), 4 * 32);
        assert!(d.data_saving() > 0.4);
    }

    #[test]
    fn tag_activity_is_unchanged_by_compression() {
        let mut d = dc();
        d.access(7, 4);
        d.access(0xdead_beef, 4);
        // 8 KB direct-mapped, 32-byte lines → 19 tag bits + valid.
        assert_eq!(d.tag_bits(), 2 * 20);
    }

    #[test]
    fn halfword_scheme_granularity() {
        let mut d = DCacheActivity::new(ExtScheme::Halfword, &CacheConfig::paper_l1());
        d.access(7, 4);
        assert_eq!(d.data_compressed_bits(), 16 + 1);
        d.access(0x0001_0000, 4);
        assert_eq!(d.data_compressed_bits(), 16 + 1 + 32 + 1);
    }

    #[test]
    fn empty_accumulator() {
        let d = dc();
        assert_eq!(d.data_saving(), 0.0);
        assert_eq!(d.tag_bits(), 0);
        assert_eq!(d.accesses(), 0);
    }
}
