//! Trace-level significance statistics (Tables 1 and 3 and the §2.3
//! instruction-mix numbers of the paper).

use crate::ext::SigPattern;
use sigcomp_isa::{ExecRecord, Format, Op, OpClass};
use std::collections::HashMap;

/// One row of the significant-byte-pattern histogram (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRow {
    /// The pattern (paper notation, e.g. `eees`).
    pub pattern: SigPattern,
    /// Fraction of observed operand values with this pattern, in percent.
    pub percent: f64,
    /// Cumulative percentage including this row.
    pub cumulative: f64,
}

/// One row of the function-code frequency table (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctRow {
    /// The R-format operation.
    pub op: Op,
    /// Fraction of R-format instructions that use this function code, in
    /// percent.
    pub percent: f64,
    /// Cumulative percentage including this row.
    pub cumulative: f64,
}

/// Aggregated significance statistics over a dynamic trace.
///
/// Feed every retired instruction to [`SigStats::observe`]; the accessors
/// then reproduce the paper's characterization tables:
///
/// * [`SigStats::pattern_table`] — Table 1 (byte-pattern frequencies of
///   operand values),
/// * [`SigStats::funct_table`] — Table 3 (dynamic function-code frequencies),
/// * [`SigStats::format_fractions`], [`SigStats::immediate_8bit_fraction`] —
///   the instruction-mix numbers quoted in §2.3.
#[derive(Debug, Clone)]
pub struct SigStats {
    /// Histogram over the 8 three-bit patterns, indexed by [`SigPattern::index`].
    pattern_counts: [u64; 8],
    values_observed: u64,
    /// Dynamic R-format counts, indexed by `Op as usize` (non-R slots stay 0).
    funct_counts: [u64; Op::ALL.len()],
    r_format: u64,
    i_format: u64,
    j_format: u64,
    instructions: u64,
    with_immediate: u64,
    immediate_fits_8bit: u64,
    mem_instructions: u64,
    addition_instructions: u64,
    branch_instructions: u64,
    taken_branches: u64,
}

impl Default for SigStats {
    fn default() -> Self {
        SigStats {
            pattern_counts: [0; 8],
            values_observed: 0,
            funct_counts: [0; Op::ALL.len()],
            r_format: 0,
            i_format: 0,
            j_format: 0,
            instructions: 0,
            with_immediate: 0,
            immediate_fits_8bit: 0,
            mem_instructions: 0,
            addition_instructions: 0,
            branch_instructions: 0,
            taken_branches: 0,
        }
    }
}

impl SigStats {
    /// Creates an empty statistics collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one retired instruction.
    pub fn observe(&mut self, rec: &ExecRecord) {
        self.instructions += 1;
        let op = rec.instr.op;

        match op.format() {
            Format::R => {
                self.r_format += 1;
                self.funct_counts[op as usize] += 1;
            }
            Format::I => self.i_format += 1,
            Format::J => self.j_format += 1,
        }

        if op.format() == Format::I {
            self.with_immediate += 1;
            let imm = rec.instr.imm_se();
            let fits = if op.zero_extends_imm() {
                rec.instr.imm_ze() <= 0xff
            } else {
                (-128..=127).contains(&imm)
            };
            if fits {
                self.immediate_fits_8bit += 1;
            }
        }

        if op.is_load() || op.is_store() {
            self.mem_instructions += 1;
        }
        if matches!(op.class(), OpClass::Alu) || op.is_load() || op.is_store() || op.is_branch() {
            // The operations that require an addition (§2.5: "additions/
            // subtractions, memory instructions, and branches").
            self.addition_instructions += 1;
        }
        if op.is_branch() {
            self.branch_instructions += 1;
            if rec.is_taken_branch() {
                self.taken_branches += 1;
            }
        }

        for value in rec.source_values() {
            self.observe_value(value);
        }
    }

    /// Observes a single operand value (used directly by synthetic traces).
    pub fn observe_value(&mut self, value: u32) {
        self.pattern_counts[SigPattern::of(value).index()] += 1;
        self.values_observed += 1;
    }

    /// Total retired instructions observed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total operand values observed.
    #[must_use]
    pub fn values_observed(&self) -> u64 {
        self.values_observed
    }

    /// Table 1: pattern frequencies sorted by decreasing frequency.
    #[must_use]
    pub fn pattern_table(&self) -> Vec<PatternRow> {
        let total: u64 = self.pattern_counts.iter().sum();
        let mut rows: Vec<(SigPattern, u64)> = SigPattern::all()
            .map(|p| (p, self.pattern_counts[p.index()]))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        let mut cumulative = 0.0;
        rows.into_iter()
            .map(|(pattern, count)| {
                let percent = if total == 0 {
                    0.0
                } else {
                    100.0 * count as f64 / total as f64
                };
                cumulative += percent;
                PatternRow {
                    pattern,
                    percent,
                    cumulative,
                }
            })
            .collect()
    }

    /// The fraction (in percent) of operand values covered by the four
    /// patterns expressible with the two-bit scheme. The paper reports ≈ 94 %.
    #[must_use]
    pub fn prefix_pattern_coverage(&self) -> f64 {
        let total: u64 = self.pattern_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = SigPattern::all()
            .filter(|p| p.is_prefix_pattern())
            .map(|p| self.pattern_counts[p.index()])
            .sum();
        100.0 * covered as f64 / total as f64
    }

    /// Average number of significant bytes per observed operand value.
    #[must_use]
    pub fn mean_significant_bytes(&self) -> f64 {
        let total: u64 = self.pattern_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = SigPattern::all()
            .map(|p| u64::from(p.significant_bytes()) * self.pattern_counts[p.index()])
            .sum();
        weighted as f64 / total as f64
    }

    /// Table 3: dynamic function-code frequencies among R-format
    /// instructions, sorted by decreasing frequency.
    #[must_use]
    pub fn funct_table(&self) -> Vec<FunctRow> {
        let total: u64 = self.funct_counts.iter().sum();
        let mut rows: Vec<(Op, u64)> = Op::ALL
            .iter()
            .map(|&op| (op, self.funct_counts[op as usize]))
            .filter(|&(_, count)| count > 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.mnemonic().cmp(b.0.mnemonic())));
        let mut cumulative = 0.0;
        rows.into_iter()
            .map(|(op, count)| {
                let percent = if total == 0 {
                    0.0
                } else {
                    100.0 * count as f64 / total as f64
                };
                cumulative += percent;
                FunctRow {
                    op,
                    percent,
                    cumulative,
                }
            })
            .collect()
    }

    /// The raw per-operation dynamic counts of R-format instructions, used to
    /// build a [`FunctRecoder`](crate::ifetch::FunctRecoder) profile.
    #[must_use]
    pub fn funct_counts(&self) -> HashMap<Op, u64> {
        Op::ALL
            .iter()
            .map(|&op| (op, self.funct_counts[op as usize]))
            .filter(|&(_, count)| count > 0)
            .collect()
    }

    /// Fractions (in percent) of R-, I- and J-format instructions. The paper
    /// quotes roughly 41 % / 57 % / 2 % for the Mediabench suite.
    #[must_use]
    pub fn format_fractions(&self) -> (f64, f64, f64) {
        if self.instructions == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = self.instructions as f64;
        (
            100.0 * self.r_format as f64 / t,
            100.0 * self.i_format as f64 / t,
            100.0 * self.j_format as f64 / t,
        )
    }

    /// Fraction (in percent) of instructions that carry an immediate. The
    /// paper reports 59.1 %.
    #[must_use]
    pub fn immediate_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        100.0 * self.with_immediate as f64 / self.instructions as f64
    }

    /// Fraction (in percent) of immediates that fit in 8 bits. The paper
    /// reports ≈ 80 %.
    #[must_use]
    pub fn immediate_8bit_fraction(&self) -> f64 {
        if self.with_immediate == 0 {
            return 0.0;
        }
        100.0 * self.immediate_fits_8bit as f64 / self.with_immediate as f64
    }

    /// Fraction (in percent) of instructions that access memory. The paper's
    /// bandwidth analysis in §5 uses "around one third".
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        100.0 * self.mem_instructions as f64 / self.instructions as f64
    }

    /// Fraction (in percent) of instructions that require an addition
    /// (arithmetic, memory and branch instructions). The paper reports 70.7 %.
    #[must_use]
    pub fn addition_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        100.0 * self.addition_instructions as f64 / self.instructions as f64
    }

    /// Fraction (in percent) of instructions that are conditional branches,
    /// and the taken rate among them.
    #[must_use]
    pub fn branch_fractions(&self) -> (f64, f64) {
        if self.instructions == 0 {
            return (0.0, 0.0);
        }
        let branch_pct = 100.0 * self.branch_instructions as f64 / self.instructions as f64;
        let taken_pct = if self.branch_instructions == 0 {
            0.0
        } else {
            100.0 * self.taken_branches as f64 / self.branch_instructions as f64
        };
        (branch_pct, taken_pct)
    }

    /// Merges another collector into this one (used to aggregate benchmarks).
    pub fn merge(&mut self, other: &SigStats) {
        for i in 0..8 {
            self.pattern_counts[i] += other.pattern_counts[i];
        }
        self.values_observed += other.values_observed;
        for (mine, theirs) in self.funct_counts.iter_mut().zip(&other.funct_counts) {
            *mine += theirs;
        }
        self.r_format += other.r_format;
        self.i_format += other.i_format;
        self.j_format += other.j_format;
        self.instructions += other.instructions;
        self.with_immediate += other.with_immediate;
        self.immediate_fits_8bit += other.immediate_fits_8bit;
        self.mem_instructions += other.mem_instructions;
        self.addition_instructions += other.addition_instructions;
        self.branch_instructions += other.branch_instructions;
        self.taken_branches += other.taken_branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::{reg, Instruction};

    fn rec(instr: Instruction, rs: Option<u32>, rt: Option<u32>, taken: bool) -> ExecRecord {
        ExecRecord {
            seq: 0,
            pc: 0x0040_0000,
            word: instr.encode(),
            instr,
            rs_value: rs,
            rt_value: rt,
            writeback: None,
            mem: None,
            branch: instr.op.is_control().then_some(sigcomp_isa::BranchOutcome {
                taken,
                target: 0x0040_0100,
            }),
        }
    }

    #[test]
    fn pattern_table_orders_by_frequency_and_accumulates() {
        let mut s = SigStats::new();
        for _ in 0..60 {
            s.observe_value(3); // eees
        }
        for _ in 0..30 {
            s.observe_value(0x1234); // eess
        }
        for _ in 0..10 {
            s.observe_value(0xdead_beef); // ssss
        }
        let table = s.pattern_table();
        assert_eq!(table[0].pattern.notation(), "eees");
        assert!((table[0].percent - 60.0).abs() < 1e-9);
        assert!((table[1].percent - 30.0).abs() < 1e-9);
        assert!((table.last().unwrap().cumulative - 100.0).abs() < 1e-9);
        assert_eq!(table.len(), 8);
        assert!((s.prefix_pattern_coverage() - 100.0).abs() < 1e-9);
        assert!((s.mean_significant_bytes() - (0.6 + 0.3 * 2.0 + 0.1 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn funct_table_counts_r_format_only() {
        let mut s = SigStats::new();
        let addu = Instruction::r3(Op::Addu, reg::T0, reg::T1, reg::T2);
        let sll = Instruction::shift_imm(Op::Sll, reg::T0, reg::T1, 2);
        let addiu = Instruction::imm(Op::Addiu, reg::T0, reg::T1, 1);
        for _ in 0..3 {
            s.observe(&rec(addu, Some(1), Some(2), false));
        }
        s.observe(&rec(sll, None, Some(2), false));
        s.observe(&rec(addiu, Some(1), None, false));
        let table = s.funct_table();
        assert_eq!(table[0].op, Op::Addu);
        assert!((table[0].percent - 75.0).abs() < 1e-9);
        assert!((table.last().unwrap().cumulative - 100.0).abs() < 1e-9);
        let (r, i, j) = s.format_fractions();
        assert!((r - 80.0).abs() < 1e-9);
        assert!((i - 20.0).abs() < 1e-9);
        assert_eq!(j, 0.0);
    }

    #[test]
    fn immediate_and_memory_fractions() {
        let mut s = SigStats::new();
        s.observe(&rec(
            Instruction::imm(Op::Addiu, reg::T0, reg::T1, 5),
            Some(1),
            None,
            false,
        ));
        s.observe(&rec(
            Instruction::imm(Op::Addiu, reg::T0, reg::T1, 1000),
            Some(1),
            None,
            false,
        ));
        s.observe(&rec(
            Instruction::imm(Op::Lw, reg::T0, reg::A0, 4),
            Some(0x1000_0000),
            None,
            false,
        ));
        s.observe(&rec(
            Instruction::r3(Op::Addu, reg::T0, reg::T1, reg::T2),
            Some(1),
            Some(2),
            false,
        ));
        assert!((s.immediate_fraction() - 75.0).abs() < 1e-9);
        assert!((s.immediate_8bit_fraction() - 2.0 / 3.0 * 100.0).abs() < 1e-9);
        assert!((s.memory_fraction() - 25.0).abs() < 1e-9);
        assert!((s.addition_fraction() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn branch_fractions_and_taken_rate() {
        let mut s = SigStats::new();
        let beq = Instruction::imm(Op::Beq, reg::T0, reg::T1, 4);
        s.observe(&rec(beq, Some(1), Some(1), true));
        s.observe(&rec(beq, Some(1), Some(2), false));
        s.observe(&rec(
            Instruction::r3(Op::Addu, reg::T0, reg::T1, reg::T2),
            Some(1),
            Some(2),
            false,
        ));
        let (pct, taken) = s.branch_fractions();
        assert!((pct - 2.0 / 3.0 * 100.0).abs() < 1e-9);
        assert!((taken - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_aggregates_everything() {
        let mut a = SigStats::new();
        let mut b = SigStats::new();
        a.observe_value(1);
        b.observe_value(0x10000);
        b.observe(&rec(
            Instruction::r3(Op::Xor, reg::T0, reg::T1, reg::T2),
            Some(1),
            Some(2),
            false,
        ));
        a.merge(&b);
        assert_eq!(a.values_observed(), 4); // 1 + 1 + two operands of the xor
        assert_eq!(a.instructions(), 1);
        assert_eq!(a.funct_counts().get(&Op::Xor), Some(&1));
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = SigStats::new();
        assert_eq!(
            s.pattern_table().iter().map(|r| r.percent).sum::<f64>(),
            0.0
        );
        assert_eq!(s.prefix_pattern_coverage(), 0.0);
        assert_eq!(s.mean_significant_bytes(), 0.0);
        assert_eq!(s.immediate_fraction(), 0.0);
        assert_eq!(s.immediate_8bit_fraction(), 0.0);
        assert_eq!(s.branch_fractions(), (0.0, 0.0));
    }
}
