//! Stable configuration hashing for result caches and sweep job identity.
//!
//! `std::hash` offers no stability guarantee across Rust releases, so the
//! design-space exploration engine uses this self-contained FNV-1a 64-bit
//! hasher instead: a configuration's digest is a pure function of its
//! parameter values and will never change out from under an on-disk result
//! cache. Every configuration type in the workspace implements
//! [`ConfigHash`]; composite configurations fold their parts together in
//! field order.

use crate::analyzer::AnalyzerConfig;
use crate::ext::ExtScheme;
use crate::ifetch::FunctRecoder;
use sigcomp_mem::{CacheConfig, HierarchyConfig, TlbConfig};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable, documented algorithm.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher in the standard FNV-1a initial state.
    #[must_use]
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u8` into the digest.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Folds a `u32` into the digest (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` into the digest (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` into the digest via its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string into the digest, length-prefixed so that adjacent
    /// strings cannot alias each other.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A configuration whose identity can be folded into a [`StableHasher`].
pub trait ConfigHash {
    /// Folds this configuration's parameters into the hasher.
    fn config_hash(&self, hasher: &mut StableHasher);

    /// Convenience: the digest of this configuration alone.
    fn config_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        self.config_hash(&mut h);
        h.finish()
    }
}

impl ConfigHash for ExtScheme {
    fn config_hash(&self, hasher: &mut StableHasher) {
        hasher.write_u8(match self {
            ExtScheme::TwoBit => 0,
            ExtScheme::ThreeBit => 1,
            ExtScheme::Halfword => 2,
        });
    }
}

impl ConfigHash for CacheConfig {
    fn config_hash(&self, hasher: &mut StableHasher) {
        hasher.write_u32(self.size_bytes);
        hasher.write_u32(self.associativity);
        hasher.write_u32(self.line_bytes);
        hasher.write_u32(self.hit_latency);
    }
}

impl ConfigHash for TlbConfig {
    fn config_hash(&self, hasher: &mut StableHasher) {
        hasher.write_u32(self.entries);
        hasher.write_u32(self.associativity);
        hasher.write_u32(self.page_bytes);
        hasher.write_u32(self.hit_latency);
        hasher.write_u32(self.miss_penalty);
    }
}

impl ConfigHash for HierarchyConfig {
    fn config_hash(&self, hasher: &mut StableHasher) {
        self.il1.config_hash(hasher);
        self.dl1.config_hash(hasher);
        self.l2.config_hash(hasher);
        self.itlb.config_hash(hasher);
        self.dtlb.config_hash(hasher);
        hasher.write_u32(self.memory_latency);
    }
}

impl ConfigHash for FunctRecoder {
    fn config_hash(&self, hasher: &mut StableHasher) {
        // The encode table fully determines the recoder.
        for funct in 0..64u8 {
            hasher.write_u8(self.encode(funct));
        }
    }
}

impl ConfigHash for AnalyzerConfig {
    fn config_hash(&self, hasher: &mut StableHasher) {
        self.scheme.config_hash(hasher);
        self.hierarchy.config_hash(hasher);
        hasher.write_u32(self.pc_block_bits);
        self.recoder.config_hash(hasher);
    }
}

impl ConfigHash for crate::activity::EnergyModel {
    fn config_hash(&self, hasher: &mut StableHasher) {
        hasher.write_f64(self.fetch_weight);
        hasher.write_f64(self.regfile_weight);
        hasher.write_f64(self.alu_weight);
        hasher.write_f64(self.dcache_weight);
        hasher.write_f64(self.pc_weight);
        hasher.write_f64(self.latch_weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_match_the_reference_algorithm() {
        // Known FNV-1a 64 digests.
        let mut h = StableHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn digests_are_deterministic_and_distinguish_configs() {
        let paper = HierarchyConfig::paper();
        assert_eq!(paper.config_digest(), paper.config_digest());
        let mut small = paper;
        small.dl1.size_bytes /= 2;
        assert_ne!(paper.config_digest(), small.config_digest());

        assert_ne!(
            ExtScheme::TwoBit.config_digest(),
            ExtScheme::ThreeBit.config_digest()
        );
        assert_ne!(
            AnalyzerConfig::paper_byte().config_digest(),
            AnalyzerConfig::paper_halfword().config_digest()
        );
    }

    #[test]
    fn string_hashing_is_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
