//! Instruction-cache significance compression (§2.3 of the paper).
//!
//! Instructions are stored in the I-cache in a *permuted* form so that the
//! bytes needed early in the pipeline sit in the three most-significant
//! bytes and the fourth byte is frequently all zeros and need not be
//! fetched:
//!
//! * **R-format** (Fig. 2a/2b): the 6-bit function field is re-encoded so the
//!   eight dynamically most frequent function codes place their three
//!   meaningful bits in the `f1` field and zeros in `f2`; the shift amount
//!   moves into the unused `rs` slot for immediate shifts.
//! * **I-format** (Fig. 2c): the immediate is split into low and high bytes;
//!   when eight bits suffice the high byte is redundant.
//!
//! One extension bit per instruction word records whether the fourth byte
//! must be fetched. The paper measures an average of ≈ 3.17 fetched bytes per
//! instruction (≈ 20 % I-cache activity saving) on Mediabench.

use sigcomp_isa::{Format, Instruction, Op};
use std::collections::HashMap;

/// Number of function codes that receive a short (3-bit) re-encoding.
pub const RECODED_FUNCTS: usize = 8;

/// The dynamic-frequency-based re-encoding of the R-format function field.
///
/// The eight most frequent function codes are assigned the re-encodings
/// `0o00, 0o10, 0o20, …` (three meaningful bits in `f1`, zeros in `f2`); all
/// other codes are mapped, in order, to the remaining six-bit values, which
/// have a non-zero `f2` and therefore require the fourth instruction byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctRecoder {
    /// `encode[funct]` = recoded 6-bit value.
    encode: [u8; 64],
    /// `decode[recoded]` = original funct value.
    decode: [u8; 64],
    /// The eight hot function codes, most frequent first.
    hot: Vec<u8>,
}

impl FunctRecoder {
    /// Builds a recoder from dynamic function-code counts (funct → count),
    /// exactly as the paper does by tracing the benchmark suite.
    #[must_use]
    pub fn from_counts(counts: &HashMap<u8, u64>) -> Self {
        let mut order: Vec<u8> = (0..64u8).collect();
        order.sort_by_key(|f| (std::cmp::Reverse(counts.get(f).copied().unwrap_or(0)), *f));
        Self::from_priority_order(&order)
    }

    /// Builds a recoder from per-`Op` dynamic counts (the natural output of
    /// [`SigStats::funct_counts`](crate::stats::SigStats::funct_counts)).
    #[must_use]
    pub fn from_op_counts(counts: &HashMap<Op, u64>) -> Self {
        let mut by_funct: HashMap<u8, u64> = HashMap::new();
        for (&op, &count) in counts {
            if let Some(f) = op.funct() {
                *by_funct.entry(f).or_insert(0) += count;
            }
        }
        Self::from_counts(&by_funct)
    }

    /// A static default profile reflecting the paper's Table 3: `addu` and
    /// `sll` dominate, followed by the other common ALU/compare codes.
    #[must_use]
    pub fn paper_default() -> Self {
        let hot_ops = [
            Op::Addu,
            Op::Sll,
            Op::Subu,
            Op::Or,
            Op::Slt,
            Op::Sra,
            Op::Sltu,
            Op::Xor,
        ];
        let mut counts = HashMap::new();
        for (rank, op) in hot_ops.iter().enumerate() {
            counts.insert(op.funct().expect("R-format op"), 1000 - rank as u64);
        }
        Self::from_counts(&counts)
    }

    fn from_priority_order(order: &[u8]) -> Self {
        assert_eq!(order.len(), 64, "priority order must cover all functs");
        let mut encode = [0u8; 64];
        let mut decode = [0u8; 64];
        let mut short_codes = (0..RECODED_FUNCTS as u8).map(|i| i << 3);
        // The remaining 56 codes are every 6-bit value with a non-zero low
        // (f2) part.
        let mut long_codes = (0..64u8).filter(|c| c & 0x07 != 0);
        for (rank, &funct) in order.iter().enumerate() {
            let code = if rank < RECODED_FUNCTS {
                short_codes.next().expect("eight short codes")
            } else {
                long_codes.next().expect("fifty-six long codes")
            };
            encode[funct as usize] = code;
            decode[code as usize] = funct;
        }
        FunctRecoder {
            encode,
            decode,
            hot: order[..RECODED_FUNCTS].to_vec(),
        }
    }

    /// The recoded 6-bit value for a function code.
    #[must_use]
    pub fn encode(&self, funct: u8) -> u8 {
        self.encode[(funct & 0x3f) as usize]
    }

    /// The original function code for a recoded value.
    #[must_use]
    pub fn decode(&self, recoded: u8) -> u8 {
        self.decode[(recoded & 0x3f) as usize]
    }

    /// Whether a function code received one of the eight short encodings.
    #[must_use]
    pub fn is_hot(&self, funct: u8) -> bool {
        self.encode(funct) & 0x07 == 0
    }

    /// The hot function codes, most frequent first.
    #[must_use]
    pub fn hot_functs(&self) -> &[u8] {
        &self.hot
    }
}

impl Default for FunctRecoder {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How an instruction is stored in the compressed I-cache and how much of it
/// must be fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedInstr {
    /// The permuted 32-bit stored form (fields rearranged per Fig. 2).
    pub stored_word: u32,
    /// Bytes that must be read/latched on fetch (3 or 4).
    pub fetch_bytes: u8,
    /// The per-word extension bit: set when the fourth byte is needed.
    pub needs_fourth_byte: bool,
}

impl CompressedInstr {
    /// Bits fetched under compression, including the extension bit.
    #[must_use]
    pub fn fetched_bits(&self) -> u32 {
        u32::from(self.fetch_bytes) * 8 + 1
    }
}

/// Compresses (permutes) one instruction for storage in the I-cache.
///
/// The permutation is invertible; see [`decompress_instruction`].
#[must_use]
pub fn compress_instruction(instr: &Instruction, recoder: &FunctRecoder) -> CompressedInstr {
    let word = instr.encode();
    let opcode = (word >> 26) & 0x3f;
    match instr.op.format() {
        Format::R => {
            let rs = (word >> 21) & 0x1f;
            let rt = (word >> 16) & 0x1f;
            let rd = (word >> 11) & 0x1f;
            let shamt = (word >> 6) & 0x1f;
            let funct = (word & 0x3f) as u8;
            let recoded = u32::from(recoder.encode(funct));
            let f1 = (recoded >> 3) & 0x7;
            let f2 = recoded & 0x7;
            let is_imm_shift = matches!(instr.op, Op::Sll | Op::Srl | Op::Sra);
            // Fig. 2a (ordinary R) keeps rs in the second field; Fig. 2b
            // (immediate shifts) moves shamt there because rs is unused.
            let (second, last5) = if is_imm_shift {
                (shamt, rs)
            } else {
                (rs, shamt)
            };
            let stored = (opcode << 26)
                | (second << 21)
                | (rt << 16)
                | (rd << 11)
                | (f1 << 8)
                | (f2 << 5)
                | last5;
            // The fourth stored byte holds f2 and the trailing 5-bit field;
            // it can be skipped when both are zero.
            let needs_fourth = stored & 0xff != 0;
            CompressedInstr {
                stored_word: stored,
                fetch_bytes: if needs_fourth { 4 } else { 3 },
                needs_fourth_byte: needs_fourth,
            }
        }
        Format::I => {
            let rs = (word >> 21) & 0x1f;
            let rt = (word >> 16) & 0x1f;
            let imm = word & 0xffff;
            let imm_lo = imm & 0xff;
            let imm_hi = (imm >> 8) & 0xff;
            let stored = (opcode << 26) | (rs << 21) | (rt << 16) | (imm_lo << 8) | imm_hi;
            // The high immediate byte is redundant when it is the zero/sign
            // extension of the low byte (which extension applies is implied
            // by the opcode, so one extension bit suffices).
            let redundant_hi = if instr.op.zero_extends_imm() {
                imm_hi == 0
            } else {
                let sign = if imm_lo & 0x80 != 0 { 0xff } else { 0x00 };
                imm_hi == sign
            };
            CompressedInstr {
                stored_word: stored,
                fetch_bytes: if redundant_hi { 3 } else { 4 },
                needs_fourth_byte: !redundant_hi,
            }
        }
        Format::J => CompressedInstr {
            stored_word: word,
            fetch_bytes: 4,
            needs_fourth_byte: true,
        },
    }
}

/// Reverses [`compress_instruction`], recovering the original instruction
/// word from the stored form. The opcode (always in the top six bits) selects
/// the permutation, exactly as the hardware decompressor would.
#[must_use]
pub fn decompress_instruction(stored: u32, recoder: &FunctRecoder) -> u32 {
    let opcode = (stored >> 26) & 0x3f;
    if opcode == 0 {
        let second = (stored >> 21) & 0x1f;
        let rt = (stored >> 16) & 0x1f;
        let rd = (stored >> 11) & 0x1f;
        let f1 = (stored >> 8) & 0x7;
        let f2 = (stored >> 5) & 0x7;
        let last5 = stored & 0x1f;
        let funct = u32::from(recoder.decode(((f1 << 3) | f2) as u8));
        let is_imm_shift = matches!(funct, 0x00 | 0x02 | 0x03);
        let (rs, shamt) = if is_imm_shift {
            (last5, second)
        } else {
            (second, last5)
        };
        (opcode << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
    } else if opcode == 2 || opcode == 3 {
        stored
    } else {
        let rs = (stored >> 21) & 0x1f;
        let rt = (stored >> 16) & 0x1f;
        let imm_lo = (stored >> 8) & 0xff;
        let imm_hi = stored & 0xff;
        (opcode << 26) | (rs << 21) | (rt << 16) | (imm_hi << 8) | imm_lo
    }
}

/// Accumulates instruction-fetch activity over a dynamic instruction stream.
#[derive(Debug, Clone, Default)]
pub struct FetchActivity {
    instructions: u64,
    fetched_bytes: u64,
}

impl FetchActivity {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one fetched (compressed) instruction.
    pub fn observe(&mut self, compressed: &CompressedInstr) {
        self.instructions += 1;
        self.fetched_bytes += u64::from(compressed.fetch_bytes);
    }

    /// Number of instructions observed.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Average fetched bytes per instruction (the paper reports ≈ 3.17).
    #[must_use]
    pub fn mean_fetch_bytes(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fetched_bytes as f64 / self.instructions as f64
        }
    }

    /// Bits fetched under compression (including one extension bit per
    /// instruction).
    #[must_use]
    pub fn compressed_bits(&self) -> u64 {
        self.fetched_bytes * 8 + self.instructions
    }

    /// Bits fetched by the conventional 32-bit fetch stage.
    #[must_use]
    pub fn baseline_bits(&self) -> u64 {
        self.instructions * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::reg::{A0, T0, T1, T2};

    fn recoder() -> FunctRecoder {
        FunctRecoder::paper_default()
    }

    #[test]
    fn hot_functs_get_three_byte_fetches() {
        let r = recoder();
        let addu = Instruction::r3(Op::Addu, T0, T1, T2);
        let c = compress_instruction(&addu, &r);
        assert_eq!(c.fetch_bytes, 3);
        assert!(!c.needs_fourth_byte);
        assert_eq!(c.fetched_bits(), 25);
    }

    #[test]
    fn cold_functs_need_four_bytes() {
        let r = recoder();
        let nor = Instruction::r3(Op::Nor, T0, T1, T2);
        assert!(!r.is_hot(Op::Nor.funct().unwrap()));
        let c = compress_instruction(&nor, &r);
        assert_eq!(c.fetch_bytes, 4);
    }

    #[test]
    fn immediate_shifts_use_the_second_permutation() {
        let r = recoder();
        let sll = Instruction::shift_imm(Op::Sll, T0, T1, 7);
        let c = compress_instruction(&sll, &r);
        // sll is hot and rs is unused, so three bytes suffice even though the
        // shift amount is non-zero (it now lives in the rs slot).
        assert_eq!(c.fetch_bytes, 3);
        assert_eq!(decompress_instruction(c.stored_word, &r), sll.encode());
    }

    #[test]
    fn small_immediates_take_three_bytes() {
        let r = recoder();
        for (op, imm, expect) in [
            (Op::Addiu, 5u16, 3u8),
            (Op::Addiu, 0xfffc, 3), // -4 sign-extends from 8 bits
            (Op::Addiu, 0x0123, 4),
            (Op::Ori, 0x00ff, 3), // zero-extended
            (Op::Ori, 0x0100, 4),
            (Op::Lw, 0x0008, 3),
            (Op::Lui, 0x1000, 4),
        ] {
            let i = Instruction::imm(op, T0, A0, imm);
            let c = compress_instruction(&i, &r);
            assert_eq!(c.fetch_bytes, expect, "{op} imm {imm:#x}");
        }
    }

    #[test]
    fn jumps_always_fetch_four_bytes() {
        let r = recoder();
        let j = Instruction::jump(Op::J, 0x12345);
        assert_eq!(compress_instruction(&j, &r).fetch_bytes, 4);
    }

    #[test]
    fn permutation_roundtrips_for_every_op() {
        let r = recoder();
        for &op in Op::ALL {
            let i = match op.format() {
                Format::R => match op {
                    Op::Sll | Op::Srl | Op::Sra => Instruction::shift_imm(op, T0, T1, 9),
                    _ => Instruction::r3(op, T0, T1, T2),
                },
                Format::I => Instruction::imm(op, T0, A0, 0x1234),
                Format::J => Instruction::jump(op, 0x3ffff),
            };
            let c = compress_instruction(&i, &r);
            assert_eq!(
                decompress_instruction(c.stored_word, &r),
                i.encode(),
                "{op} failed to round-trip"
            );
        }
    }

    #[test]
    fn recoder_from_counts_prioritizes_frequent_codes() {
        let mut counts = HashMap::new();
        counts.insert(Op::Xor.funct().unwrap(), 10_000u64);
        counts.insert(Op::Addu.funct().unwrap(), 5u64);
        let r = FunctRecoder::from_counts(&counts);
        assert!(r.is_hot(Op::Xor.funct().unwrap()));
        assert_eq!(r.hot_functs()[0], Op::Xor.funct().unwrap());
        // Encoding is a bijection on 6-bit values.
        let mut seen = [false; 64];
        for f in 0..64u8 {
            let e = r.encode(f);
            assert!(!seen[e as usize], "duplicate code {e}");
            seen[e as usize] = true;
            assert_eq!(r.decode(e), f);
        }
    }

    #[test]
    fn from_op_counts_uses_only_r_format_ops() {
        let mut counts = HashMap::new();
        counts.insert(Op::Subu, 100u64);
        counts.insert(Op::Addiu, 1_000_000u64); // I-format: ignored
        let r = FunctRecoder::from_op_counts(&counts);
        assert_eq!(r.hot_functs()[0], Op::Subu.funct().unwrap());
    }

    #[test]
    fn fetch_activity_averages() {
        let r = recoder();
        let mut acc = FetchActivity::new();
        acc.observe(&compress_instruction(
            &Instruction::r3(Op::Addu, T0, T1, T2),
            &r,
        ));
        acc.observe(&compress_instruction(&Instruction::jump(Op::J, 1), &r));
        assert_eq!(acc.instructions(), 2);
        assert!((acc.mean_fetch_bytes() - 3.5).abs() < 1e-12);
        assert_eq!(acc.compressed_bits(), 7 * 8 + 2);
        assert_eq!(acc.baseline_bits(), 64);
        assert_eq!(FetchActivity::new().mean_fetch_bytes(), 0.0);
    }
}
