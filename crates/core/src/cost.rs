//! Per-instruction significance costs.
//!
//! [`instr_cost`] distils one retired instruction into the quantities every
//! downstream model needs: how many bytes must be fetched, read from the
//! register file, pushed through the ALU, accessed in the data cache and
//! written back. The trace-driven activity study ([`crate::analyzer`]) sums
//! these costs into Tables 5/6; the pipeline timing models in
//! `sigcomp-pipeline` turn the same costs into per-stage cycle counts.

use crate::alu::{self, AluOutcome, LogicOp, ShiftOp};
use crate::ext::{significant_bytes, ExtScheme};
use crate::ifetch::{compress_instruction, CompressedInstr, FunctRecoder};
use sigcomp_isa::{ExecRecord, Op};

/// Significance cost of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCost {
    /// Architectural access width in bytes (1, 2 or 4).
    pub width_bytes: u8,
    /// Significant bytes that actually move between the pipeline and the
    /// data cache (≤ width).
    pub sig_bytes: u8,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// The per-instruction significance cost vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCost {
    /// The compressed-I-cache form and how many bytes it fetches.
    pub fetch: CompressedInstr,
    /// Significant bytes of the `rs` operand, if it is read.
    pub rs_bytes: Option<u8>,
    /// Significant bytes of the `rt` operand, if it is read.
    pub rt_bytes: Option<u8>,
    /// Significant bytes of the value written back, if any.
    pub result_bytes: Option<u8>,
    /// ALU outcome (result and byte-slices operated), if the instruction
    /// uses the ALU (arithmetic, logic, shifts, compares, address
    /// generation, branch comparison).
    pub alu: Option<AluOutcome>,
    /// Memory-access cost, if the instruction is a load or store.
    pub mem: Option<MemCost>,
    /// Whether the instruction is a conditional branch.
    pub is_branch: bool,
    /// Whether the instruction is an unconditional jump.
    pub is_jump: bool,
    /// Whether a control transfer was taken.
    pub taken: bool,
}

impl InstrCost {
    /// Bytes the register file must deliver for this instruction (sum of the
    /// operand significant bytes).
    #[must_use]
    pub fn regfile_read_bytes(&self) -> u8 {
        self.rs_bytes.unwrap_or(0) + self.rt_bytes.unwrap_or(0)
    }

    /// Number of register operands read.
    #[must_use]
    pub fn regfile_reads(&self) -> u8 {
        u8::from(self.rs_bytes.is_some()) + u8::from(self.rt_bytes.is_some())
    }

    /// The largest per-operand significant byte count (what a skewed
    /// register-read stage must stream out serially).
    #[must_use]
    pub fn max_operand_bytes(&self) -> u8 {
        self.rs_bytes
            .unwrap_or(0)
            .max(self.rt_bytes.unwrap_or(0))
            .max(1)
    }

    /// ALU byte slices that must operate (zero if the ALU is unused).
    #[must_use]
    pub fn alu_bytes(&self) -> u8 {
        self.alu.map_or(0, |a| a.bytes_operated)
    }

    /// Whether the instruction needs the ALU at all.
    #[must_use]
    pub fn uses_alu(&self) -> bool {
        self.alu.is_some()
    }
}

fn alu_outcome(rec: &ExecRecord, scheme: ExtScheme) -> Option<AluOutcome> {
    let op = rec.instr.op;
    let rs = rec.rs_value.unwrap_or(0);
    let rt = rec.rt_value.unwrap_or(0);
    let imm_se = rec.instr.imm_se() as u32;
    let imm_ze = rec.instr.imm_ze();

    let outcome = match op {
        Op::Add | Op::Addu => alu::add(rs, rt, scheme),
        Op::Sub | Op::Subu => alu::sub(rs, rt, scheme),
        Op::Addi | Op::Addiu => alu::add(rs, imm_se, scheme),
        Op::And => alu::logic(LogicOp::And, rs, rt, scheme),
        Op::Or => alu::logic(LogicOp::Or, rs, rt, scheme),
        Op::Xor => alu::logic(LogicOp::Xor, rs, rt, scheme),
        Op::Nor => alu::logic(LogicOp::Nor, rs, rt, scheme),
        Op::Andi => alu::logic(LogicOp::And, rs, imm_ze, scheme),
        Op::Ori => alu::logic(LogicOp::Or, rs, imm_ze, scheme),
        Op::Xori => alu::logic(LogicOp::Xor, rs, imm_ze, scheme),
        Op::Slt => alu::compare(rs, rt, true, scheme),
        Op::Sltu => alu::compare(rs, rt, false, scheme),
        Op::Slti => alu::compare(rs, imm_se, true, scheme),
        Op::Sltiu => alu::compare(rs, imm_se, false, scheme),
        Op::Lui => {
            let result = imm_ze << 16;
            AluOutcome {
                result,
                bytes_operated: significant_bytes(result, scheme).max(1),
                baseline_bytes: 4,
            }
        }
        Op::Sll => alu::shift(ShiftOp::Left, rt, u32::from(rec.instr.shamt), scheme),
        Op::Srl => alu::shift(
            ShiftOp::RightLogical,
            rt,
            u32::from(rec.instr.shamt),
            scheme,
        ),
        Op::Sra => alu::shift(
            ShiftOp::RightArithmetic,
            rt,
            u32::from(rec.instr.shamt),
            scheme,
        ),
        Op::Sllv => alu::shift(ShiftOp::Left, rt, rs, scheme),
        Op::Srlv => alu::shift(ShiftOp::RightLogical, rt, rs, scheme),
        Op::Srav => alu::shift(ShiftOp::RightArithmetic, rt, rs, scheme),
        Op::Mult | Op::Multu | Op::Div | Op::Divu => alu::muldiv(rs, rt, scheme),
        Op::Mfhi | Op::Mflo | Op::Mthi | Op::Mtlo => {
            // HI/LO moves pass one value through the ALU datapath unchanged.
            let moved = rec.result_value().unwrap_or(rs);
            AluOutcome {
                result: moved,
                bytes_operated: significant_bytes(moved, scheme),
                baseline_bytes: 4,
            }
        }
        Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => {
            // Address generation: base + sign-extended offset.
            alu::add(rs, imm_se, scheme)
        }
        Op::Beq | Op::Bne => alu::compare(rs, rt, true, scheme),
        Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => {
            // Sign/zero test against zero: a subtract of zero, i.e. the
            // significant bytes of rs must be examined.
            AluOutcome {
                result: u32::from(rec.is_taken_branch()),
                bytes_operated: significant_bytes(rs, scheme),
                baseline_bytes: 4,
            }
        }
        Op::J | Op::Jal | Op::Jr | Op::Jalr | Op::Break => return None,
    };
    Some(outcome)
}

/// Computes the per-instruction significance cost vector for one retired
/// instruction under the given extension scheme and I-cache recoding.
#[must_use]
pub fn instr_cost(rec: &ExecRecord, scheme: ExtScheme, recoder: &FunctRecoder) -> InstrCost {
    let op = rec.instr.op;
    let fetch = compress_instruction(&rec.instr, recoder);
    let rs_bytes = rec.rs_value.map(|v| significant_bytes(v, scheme));
    let rt_bytes = rec.rt_value.map(|v| significant_bytes(v, scheme));
    let result_bytes = rec.result_value().map(|v| significant_bytes(v, scheme));
    let alu = alu_outcome(rec, scheme);
    let mem = rec.mem.map(|m| MemCost {
        width_bytes: m.width,
        sig_bytes: significant_bytes(m.value, scheme)
            .min(m.width)
            .max(scheme.granule_bytes() as u8)
            .min(m.width.max(scheme.granule_bytes() as u8)),
        is_store: m.is_store,
    });
    InstrCost {
        fetch,
        rs_bytes,
        rt_bytes,
        result_bytes,
        alu,
        mem,
        is_branch: op.is_branch(),
        is_jump: op.is_jump(),
        taken: rec.is_taken_branch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::reg::{A0, RA, T0, T1, T2};
    use sigcomp_isa::{BranchOutcome, Instruction, MemAccess};

    const S: ExtScheme = ExtScheme::ThreeBit;

    fn rec(instr: Instruction) -> ExecRecord {
        ExecRecord {
            seq: 0,
            pc: 0x0040_0000,
            word: instr.encode(),
            instr,
            rs_value: None,
            rt_value: None,
            writeback: None,
            mem: None,
            branch: None,
        }
    }

    fn recoder() -> FunctRecoder {
        FunctRecoder::paper_default()
    }

    #[test]
    fn small_add_costs_one_alu_byte() {
        let mut r = rec(Instruction::r3(Op::Addu, T0, T1, T2));
        r.rs_value = Some(5);
        r.rt_value = Some(9);
        r.writeback = Some((T0, 14));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.fetch.fetch_bytes, 3);
        assert_eq!(c.rs_bytes, Some(1));
        assert_eq!(c.rt_bytes, Some(1));
        assert_eq!(c.result_bytes, Some(1));
        assert_eq!(c.alu_bytes(), 1);
        assert_eq!(c.regfile_read_bytes(), 2);
        assert_eq!(c.regfile_reads(), 2);
        assert_eq!(c.max_operand_bytes(), 1);
        assert!(c.uses_alu());
        assert!(!c.is_branch && !c.is_jump);
    }

    #[test]
    fn load_costs_address_generation_and_memory_bytes() {
        let mut r = rec(Instruction::imm(Op::Lw, T0, A0, 8));
        r.rs_value = Some(0x1000_0000);
        r.writeback = Some((T0, 0x42));
        r.mem = Some(MemAccess {
            addr: 0x1000_0008,
            width: 4,
            is_store: false,
            value: 0x42,
        });
        let c = instr_cost(&r, S, &recoder());
        let alu = c.alu.unwrap();
        assert_eq!(alu.result, 0x1000_0008);
        assert_eq!(alu.bytes_operated, 2); // low byte + the 0x10 byte
        let mem = c.mem.unwrap();
        assert_eq!(mem.width_bytes, 4);
        assert_eq!(mem.sig_bytes, 1);
        assert!(!mem.is_store);
        assert_eq!(c.result_bytes, Some(1));
    }

    #[test]
    fn store_cost_is_flagged_as_store() {
        let mut r = rec(Instruction::imm(Op::Sw, T0, A0, 0));
        r.rs_value = Some(0x1000_0000);
        r.rt_value = Some(0x0102_0304);
        r.mem = Some(MemAccess {
            addr: 0x1000_0000,
            width: 4,
            is_store: true,
            value: 0x0102_0304,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(c.mem.unwrap().is_store);
        assert_eq!(c.mem.unwrap().sig_bytes, 4);
        assert_eq!(c.rt_bytes, Some(4));
    }

    #[test]
    fn byte_load_never_exceeds_its_width() {
        let mut r = rec(Instruction::imm(Op::Lbu, T0, A0, 0));
        r.rs_value = Some(0x1000_0000);
        r.writeback = Some((T0, 0x80));
        r.mem = Some(MemAccess {
            addr: 0x1000_0000,
            width: 1,
            is_store: false,
            value: 0x80,
        });
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.mem.unwrap().sig_bytes, 1);
    }

    #[test]
    fn branch_compare_uses_the_alu() {
        let mut r = rec(Instruction::imm(Op::Bne, T0, T1, 4));
        r.rs_value = Some(100);
        r.rt_value = Some(100_000);
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0040_0100,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(c.is_branch);
        assert!(c.taken);
        assert!(c.uses_alu());
        assert!(c.alu_bytes() >= 3); // must compare up to the 3rd byte
    }

    #[test]
    fn sign_branch_examines_only_significant_bytes() {
        let mut r = rec(Instruction::imm(Op::Bltz, sigcomp_isa::reg::ZERO, T0, 4));
        r.rs_value = Some(0xffff_ffff);
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0040_0100,
        });
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu_bytes(), 1);
    }

    #[test]
    fn jumps_do_not_use_the_alu() {
        let mut r = rec(Instruction::jump(Op::Jal, 0x0010_0000 >> 2));
        r.writeback = Some((RA, 0x0040_0004));
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0010_0000,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(!c.uses_alu());
        assert!(c.is_jump);
        assert_eq!(c.alu_bytes(), 0);
        // The link value (a code address) still costs a register write; the
        // return address 0x0040_0004 has two significant bytes under the
        // three-bit scheme (bytes 0 and 2).
        assert_eq!(c.result_bytes, Some(2));
    }

    #[test]
    fn lui_cost_follows_its_result() {
        let mut r = rec(Instruction::imm(
            Op::Lui,
            T0,
            sigcomp_isa::reg::ZERO,
            0x1000,
        ));
        r.writeback = Some((T0, 0x1000_0000));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu.unwrap().result, 0x1000_0000);
        assert!(c.alu_bytes() >= 1);
    }

    #[test]
    fn shift_by_register_uses_shift_cost() {
        let mut r = rec(Instruction::r3(Op::Sllv, T0, T1, T2));
        r.rs_value = Some(8); // shift amount
        r.rt_value = Some(0x00ff);
        r.writeback = Some((T0, 0xff00));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu.unwrap().result, 0xff00);
    }

    #[test]
    fn muldiv_and_hilo_costs() {
        let mut m = rec(Instruction::r3(Op::Mult, sigcomp_isa::reg::ZERO, T1, T2));
        m.rs_value = Some(300);
        m.rt_value = Some(4);
        let c = instr_cost(&m, S, &recoder());
        assert_eq!(c.alu.unwrap().baseline_bytes, 16);

        let mut mf = rec(Instruction::r3(
            Op::Mflo,
            T0,
            sigcomp_isa::reg::ZERO,
            sigcomp_isa::reg::ZERO,
        ));
        mf.writeback = Some((T0, 1200));
        let c = instr_cost(&mf, S, &recoder());
        assert_eq!(c.alu_bytes(), 2);
    }
}
