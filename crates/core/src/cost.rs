//! Per-instruction significance costs.
//!
//! [`instr_cost`] distils one retired instruction into the quantities every
//! downstream model needs: how many bytes must be fetched, read from the
//! register file, pushed through the ALU, accessed in the data cache and
//! written back. The trace-driven activity study ([`crate::analyzer`]) sums
//! these costs into Tables 5/6; the pipeline timing models in
//! `sigcomp-pipeline` turn the same costs into per-stage cycle counts.

use crate::alu::{self, AluOutcome, LogicOp, ShiftOp};
use crate::ext::{significant_bytes, significant_bytes_x4, ExtScheme};
use crate::ifetch::{compress_instruction, CompressedInstr, FunctRecoder};
use sigcomp_isa::{ExecRecord, Op};

/// Significance cost of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCost {
    /// Architectural access width in bytes (1, 2 or 4).
    pub width_bytes: u8,
    /// Significant bytes that actually move between the pipeline and the
    /// data cache (≤ width).
    pub sig_bytes: u8,
    /// Whether the access is a store.
    pub is_store: bool,
}

/// The per-instruction significance cost vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrCost {
    /// The compressed-I-cache form and how many bytes it fetches.
    pub fetch: CompressedInstr,
    /// Significant bytes of the `rs` operand, if it is read.
    pub rs_bytes: Option<u8>,
    /// Significant bytes of the `rt` operand, if it is read.
    pub rt_bytes: Option<u8>,
    /// Significant bytes of the value written back, if any.
    pub result_bytes: Option<u8>,
    /// ALU outcome (result and byte-slices operated), if the instruction
    /// uses the ALU (arithmetic, logic, shifts, compares, address
    /// generation, branch comparison).
    pub alu: Option<AluOutcome>,
    /// Memory-access cost, if the instruction is a load or store.
    pub mem: Option<MemCost>,
    /// Whether the instruction is a conditional branch.
    pub is_branch: bool,
    /// Whether the instruction is an unconditional jump.
    pub is_jump: bool,
    /// Whether a control transfer was taken.
    pub taken: bool,
}

impl InstrCost {
    /// Bytes the register file must deliver for this instruction (sum of the
    /// operand significant bytes).
    #[must_use]
    pub fn regfile_read_bytes(&self) -> u8 {
        self.rs_bytes.unwrap_or(0) + self.rt_bytes.unwrap_or(0)
    }

    /// Number of register operands read.
    #[must_use]
    pub fn regfile_reads(&self) -> u8 {
        u8::from(self.rs_bytes.is_some()) + u8::from(self.rt_bytes.is_some())
    }

    /// The largest per-operand significant byte count (what a skewed
    /// register-read stage must stream out serially).
    #[must_use]
    pub fn max_operand_bytes(&self) -> u8 {
        self.rs_bytes
            .unwrap_or(0)
            .max(self.rt_bytes.unwrap_or(0))
            .max(1)
    }

    /// ALU byte slices that must operate (zero if the ALU is unused).
    #[must_use]
    pub fn alu_bytes(&self) -> u8 {
        self.alu.map_or(0, |a| a.bytes_operated)
    }

    /// Whether the instruction needs the ALU at all.
    #[must_use]
    pub fn uses_alu(&self) -> bool {
        self.alu.is_some()
    }
}

/// How an operation uses the ALU datapath — the attribute looked up per
/// opcode instead of re-deriving it through a 45-arm match on every record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AluUse {
    /// Add of `rs` and the second-operand selector's value.
    Add(Operand2),
    /// Subtract of the second operand from `rs`.
    Sub(Operand2),
    /// Bitwise logic of `rs` and the second operand.
    Logic(LogicOp, Operand2),
    /// Compare `rs` against the second operand (`signed` selects the flag).
    Compare(Operand2, bool),
    /// `lui`: the ALU produces `imm << 16` directly.
    Lui,
    /// Shift of `rt` by the amount selector's value.
    Shift(ShiftOp, ShiftAmount),
    /// Multiply/divide of `rs` and `rt` into HI/LO.
    MulDiv,
    /// HI/LO moves pass one value through the datapath unchanged.
    HiLoMove,
    /// Sign/zero test of `rs` against zero (REGIMM and z-branches).
    SignTest,
    /// The ALU is idle (jumps, `break`).
    Unused,
}

/// Second-operand selector for [`AluUse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand2 {
    Rt,
    ImmSe,
    ImmZe,
}

/// Shift-amount selector for [`AluUse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftAmount {
    Shamt,
    Rs,
}

const fn alu_use_of(op: Op) -> AluUse {
    use AluUse::{Add, Compare, HiLoMove, Logic, Lui, MulDiv, Shift, SignTest, Sub, Unused};
    match op {
        Op::Add | Op::Addu => Add(Operand2::Rt),
        Op::Sub | Op::Subu => Sub(Operand2::Rt),
        Op::Addi | Op::Addiu => Add(Operand2::ImmSe),
        Op::And => Logic(LogicOp::And, Operand2::Rt),
        Op::Or => Logic(LogicOp::Or, Operand2::Rt),
        Op::Xor => Logic(LogicOp::Xor, Operand2::Rt),
        Op::Nor => Logic(LogicOp::Nor, Operand2::Rt),
        Op::Andi => Logic(LogicOp::And, Operand2::ImmZe),
        Op::Ori => Logic(LogicOp::Or, Operand2::ImmZe),
        Op::Xori => Logic(LogicOp::Xor, Operand2::ImmZe),
        Op::Slt => Compare(Operand2::Rt, true),
        Op::Sltu => Compare(Operand2::Rt, false),
        Op::Slti => Compare(Operand2::ImmSe, true),
        Op::Sltiu => Compare(Operand2::ImmSe, false),
        Op::Lui => Lui,
        Op::Sll => Shift(ShiftOp::Left, ShiftAmount::Shamt),
        Op::Srl => Shift(ShiftOp::RightLogical, ShiftAmount::Shamt),
        Op::Sra => Shift(ShiftOp::RightArithmetic, ShiftAmount::Shamt),
        Op::Sllv => Shift(ShiftOp::Left, ShiftAmount::Rs),
        Op::Srlv => Shift(ShiftOp::RightLogical, ShiftAmount::Rs),
        Op::Srav => Shift(ShiftOp::RightArithmetic, ShiftAmount::Rs),
        Op::Mult | Op::Multu | Op::Div | Op::Divu => MulDiv,
        Op::Mfhi | Op::Mflo | Op::Mthi | Op::Mtlo => HiLoMove,
        // Loads/stores use the adder for address generation.
        Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => {
            Add(Operand2::ImmSe)
        }
        Op::Beq | Op::Bne => Compare(Operand2::Rt, true),
        Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => SignTest,
        Op::J | Op::Jal | Op::Jr | Op::Jalr | Op::Break => Unused,
    }
}

/// Per-opcode ALU attribute table, indexed by `op as usize` (declaration
/// order is the discriminant, pinned by `Op::ALL`).
const ALU_USE: [AluUse; Op::ALL.len()] = {
    let mut table = [AluUse::Unused; Op::ALL.len()];
    let mut i = 0;
    while i < Op::ALL.len() {
        table[i] = alu_use_of(Op::ALL[i]);
        i += 1;
    }
    table
};

fn alu_outcome(rec: &ExecRecord, scheme: ExtScheme) -> Option<AluOutcome> {
    let rs = rec.rs_value.unwrap_or(0);
    let rt = rec.rt_value.unwrap_or(0);
    let operand2 = |sel: Operand2| match sel {
        Operand2::Rt => rt,
        Operand2::ImmSe => rec.instr.imm_se() as u32,
        Operand2::ImmZe => rec.instr.imm_ze(),
    };

    let outcome = match ALU_USE[rec.instr.op as usize] {
        AluUse::Add(sel) => alu::add(rs, operand2(sel), scheme),
        AluUse::Sub(sel) => alu::sub(rs, operand2(sel), scheme),
        AluUse::Logic(op, sel) => alu::logic(op, rs, operand2(sel), scheme),
        AluUse::Compare(sel, signed) => alu::compare(rs, operand2(sel), signed, scheme),
        AluUse::Lui => {
            let result = rec.instr.imm_ze() << 16;
            AluOutcome {
                result,
                bytes_operated: significant_bytes(result, scheme).max(1),
                baseline_bytes: 4,
            }
        }
        AluUse::Shift(op, amount) => {
            let amount = match amount {
                ShiftAmount::Shamt => u32::from(rec.instr.shamt),
                ShiftAmount::Rs => rs,
            };
            alu::shift(op, rt, amount, scheme)
        }
        AluUse::MulDiv => alu::muldiv(rs, rt, scheme),
        AluUse::HiLoMove => {
            // HI/LO moves pass one value through the ALU datapath unchanged.
            let moved = rec.result_value().unwrap_or(rs);
            AluOutcome {
                result: moved,
                bytes_operated: significant_bytes(moved, scheme),
                baseline_bytes: 4,
            }
        }
        AluUse::SignTest => {
            // Sign/zero test against zero: a subtract of zero, i.e. the
            // significant bytes of rs must be examined.
            AluOutcome {
                result: u32::from(rec.is_taken_branch()),
                bytes_operated: significant_bytes(rs, scheme),
                baseline_bytes: 4,
            }
        }
        AluUse::Unused => return None,
    };
    Some(outcome)
}

/// Computes the per-instruction significance cost vector for one retired
/// instruction under the given extension scheme and I-cache recoding.
#[must_use]
pub fn instr_cost(rec: &ExecRecord, scheme: ExtScheme, recoder: &FunctRecoder) -> InstrCost {
    let op = rec.instr.op;
    let fetch = compress_instruction(&rec.instr, recoder);
    let result = rec.result_value();
    // One branchless four-lane batch counts every per-value significance the
    // cost vector needs; the Option structure is re-applied afterwards.
    let [rs_sig, rt_sig, result_sig, mem_sig] = significant_bytes_x4(
        [
            rec.rs_value.unwrap_or(0),
            rec.rt_value.unwrap_or(0),
            result.unwrap_or(0),
            rec.mem.map_or(0, |m| m.value),
        ],
        scheme,
    );
    let rs_bytes = rec.rs_value.map(|_| rs_sig);
    let rt_bytes = rec.rt_value.map(|_| rt_sig);
    let result_bytes = result.map(|_| result_sig);
    let alu = alu_outcome(rec, scheme);
    let mem = rec.mem.map(|m| MemCost {
        width_bytes: m.width,
        sig_bytes: mem_sig
            .min(m.width)
            .max(scheme.granule_bytes() as u8)
            .min(m.width.max(scheme.granule_bytes() as u8)),
        is_store: m.is_store,
    });
    InstrCost {
        fetch,
        rs_bytes,
        rt_bytes,
        result_bytes,
        alu,
        mem,
        is_branch: op.is_branch(),
        is_jump: op.is_jump(),
        taken: rec.is_taken_branch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigcomp_isa::reg::{A0, RA, T0, T1, T2};
    use sigcomp_isa::{BranchOutcome, Instruction, MemAccess};

    const S: ExtScheme = ExtScheme::ThreeBit;

    fn rec(instr: Instruction) -> ExecRecord {
        ExecRecord {
            seq: 0,
            pc: 0x0040_0000,
            word: instr.encode(),
            instr,
            rs_value: None,
            rt_value: None,
            writeback: None,
            mem: None,
            branch: None,
        }
    }

    fn recoder() -> FunctRecoder {
        FunctRecoder::paper_default()
    }

    #[test]
    fn alu_attribute_table_is_indexed_by_declaration_order() {
        for &op in Op::ALL {
            assert_eq!(ALU_USE[op as usize], alu_use_of(op), "{op}");
        }
        assert_eq!(ALU_USE[Op::Addu as usize], AluUse::Add(Operand2::Rt));
        assert_eq!(ALU_USE[Op::Lw as usize], AluUse::Add(Operand2::ImmSe));
        assert_eq!(ALU_USE[Op::Jr as usize], AluUse::Unused);
    }

    #[test]
    fn small_add_costs_one_alu_byte() {
        let mut r = rec(Instruction::r3(Op::Addu, T0, T1, T2));
        r.rs_value = Some(5);
        r.rt_value = Some(9);
        r.writeback = Some((T0, 14));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.fetch.fetch_bytes, 3);
        assert_eq!(c.rs_bytes, Some(1));
        assert_eq!(c.rt_bytes, Some(1));
        assert_eq!(c.result_bytes, Some(1));
        assert_eq!(c.alu_bytes(), 1);
        assert_eq!(c.regfile_read_bytes(), 2);
        assert_eq!(c.regfile_reads(), 2);
        assert_eq!(c.max_operand_bytes(), 1);
        assert!(c.uses_alu());
        assert!(!c.is_branch && !c.is_jump);
    }

    #[test]
    fn load_costs_address_generation_and_memory_bytes() {
        let mut r = rec(Instruction::imm(Op::Lw, T0, A0, 8));
        r.rs_value = Some(0x1000_0000);
        r.writeback = Some((T0, 0x42));
        r.mem = Some(MemAccess {
            addr: 0x1000_0008,
            width: 4,
            is_store: false,
            value: 0x42,
        });
        let c = instr_cost(&r, S, &recoder());
        let alu = c.alu.unwrap();
        assert_eq!(alu.result, 0x1000_0008);
        assert_eq!(alu.bytes_operated, 2); // low byte + the 0x10 byte
        let mem = c.mem.unwrap();
        assert_eq!(mem.width_bytes, 4);
        assert_eq!(mem.sig_bytes, 1);
        assert!(!mem.is_store);
        assert_eq!(c.result_bytes, Some(1));
    }

    #[test]
    fn store_cost_is_flagged_as_store() {
        let mut r = rec(Instruction::imm(Op::Sw, T0, A0, 0));
        r.rs_value = Some(0x1000_0000);
        r.rt_value = Some(0x0102_0304);
        r.mem = Some(MemAccess {
            addr: 0x1000_0000,
            width: 4,
            is_store: true,
            value: 0x0102_0304,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(c.mem.unwrap().is_store);
        assert_eq!(c.mem.unwrap().sig_bytes, 4);
        assert_eq!(c.rt_bytes, Some(4));
    }

    #[test]
    fn byte_load_never_exceeds_its_width() {
        let mut r = rec(Instruction::imm(Op::Lbu, T0, A0, 0));
        r.rs_value = Some(0x1000_0000);
        r.writeback = Some((T0, 0x80));
        r.mem = Some(MemAccess {
            addr: 0x1000_0000,
            width: 1,
            is_store: false,
            value: 0x80,
        });
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.mem.unwrap().sig_bytes, 1);
    }

    #[test]
    fn branch_compare_uses_the_alu() {
        let mut r = rec(Instruction::imm(Op::Bne, T0, T1, 4));
        r.rs_value = Some(100);
        r.rt_value = Some(100_000);
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0040_0100,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(c.is_branch);
        assert!(c.taken);
        assert!(c.uses_alu());
        assert!(c.alu_bytes() >= 3); // must compare up to the 3rd byte
    }

    #[test]
    fn sign_branch_examines_only_significant_bytes() {
        let mut r = rec(Instruction::imm(Op::Bltz, sigcomp_isa::reg::ZERO, T0, 4));
        r.rs_value = Some(0xffff_ffff);
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0040_0100,
        });
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu_bytes(), 1);
    }

    #[test]
    fn jumps_do_not_use_the_alu() {
        let mut r = rec(Instruction::jump(Op::Jal, 0x0010_0000 >> 2));
        r.writeback = Some((RA, 0x0040_0004));
        r.branch = Some(BranchOutcome {
            taken: true,
            target: 0x0010_0000,
        });
        let c = instr_cost(&r, S, &recoder());
        assert!(!c.uses_alu());
        assert!(c.is_jump);
        assert_eq!(c.alu_bytes(), 0);
        // The link value (a code address) still costs a register write; the
        // return address 0x0040_0004 has two significant bytes under the
        // three-bit scheme (bytes 0 and 2).
        assert_eq!(c.result_bytes, Some(2));
    }

    #[test]
    fn lui_cost_follows_its_result() {
        let mut r = rec(Instruction::imm(
            Op::Lui,
            T0,
            sigcomp_isa::reg::ZERO,
            0x1000,
        ));
        r.writeback = Some((T0, 0x1000_0000));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu.unwrap().result, 0x1000_0000);
        assert!(c.alu_bytes() >= 1);
    }

    #[test]
    fn shift_by_register_uses_shift_cost() {
        let mut r = rec(Instruction::r3(Op::Sllv, T0, T1, T2));
        r.rs_value = Some(8); // shift amount
        r.rt_value = Some(0x00ff);
        r.writeback = Some((T0, 0xff00));
        let c = instr_cost(&r, S, &recoder());
        assert_eq!(c.alu.unwrap().result, 0xff00);
    }

    #[test]
    fn muldiv_and_hilo_costs() {
        let mut m = rec(Instruction::r3(Op::Mult, sigcomp_isa::reg::ZERO, T1, T2));
        m.rs_value = Some(300);
        m.rt_value = Some(4);
        let c = instr_cost(&m, S, &recoder());
        assert_eq!(c.alu.unwrap().baseline_bytes, 16);

        let mut mf = rec(Instruction::r3(
            Op::Mflo,
            T0,
            sigcomp_isa::reg::ZERO,
            sigcomp_isa::reg::ZERO,
        ));
        mf.writeback = Some((T0, 1200));
        let c = instr_cost(&mf, S, &recoder());
        assert_eq!(c.alu_bytes(), 2);
    }
}
