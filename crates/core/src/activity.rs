//! Activity accounting shared by all stage models.
//!
//! Activity is measured in bits of switching work (bits read, written,
//! operated on or latched). Every stage model reports a *compressed* count
//! (with significance compression and operand gating) and a *baseline* count
//! (the conventional 32-bit pipeline); the ratio gives the per-stage savings
//! of Tables 5 and 6.

use std::fmt;
use std::ops::AddAssign;

/// A pair of activity counters: with compression and for the 32-bit baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageActivity {
    /// Bits of activity with significance compression.
    pub compressed_bits: u64,
    /// Bits of activity of the conventional 32-bit design.
    pub baseline_bits: u64,
}

impl StageActivity {
    /// Creates a counter pair.
    #[must_use]
    pub fn new(compressed_bits: u64, baseline_bits: u64) -> Self {
        StageActivity {
            compressed_bits,
            baseline_bits,
        }
    }

    /// Adds activity to both counters.
    pub fn add(&mut self, compressed_bits: u64, baseline_bits: u64) {
        self.compressed_bits += compressed_bits;
        self.baseline_bits += baseline_bits;
    }

    /// Fractional activity saving (1 − compressed/baseline); zero if nothing
    /// was recorded. Negative values mean the extension-bit overhead exceeded
    /// the savings (this happens for the tag array).
    #[must_use]
    pub fn saving(&self) -> f64 {
        if self.baseline_bits == 0 {
            0.0
        } else {
            1.0 - self.compressed_bits as f64 / self.baseline_bits as f64
        }
    }

    /// Saving expressed in percent, as the paper's tables report it.
    #[must_use]
    pub fn saving_percent(&self) -> f64 {
        self.saving() * 100.0
    }
}

impl AddAssign for StageActivity {
    fn add_assign(&mut self, rhs: Self) {
        self.compressed_bits += rhs.compressed_bits;
        self.baseline_bits += rhs.baseline_bits;
    }
}

/// Per-stage activity of one benchmark run: the columns of Tables 5 and 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityReport {
    /// Instruction fetch (I-cache data array and fetch latching).
    pub fetch: StageActivity,
    /// Register-file reads.
    pub rf_read: StageActivity,
    /// Register-file writes (write-back stage).
    pub rf_write: StageActivity,
    /// ALU operations (including address generation).
    pub alu: StageActivity,
    /// Data-cache data array (loads, stores and fills).
    pub dcache_data: StageActivity,
    /// Data-cache tag array.
    pub dcache_tag: StageActivity,
    /// PC increment/update.
    pub pc_increment: StageActivity,
    /// Pipeline latches.
    pub latches: StageActivity,
}

impl ActivityReport {
    /// The stages in the column order of Table 5.
    #[must_use]
    pub fn columns(&self) -> [(&'static str, StageActivity); 8] {
        [
            ("Fetch", self.fetch),
            ("RF read", self.rf_read),
            ("RF write", self.rf_write),
            ("ALU", self.alu),
            ("D-cache data", self.dcache_data),
            ("D-cache tag", self.dcache_tag),
            ("PC increment", self.pc_increment),
            ("Latches", self.latches),
        ]
    }

    /// Total activity across all stages.
    #[must_use]
    pub fn total(&self) -> StageActivity {
        let mut t = StageActivity::default();
        for (_, s) in self.columns() {
            t += s;
        }
        t
    }

    /// Aggregates another report into this one (used for suite averages).
    pub fn merge(&mut self, other: &ActivityReport) {
        self.fetch += other.fetch;
        self.rf_read += other.rf_read;
        self.rf_write += other.rf_write;
        self.alu += other.alu;
        self.dcache_data += other.dcache_data;
        self.dcache_tag += other.dcache_tag;
        self.pc_increment += other.pc_increment;
        self.latches += other.latches;
    }
}

impl fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, stage) in self.columns() {
            writeln!(f, "{name:>14}: {:6.1} % saving", stage.saving_percent())?;
        }
        Ok(())
    }
}

/// A relative dynamic-energy model: energy is proportional to switched
/// capacitance, which we approximate as activity bits weighted per structure.
///
/// The weights default to 1.0 (pure activity, as reported in the paper);
/// they can be adjusted to explore how much a costlier structure (e.g. cache
/// arrays with long bit lines) shifts the overall savings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Relative energy per fetched bit.
    pub fetch_weight: f64,
    /// Relative energy per register-file bit.
    pub regfile_weight: f64,
    /// Relative energy per ALU bit.
    pub alu_weight: f64,
    /// Relative energy per data-cache bit.
    pub dcache_weight: f64,
    /// Relative energy per PC-increment bit.
    pub pc_weight: f64,
    /// Relative energy per latched bit.
    pub latch_weight: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            fetch_weight: 1.0,
            regfile_weight: 1.0,
            alu_weight: 1.0,
            dcache_weight: 1.0,
            pc_weight: 1.0,
            latch_weight: 1.0,
        }
    }
}

impl EnergyModel {
    /// Relative dynamic energy of the compressed and baseline pipelines for a
    /// given activity report, in arbitrary units.
    #[must_use]
    pub fn relative_energy(&self, report: &ActivityReport) -> (f64, f64) {
        let weighted = |stage: StageActivity, weight: f64| {
            (
                stage.compressed_bits as f64 * weight,
                stage.baseline_bits as f64 * weight,
            )
        };
        let parts = [
            weighted(report.fetch, self.fetch_weight),
            weighted(report.rf_read, self.regfile_weight),
            weighted(report.rf_write, self.regfile_weight),
            weighted(report.alu, self.alu_weight),
            weighted(report.dcache_data, self.dcache_weight),
            weighted(report.dcache_tag, self.dcache_weight),
            weighted(report.pc_increment, self.pc_weight),
            weighted(report.latches, self.latch_weight),
        ];
        parts
            .iter()
            .fold((0.0, 0.0), |(c, b), (pc, pb)| (c + pc, b + pb))
    }

    /// Overall fractional energy saving for a report.
    #[must_use]
    pub fn saving(&self, report: &ActivityReport) -> f64 {
        let (compressed, baseline) = self.relative_energy(report);
        if baseline == 0.0 {
            0.0
        } else {
            1.0 - compressed / baseline
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_one_minus_ratio() {
        let s = StageActivity::new(60, 100);
        assert!((s.saving() - 0.4).abs() < 1e-12);
        assert!((s.saving_percent() - 40.0).abs() < 1e-12);
        assert_eq!(StageActivity::default().saving(), 0.0);
    }

    #[test]
    fn negative_saving_when_overhead_dominates() {
        let s = StageActivity::new(110, 100);
        assert!(s.saving() < 0.0);
    }

    #[test]
    fn add_and_add_assign_accumulate() {
        let mut s = StageActivity::default();
        s.add(10, 20);
        s += StageActivity::new(5, 10);
        assert_eq!(s, StageActivity::new(15, 30));
    }

    #[test]
    fn report_columns_and_total() {
        let r = ActivityReport {
            fetch: StageActivity::new(10, 20),
            alu: StageActivity::new(30, 40),
            ..ActivityReport::default()
        };
        assert_eq!(r.columns().len(), 8);
        assert_eq!(r.total(), StageActivity::new(40, 60));
        let text = r.to_string();
        assert!(text.contains("Fetch"));
        assert!(text.contains("ALU"));
    }

    #[test]
    fn merge_aggregates_stage_by_stage() {
        let mut a = ActivityReport {
            rf_read: StageActivity::new(1, 2),
            ..ActivityReport::default()
        };
        let b = ActivityReport {
            rf_read: StageActivity::new(3, 4),
            latches: StageActivity::new(5, 6),
            ..ActivityReport::default()
        };
        a.merge(&b);
        assert_eq!(a.rf_read, StageActivity::new(4, 6));
        assert_eq!(a.latches, StageActivity::new(5, 6));
    }

    #[test]
    fn energy_model_defaults_to_pure_activity() {
        let r = ActivityReport {
            fetch: StageActivity::new(50, 100),
            alu: StageActivity::new(25, 100),
            ..ActivityReport::default()
        };
        let m = EnergyModel::default();
        let (c, b) = m.relative_energy(&r);
        assert!((c - 75.0).abs() < 1e-9);
        assert!((b - 200.0).abs() < 1e-9);
        assert!((m.saving(&r) - 0.625).abs() < 1e-9);
        assert_eq!(m.saving(&ActivityReport::default()), 0.0);
    }

    #[test]
    fn energy_weights_shift_the_total() {
        let r = ActivityReport {
            fetch: StageActivity::new(50, 100), // 50 % saving
            alu: StageActivity::new(90, 100),   // 10 % saving
            ..ActivityReport::default()
        };
        let favor_alu = EnergyModel {
            alu_weight: 10.0,
            ..EnergyModel::default()
        };
        assert!(favor_alu.saving(&r) < EnergyModel::default().saving(&r));
    }
}
