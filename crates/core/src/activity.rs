//! Activity accounting shared by all stage models.
//!
//! Activity is measured in bits of switching work (bits read, written,
//! operated on or latched). Every stage model reports a *compressed* count
//! (with significance compression and operand gating) and a *baseline* count
//! (the conventional 32-bit pipeline); the ratio gives the per-stage savings
//! of Tables 5 and 6.
//!
//! Alongside the switching counters, every stage tracks *gated-byte-cycles*:
//! how many byte lanes were powered off for how many cycles because the
//! extension bits marked their contents as mere sign extensions. Switching
//! bits drive the dynamic-energy term of [`EnergyModel`]; gated-byte-cycles
//! drive its static (leakage) term — a lane whose value is reconstructible
//! from the extension bits can be gated off entirely (gated-Vdd style), so
//! it leaks nothing, while the conventional pipeline keeps every lane
//! powered every cycle.

use std::fmt;
use std::ops::AddAssign;

/// A pair of activity counters (with compression and for the 32-bit
/// baseline) plus the gated-lane occupancy the compressed design achieves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageActivity {
    /// Bits of activity with significance compression.
    pub compressed_bits: u64,
    /// Bits of activity of the conventional 32-bit design.
    pub baseline_bits: u64,
    /// Byte-lane-cycles the compressed design powered off (insignificant
    /// lanes behind the extension bits).
    pub gated_byte_cycles: u64,
    /// Byte-lane-cycles the conventional design keeps powered (every lane,
    /// every occupied cycle). Always ≥ `gated_byte_cycles`.
    pub total_byte_cycles: u64,
}

impl StageActivity {
    /// Creates a counter pair with no gated-lane occupancy recorded.
    #[must_use]
    pub fn new(compressed_bits: u64, baseline_bits: u64) -> Self {
        StageActivity {
            compressed_bits,
            baseline_bits,
            gated_byte_cycles: 0,
            total_byte_cycles: 0,
        }
    }

    /// Creates a counter pair with gated-lane occupancy.
    #[must_use]
    pub fn with_gating(
        compressed_bits: u64,
        baseline_bits: u64,
        gated_byte_cycles: u64,
        total_byte_cycles: u64,
    ) -> Self {
        debug_assert!(gated_byte_cycles <= total_byte_cycles);
        StageActivity {
            compressed_bits,
            baseline_bits,
            gated_byte_cycles,
            total_byte_cycles,
        }
    }

    /// Adds activity to both switching counters.
    pub fn add(&mut self, compressed_bits: u64, baseline_bits: u64) {
        self.compressed_bits += compressed_bits;
        self.baseline_bits += baseline_bits;
    }

    /// Adds gated-lane occupancy: `gated` byte-lane-cycles powered off out
    /// of `total` the baseline keeps powered.
    pub fn add_gating(&mut self, gated: u64, total: u64) {
        debug_assert!(gated <= total);
        self.gated_byte_cycles += gated;
        self.total_byte_cycles += total;
    }

    /// Byte-lane-cycles the compressed design still powers.
    #[must_use]
    pub fn powered_byte_cycles(&self) -> u64 {
        self.total_byte_cycles
            .saturating_sub(self.gated_byte_cycles)
    }

    /// Fraction of the baseline lane occupancy that was gated off; zero if
    /// nothing was recorded.
    #[must_use]
    pub fn gated_fraction(&self) -> f64 {
        if self.total_byte_cycles == 0 {
            0.0
        } else {
            self.gated_byte_cycles as f64 / self.total_byte_cycles as f64
        }
    }

    /// Fractional activity saving (1 − compressed/baseline); zero if nothing
    /// was recorded. Negative values mean the extension-bit overhead exceeded
    /// the savings (this happens for the tag array).
    #[must_use]
    pub fn saving(&self) -> f64 {
        if self.baseline_bits == 0 {
            0.0
        } else {
            1.0 - self.compressed_bits as f64 / self.baseline_bits as f64
        }
    }

    /// Saving expressed in percent, as the paper's tables report it.
    #[must_use]
    pub fn saving_percent(&self) -> f64 {
        self.saving() * 100.0
    }
}

impl AddAssign for StageActivity {
    fn add_assign(&mut self, rhs: Self) {
        self.compressed_bits += rhs.compressed_bits;
        self.baseline_bits += rhs.baseline_bits;
        self.gated_byte_cycles += rhs.gated_byte_cycles;
        self.total_byte_cycles += rhs.total_byte_cycles;
    }
}

/// Per-stage activity of one benchmark run: the columns of Tables 5 and 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityReport {
    /// Instruction fetch (I-cache data array and fetch latching).
    pub fetch: StageActivity,
    /// Register-file reads.
    pub rf_read: StageActivity,
    /// Register-file writes (write-back stage).
    pub rf_write: StageActivity,
    /// ALU operations (including address generation).
    pub alu: StageActivity,
    /// Data-cache data array (loads, stores and fills).
    pub dcache_data: StageActivity,
    /// Data-cache tag array.
    pub dcache_tag: StageActivity,
    /// PC increment/update.
    pub pc_increment: StageActivity,
    /// Pipeline latches.
    pub latches: StageActivity,
}

impl ActivityReport {
    /// The stages in the column order of Table 5.
    #[must_use]
    pub fn columns(&self) -> [(&'static str, StageActivity); 8] {
        [
            ("Fetch", self.fetch),
            ("RF read", self.rf_read),
            ("RF write", self.rf_write),
            ("ALU", self.alu),
            ("D-cache data", self.dcache_data),
            ("D-cache tag", self.dcache_tag),
            ("PC increment", self.pc_increment),
            ("Latches", self.latches),
        ]
    }

    /// Total activity across all stages.
    #[must_use]
    pub fn total(&self) -> StageActivity {
        let mut t = StageActivity::default();
        for (_, s) in self.columns() {
            t += s;
        }
        t
    }

    /// Aggregates another report into this one (used for suite averages).
    pub fn merge(&mut self, other: &ActivityReport) {
        self.fetch += other.fetch;
        self.rf_read += other.rf_read;
        self.rf_write += other.rf_write;
        self.alu += other.alu;
        self.dcache_data += other.dcache_data;
        self.dcache_tag += other.dcache_tag;
        self.pc_increment += other.pc_increment;
        self.latches += other.latches;
    }
}

impl fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, stage) in self.columns() {
            writeln!(f, "{name:>14}: {:6.1} % saving", stage.saving_percent())?;
        }
        Ok(())
    }
}

/// A named process-node preset for [`EnergyModel`]: how much static
/// (leakage) power weighs against dynamic switching power.
///
/// The paper's 180 nm-era tables count switching activity only; at modern
/// nodes leakage rivals dynamic power (Butts & Sohi), which is exactly what
/// makes power-gating the insignificant byte lanes (Powell et al.'s
/// gated-Vdd) attractive. The presets are *relative* weightings — one
/// switched bit costs one unit — chosen so the qualitative balance matches
/// those studies, not calibrated to a specific foundry process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessNode {
    /// The paper's era: leakage negligible, dynamic switching only. With
    /// this preset every figure is bit-identical to the activity tables.
    Paper180nm,
    /// A mid-2000s bulk node: leakage is a visible minority share.
    Generic45nm,
    /// A modern node: leakage rivals dynamic power, with the SRAM arrays
    /// (caches) leaking hardest.
    Modern7nm,
}

impl ProcessNode {
    /// Every preset, paper configuration first.
    pub const ALL: &'static [ProcessNode] = &[
        ProcessNode::Paper180nm,
        ProcessNode::Generic45nm,
        ProcessNode::Modern7nm,
    ];

    /// Stable machine-readable identifier, used by CLI flags, HTTP request
    /// fields and sweep reports.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ProcessNode::Paper180nm => "paper-180nm",
            ProcessNode::Generic45nm => "generic-45nm",
            ProcessNode::Modern7nm => "modern-7nm",
        }
    }

    /// Parses an identifier as produced by [`ProcessNode::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        ProcessNode::ALL.iter().copied().find(|n| n.id() == id)
    }

    /// The energy model this preset stands for.
    #[must_use]
    pub fn model(self) -> EnergyModel {
        match self {
            ProcessNode::Paper180nm => EnergyModel::default(),
            // Leakage weights are relative energy per powered byte-lane-cycle
            // (a switched bit costs 1.0). Arrays leak hardest, datapath
            // logic least; 7 nm is roughly 4× the 45 nm share.
            ProcessNode::Generic45nm => EnergyModel {
                fetch_leakage: 0.15,
                regfile_leakage: 0.10,
                alu_leakage: 0.08,
                dcache_leakage: 0.25,
                pc_leakage: 0.05,
                latch_leakage: 0.06,
                ..EnergyModel::default()
            },
            ProcessNode::Modern7nm => EnergyModel {
                fetch_leakage: 0.6,
                regfile_leakage: 0.4,
                alu_leakage: 0.3,
                dcache_leakage: 1.0,
                pc_leakage: 0.2,
                latch_leakage: 0.25,
                ..EnergyModel::default()
            },
        }
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A relative energy model with a dynamic and a static term.
///
/// Dynamic energy is proportional to switched capacitance, approximated as
/// activity bits weighted per structure. Static (leakage) energy is
/// proportional to how many byte lanes stay powered for how long: the
/// conventional pipeline keeps every lane powered every occupied cycle,
/// while the compressed pipeline power-gates the lanes its extension bits
/// mark insignificant ([`StageActivity::gated_byte_cycles`]).
///
/// The dynamic weights default to 1.0 (pure activity, as reported in the
/// paper) and every leakage weight defaults to 0.0, so the default model is
/// exactly the paper's dynamic-only accounting — bit for bit. Use a
/// [`ProcessNode`] preset (or set the weights directly) to weigh leakage in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Relative dynamic energy per fetched bit.
    pub fetch_weight: f64,
    /// Relative dynamic energy per register-file bit.
    pub regfile_weight: f64,
    /// Relative dynamic energy per ALU bit.
    pub alu_weight: f64,
    /// Relative dynamic energy per data-cache bit.
    pub dcache_weight: f64,
    /// Relative dynamic energy per PC-increment bit.
    pub pc_weight: f64,
    /// Relative dynamic energy per latched bit.
    pub latch_weight: f64,
    /// Relative static energy per powered fetch-path byte-lane-cycle.
    pub fetch_leakage: f64,
    /// Relative static energy per powered register-file byte-lane-cycle.
    pub regfile_leakage: f64,
    /// Relative static energy per powered ALU byte-lane-cycle.
    pub alu_leakage: f64,
    /// Relative static energy per powered data-cache byte-lane-cycle.
    pub dcache_leakage: f64,
    /// Relative static energy per powered PC-incrementer byte-lane-cycle.
    pub pc_leakage: f64,
    /// Relative static energy per powered pipeline-latch byte-lane-cycle.
    pub latch_leakage: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            fetch_weight: 1.0,
            regfile_weight: 1.0,
            alu_weight: 1.0,
            dcache_weight: 1.0,
            pc_weight: 1.0,
            latch_weight: 1.0,
            fetch_leakage: 0.0,
            regfile_leakage: 0.0,
            alu_leakage: 0.0,
            dcache_leakage: 0.0,
            pc_leakage: 0.0,
            latch_leakage: 0.0,
        }
    }
}

impl EnergyModel {
    /// The per-structure (stage, dynamic weight, leakage weight) rows of the
    /// model, in column order. Register file and data cache each cover two
    /// report columns.
    fn weighted_stages(&self, report: &ActivityReport) -> [(StageActivity, f64, f64); 8] {
        [
            (report.fetch, self.fetch_weight, self.fetch_leakage),
            (report.rf_read, self.regfile_weight, self.regfile_leakage),
            (report.rf_write, self.regfile_weight, self.regfile_leakage),
            (report.alu, self.alu_weight, self.alu_leakage),
            (report.dcache_data, self.dcache_weight, self.dcache_leakage),
            (report.dcache_tag, self.dcache_weight, self.dcache_leakage),
            (report.pc_increment, self.pc_weight, self.pc_leakage),
            (report.latches, self.latch_weight, self.latch_leakage),
        ]
    }

    /// Whether any structure carries a nonzero leakage weight. With all
    /// leakage weights zero the model is exactly the paper's dynamic-only
    /// accounting and reports omit the leakage columns.
    #[must_use]
    pub fn has_leakage(&self) -> bool {
        [
            self.fetch_leakage,
            self.regfile_leakage,
            self.alu_leakage,
            self.dcache_leakage,
            self.pc_leakage,
            self.latch_leakage,
        ]
        .iter()
        .any(|&w| w != 0.0)
    }

    /// Relative dynamic (switching) energy of the compressed and baseline
    /// pipelines for a given activity report, in arbitrary units.
    #[must_use]
    pub fn dynamic_energy(&self, report: &ActivityReport) -> (f64, f64) {
        self.weighted_stages(report)
            .iter()
            .fold((0.0, 0.0), |(c, b), (stage, weight, _)| {
                (
                    c + stage.compressed_bits as f64 * weight,
                    b + stage.baseline_bits as f64 * weight,
                )
            })
    }

    /// Relative static (leakage) energy of the compressed and baseline
    /// pipelines: lanes the compressed design keeps powered vs every lane
    /// the baseline powers.
    #[must_use]
    pub fn leakage_energy(&self, report: &ActivityReport) -> (f64, f64) {
        self.weighted_stages(report)
            .iter()
            .fold((0.0, 0.0), |(c, b), (stage, _, leak)| {
                (
                    c + stage.powered_byte_cycles() as f64 * leak,
                    b + stage.total_byte_cycles as f64 * leak,
                )
            })
    }

    /// Relative total (dynamic + static) energy of the compressed and
    /// baseline pipelines. With all leakage weights zero this is exactly
    /// [`EnergyModel::dynamic_energy`].
    #[must_use]
    pub fn relative_energy(&self, report: &ActivityReport) -> (f64, f64) {
        let (dc, db) = self.dynamic_energy(report);
        let (lc, lb) = self.leakage_energy(report);
        (dc + lc, db + lb)
    }

    /// Overall fractional total-energy saving for a report.
    #[must_use]
    pub fn saving(&self, report: &ActivityReport) -> f64 {
        let (compressed, baseline) = self.relative_energy(report);
        ratio_saving(compressed, baseline)
    }

    /// Fractional saving of the dynamic term alone (the paper's number —
    /// independent of the leakage weights).
    #[must_use]
    pub fn dynamic_saving(&self, report: &ActivityReport) -> f64 {
        let (compressed, baseline) = self.dynamic_energy(report);
        ratio_saving(compressed, baseline)
    }

    /// Fractional saving of the static term alone; zero when the model
    /// carries no leakage (or no lane occupancy was recorded).
    #[must_use]
    pub fn leakage_saving(&self, report: &ActivityReport) -> f64 {
        let (compressed, baseline) = self.leakage_energy(report);
        ratio_saving(compressed, baseline)
    }
}

fn ratio_saving(compressed: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        1.0 - compressed / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_is_one_minus_ratio() {
        let s = StageActivity::new(60, 100);
        assert!((s.saving() - 0.4).abs() < 1e-12);
        assert!((s.saving_percent() - 40.0).abs() < 1e-12);
        assert_eq!(StageActivity::default().saving(), 0.0);
    }

    #[test]
    fn negative_saving_when_overhead_dominates() {
        let s = StageActivity::new(110, 100);
        assert!(s.saving() < 0.0);
    }

    #[test]
    fn add_and_add_assign_accumulate() {
        let mut s = StageActivity::default();
        s.add(10, 20);
        s += StageActivity::new(5, 10);
        assert_eq!(s, StageActivity::new(15, 30));
    }

    #[test]
    fn gating_accumulates_and_merges() {
        let mut s = StageActivity::new(10, 20);
        s.add_gating(3, 4);
        s += StageActivity::with_gating(0, 0, 1, 4);
        assert_eq!(s.gated_byte_cycles, 4);
        assert_eq!(s.total_byte_cycles, 8);
        assert_eq!(s.powered_byte_cycles(), 4);
        assert!((s.gated_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(StageActivity::default().gated_fraction(), 0.0);

        let mut report = ActivityReport {
            alu: StageActivity::with_gating(5, 10, 2, 8),
            ..ActivityReport::default()
        };
        report.merge(&report.clone());
        assert_eq!(report.alu.gated_byte_cycles, 4);
        assert_eq!(report.total().total_byte_cycles, 16);
    }

    #[test]
    fn report_columns_and_total() {
        let r = ActivityReport {
            fetch: StageActivity::new(10, 20),
            alu: StageActivity::new(30, 40),
            ..ActivityReport::default()
        };
        assert_eq!(r.columns().len(), 8);
        assert_eq!(r.total(), StageActivity::new(40, 60));
        let text = r.to_string();
        assert!(text.contains("Fetch"));
        assert!(text.contains("ALU"));
    }

    #[test]
    fn merge_aggregates_stage_by_stage() {
        let mut a = ActivityReport {
            rf_read: StageActivity::new(1, 2),
            ..ActivityReport::default()
        };
        let b = ActivityReport {
            rf_read: StageActivity::new(3, 4),
            latches: StageActivity::new(5, 6),
            ..ActivityReport::default()
        };
        a.merge(&b);
        assert_eq!(a.rf_read, StageActivity::new(4, 6));
        assert_eq!(a.latches, StageActivity::new(5, 6));
    }

    #[test]
    fn energy_model_defaults_to_pure_activity() {
        let r = ActivityReport {
            fetch: StageActivity::new(50, 100),
            alu: StageActivity::new(25, 100),
            ..ActivityReport::default()
        };
        let m = EnergyModel::default();
        let (c, b) = m.relative_energy(&r);
        assert!((c - 75.0).abs() < 1e-9);
        assert!((b - 200.0).abs() < 1e-9);
        assert!((m.saving(&r) - 0.625).abs() < 1e-9);
        assert_eq!(m.saving(&ActivityReport::default()), 0.0);
        assert!(!m.has_leakage());
    }

    #[test]
    fn energy_weights_shift_the_total() {
        let r = ActivityReport {
            fetch: StageActivity::new(50, 100), // 50 % saving
            alu: StageActivity::new(90, 100),   // 10 % saving
            ..ActivityReport::default()
        };
        let favor_alu = EnergyModel {
            alu_weight: 10.0,
            ..EnergyModel::default()
        };
        assert!(favor_alu.saving(&r) < EnergyModel::default().saving(&r));
    }

    /// A report where compression saves 25 % of the switching bits but gates
    /// 75 % of the byte-lane occupancy (narrow values on a wide datapath).
    fn gated_report() -> ActivityReport {
        ActivityReport {
            alu: StageActivity::with_gating(75, 100, 75, 100),
            ..ActivityReport::default()
        }
    }

    #[test]
    fn zero_leakage_presets_are_bit_identical_to_the_dynamic_model() {
        let r = gated_report();
        let paper = ProcessNode::Paper180nm.model();
        let default = EnergyModel::default();
        assert_eq!(paper, default);
        // Exact equality on purpose: the zero-leakage preset must reproduce
        // the dynamic-only numbers bit for bit.
        assert_eq!(paper.saving(&r), default.dynamic_saving(&r));
        assert_eq!(paper.relative_energy(&r), default.dynamic_energy(&r));
        assert_eq!(paper.leakage_energy(&r), (0.0, 0.0));
        assert_eq!(paper.leakage_saving(&r), 0.0);
    }

    #[test]
    fn leakage_term_rewards_gated_lanes() {
        let r = gated_report();
        let modern = ProcessNode::Modern7nm.model();
        assert!(modern.has_leakage());
        // Dynamic saving is unchanged by the leakage weights …
        assert_eq!(
            modern.dynamic_saving(&r),
            EnergyModel::default().dynamic_saving(&r)
        );
        // … but gating 75 % of the lanes saves 75 % of the leakage, so the
        // total saving exceeds the 25 % dynamic saving.
        assert!((modern.leakage_saving(&r) - 0.75).abs() < 1e-12);
        assert!(modern.saving(&r) > modern.dynamic_saving(&r));

        // With no gating recorded the leakage term punishes the compressed
        // design to exactly the dynamic ratio (powered == total).
        let ungated = ActivityReport {
            alu: StageActivity::with_gating(75, 100, 0, 100),
            ..ActivityReport::default()
        };
        assert_eq!(modern.leakage_saving(&ungated), 0.0);
        assert!(modern.saving(&ungated) < modern.dynamic_saving(&ungated));
    }

    #[test]
    fn process_nodes_parse_and_order_by_leakage() {
        for &node in ProcessNode::ALL {
            assert_eq!(ProcessNode::parse(node.id()), Some(node));
            assert_eq!(node.to_string(), node.id());
        }
        assert_eq!(
            ProcessNode::parse("paper-180nm"),
            Some(ProcessNode::Paper180nm)
        );
        assert_eq!(ProcessNode::parse("3nm"), None);
        let r = gated_report();
        let paper = ProcessNode::Paper180nm.model().saving(&r);
        let mid = ProcessNode::Generic45nm.model().saving(&r);
        let modern = ProcessNode::Modern7nm.model().saving(&r);
        // The heavier the leakage share, the more the gated lanes pay off.
        assert!(paper < mid && mid < modern, "{paper} {mid} {modern}");
    }
}
