//! Byte-banked register-file activity (§2.4 and §2.7 of the paper).
//!
//! The register file is split into byte-wide banks. A read always accesses
//! the low-order bank together with the extension bits; the remaining banks
//! are accessed only when the extension bits say the corresponding bytes are
//! significant. Writes behave symmetrically during write-back. The paper
//! reports average activity savings of ≈ 47 % for reads and ≈ 42 % for
//! writes at byte granularity.

use crate::ext::{significant_bytes, ExtScheme};

/// Width of a conventional register-file access in bits.
pub const BASELINE_ACCESS_BITS: u64 = 32;

/// Accumulates register-file read/write activity under significance
/// compression and for the conventional 32-bit register file.
///
/// ```
/// use sigcomp::regfile::RegFileActivity;
/// use sigcomp::ext::ExtScheme;
///
/// let mut rf = RegFileActivity::new(ExtScheme::ThreeBit);
/// rf.read(0x0000_0004);             // one significant byte
/// rf.write(0xffff_fff0);            // one significant byte
/// assert_eq!(rf.read_compressed_bits(), 8 + 3);
/// assert_eq!(rf.read_baseline_bits(), 32);
/// assert!(rf.read_saving() > 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct RegFileActivity {
    scheme: ExtScheme,
    reads: u64,
    writes: u64,
    read_bytes: u64,
    write_bytes: u64,
}

impl RegFileActivity {
    /// Creates an empty accumulator for the given extension scheme.
    #[must_use]
    pub fn new(scheme: ExtScheme) -> Self {
        RegFileActivity {
            scheme,
            reads: 0,
            writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// The extension scheme in use.
    #[must_use]
    pub fn scheme(&self) -> ExtScheme {
        self.scheme
    }

    /// Records a register read of `value`. Returns the number of bytes (i.e.
    /// banks) that had to be accessed.
    pub fn read(&mut self, value: u32) -> u8 {
        let bytes = significant_bytes(value, self.scheme);
        self.record_read(bytes);
        bytes
    }

    /// Records a read whose significant-byte count the caller already
    /// computed (the batched replay path counts all of a record's values in
    /// one pass and hands the counts down).
    pub fn record_read(&mut self, bytes: u8) {
        self.reads += 1;
        self.read_bytes += u64::from(bytes);
    }

    /// Records a register write of `value`. Returns the number of bytes
    /// written.
    pub fn write(&mut self, value: u32) -> u8 {
        let bytes = significant_bytes(value, self.scheme);
        self.record_write(bytes);
        bytes
    }

    /// Records a write whose significant-byte count the caller already
    /// computed.
    pub fn record_write(&mut self, bytes: u8) {
        self.writes += 1;
        self.write_bytes += u64::from(bytes);
    }

    /// Number of read accesses observed.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write accesses observed.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bits read under compression (data banks plus extension bits).
    #[must_use]
    pub fn read_compressed_bits(&self) -> u64 {
        self.read_bytes * 8 + self.reads * u64::from(self.scheme.overhead_bits())
    }

    /// Bits read by the conventional register file.
    #[must_use]
    pub fn read_baseline_bits(&self) -> u64 {
        self.reads * BASELINE_ACCESS_BITS
    }

    /// Bits written under compression (data banks plus extension bits).
    #[must_use]
    pub fn write_compressed_bits(&self) -> u64 {
        self.write_bytes * 8 + self.writes * u64::from(self.scheme.overhead_bits())
    }

    /// Bits written by the conventional register file.
    #[must_use]
    pub fn write_baseline_bits(&self) -> u64 {
        self.writes * BASELINE_ACCESS_BITS
    }

    /// Fractional read-activity saving (0 when nothing was observed).
    #[must_use]
    pub fn read_saving(&self) -> f64 {
        saving(self.read_compressed_bits(), self.read_baseline_bits())
    }

    /// Fractional write-activity saving (0 when nothing was observed).
    #[must_use]
    pub fn write_saving(&self) -> f64 {
        saving(self.write_compressed_bits(), self.write_baseline_bits())
    }

    /// Average banks accessed per read.
    #[must_use]
    pub fn mean_read_bytes(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_bytes as f64 / self.reads as f64
        }
    }
}

fn saving(compressed: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        1.0 - compressed as f64 / baseline as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_values_touch_one_bank() {
        let mut rf = RegFileActivity::new(ExtScheme::ThreeBit);
        assert_eq!(rf.read(7), 1);
        assert_eq!(rf.read(-1i32 as u32), 1);
        assert_eq!(rf.read(0x1234_5678), 4);
        assert_eq!(rf.reads(), 3);
        assert!((rf.mean_read_bytes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn savings_reflect_the_value_mix() {
        let mut rf = RegFileActivity::new(ExtScheme::ThreeBit);
        for _ in 0..90 {
            rf.read(5);
            rf.write(5);
        }
        for _ in 0..10 {
            rf.read(0xdead_beef);
            rf.write(0xdead_beef);
        }
        // 90 % one-byte + 10 % four-byte ≈ 1.3 bytes + 3 ext bits = 13.4 bits
        // vs 32 → ≈ 58 % saving.
        assert!(rf.read_saving() > 0.5 && rf.read_saving() < 0.65);
        assert!((rf.read_saving() - rf.write_saving()).abs() < 1e-12);
    }

    #[test]
    fn halfword_scheme_saves_less() {
        let mut byte = RegFileActivity::new(ExtScheme::ThreeBit);
        let mut half = RegFileActivity::new(ExtScheme::Halfword);
        for v in [5u32, 0xffff_fff0, 0x1234, 0x0001_0000] {
            byte.read(v);
            half.read(v);
        }
        assert!(byte.read_saving() > half.read_saving());
    }

    #[test]
    fn empty_accumulator_reports_zero_saving() {
        let rf = RegFileActivity::new(ExtScheme::ThreeBit);
        assert_eq!(rf.read_saving(), 0.0);
        assert_eq!(rf.write_saving(), 0.0);
        assert_eq!(rf.mean_read_bytes(), 0.0);
    }

    #[test]
    fn overhead_bits_are_charged_per_access() {
        let mut rf = RegFileActivity::new(ExtScheme::TwoBit);
        rf.read(1);
        rf.read(1);
        assert_eq!(rf.read_compressed_bits(), 2 * (8 + 2));
    }
}
