//! Significance-aware ALU operation models (§2.5 of the paper).
//!
//! The ALU operates byte-serially on the significant bytes only. For an
//! addition, each byte position falls into one of three cases:
//!
//! 1. both operand bytes significant → the byte addition is performed,
//! 2. only one significant → the byte is still processed (the paper does not
//!    credit the possible bypass optimization, and neither do we),
//! 3. neither significant → normally the result byte is just a sign
//!    extension and only the extension bits are produced; in the exceptional
//!    cases of Table 4 the full byte value must be generated.
//!
//! [`add`]/[`sub`] implement this rule and report the number of byte
//! positions that had to be processed; [`case3_requires_generation`] is the
//! first-principles predicate behind Table 4.

use crate::ext::{sig_mask, sign_extension_of, word_bytes, ExtScheme, WORD_BYTES};

/// The result of a significance-aware ALU operation together with its
/// activity cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluOutcome {
    /// The architectural 32-bit result (identical to a conventional ALU).
    pub result: u32,
    /// Number of bytes the compressed ALU had to operate on (1..=4).
    pub bytes_operated: u8,
    /// Number of bytes a conventional 32-bit ALU operates on (always 4).
    pub baseline_bytes: u8,
}

impl AluOutcome {
    /// Bits of datapath activity under significance compression, including
    /// the extension bits that must be produced for the result.
    #[must_use]
    pub fn compressed_bits(&self, scheme: ExtScheme) -> u64 {
        u64::from(self.bytes_operated) * 8 + u64::from(scheme.overhead_bits())
    }

    /// Bits of datapath activity of the conventional 32-bit ALU.
    #[must_use]
    pub fn baseline_bits(&self) -> u64 {
        u64::from(self.baseline_bytes) * 8
    }
}

/// A two-operand logic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
}

/// A shift direction/kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftOp {
    /// Logical left shift.
    Left,
    /// Logical right shift.
    RightLogical,
    /// Arithmetic right shift.
    RightArithmetic,
}

/// The granules (byte or halfword positions) a value occupies, as a
/// significance mask collapsed to the scheme's granule size.
fn granule_mask(value: u32, scheme: ExtScheme) -> [bool; WORD_BYTES] {
    let bytes = sig_mask(value, scheme);
    match scheme.granule_bytes() {
        1 => bytes,
        2 => {
            let lo = bytes[0] || bytes[1];
            let hi = bytes[2] || bytes[3];
            [lo, lo, hi, hi]
        }
        _ => unreachable!("granules are 1 or 2 bytes"),
    }
}

fn addsub_activity(a: u32, b: u32, subtract: bool, scheme: ExtScheme) -> AluOutcome {
    let result = if subtract {
        a.wrapping_sub(b)
    } else {
        a.wrapping_add(b)
    };
    // The subtrahend is complemented inside the ALU; complementing preserves
    // which bytes are sign extensions, so its significance mask is unchanged.
    let mask_a = granule_mask(a, scheme);
    let mask_b = granule_mask(b, scheme);
    let res_bytes = word_bytes(result);
    let granule = scheme.granule_bytes() as usize;

    let mut operated_bytes = 0u8;
    let mut g = 0usize;
    while g < WORD_BYTES {
        let needed = if g == 0 {
            // The low-order granule is always significant and always computed.
            true
        } else if mask_a[g] || mask_b[g] {
            // Cases 1 and 2: at least one significant operand byte.
            true
        } else {
            // Case 3: both operand granules are sign extensions. The result
            // granule normally is too; the exceptions (Table 4) are exactly
            // the positions where it is not the sign extension of the granule
            // below it and therefore must be generated.
            (0..granule).any(|k| res_bytes[g + k] != sign_extension_of(res_bytes[g + k - 1]))
        };
        if needed {
            operated_bytes += granule as u8;
        }
        g += granule;
    }

    AluOutcome {
        result,
        bytes_operated: operated_bytes,
        baseline_bytes: WORD_BYTES as u8,
    }
}

/// Significance-aware addition.
#[must_use]
pub fn add(a: u32, b: u32, scheme: ExtScheme) -> AluOutcome {
    addsub_activity(a, b, false, scheme)
}

/// Significance-aware subtraction.
#[must_use]
pub fn sub(a: u32, b: u32, scheme: ExtScheme) -> AluOutcome {
    addsub_activity(a, b, true, scheme)
}

/// Significance-aware comparison (`slt`/`sltu`, and the magnitude part of
/// conditional branches). Implemented as a subtraction whose result is the
/// 0/1 flag.
#[must_use]
pub fn compare(a: u32, b: u32, signed: bool, scheme: ExtScheme) -> AluOutcome {
    let sub_outcome = addsub_activity(a, b, true, scheme);
    let flag = if signed {
        u32::from((a as i32) < (b as i32))
    } else {
        u32::from(a < b)
    };
    AluOutcome {
        result: flag,
        ..sub_outcome
    }
}

/// Significance-aware bitwise logic. Because the bitwise combination of two
/// sign-extension bytes is itself the sign extension of the combination of
/// the bytes below, case 3 never requires generating a byte for logic
/// operations.
#[must_use]
pub fn logic(op: LogicOp, a: u32, b: u32, scheme: ExtScheme) -> AluOutcome {
    let result = match op {
        LogicOp::And => a & b,
        LogicOp::Or => a | b,
        LogicOp::Xor => a ^ b,
        LogicOp::Nor => !(a | b),
    };
    let mask_a = granule_mask(a, scheme);
    let mask_b = granule_mask(b, scheme);
    let granule = scheme.granule_bytes() as usize;
    let mut operated = 0u8;
    let mut g = 0usize;
    while g < WORD_BYTES {
        if g == 0 || mask_a[g] || mask_b[g] {
            operated += granule as u8;
        }
        g += granule;
    }
    AluOutcome {
        result,
        bytes_operated: operated,
        baseline_bytes: WORD_BYTES as u8,
    }
}

/// Significance-aware shift. A byte-serial shifter touches the significant
/// granules of the source and produces the significant granules of the
/// result; activity is the larger of the two.
#[must_use]
pub fn shift(op: ShiftOp, value: u32, amount: u32, scheme: ExtScheme) -> AluOutcome {
    let amount = amount & 0x1f;
    let result = match op {
        ShiftOp::Left => value << amount,
        ShiftOp::RightLogical => value >> amount,
        ShiftOp::RightArithmetic => ((value as i32) >> amount) as u32,
    };
    let granule = scheme.granule_bytes();
    let src = granule_mask(value, scheme).iter().filter(|&&b| b).count() as u8;
    let dst = granule_mask(result, scheme).iter().filter(|&&b| b).count() as u8;
    let operated = src.max(dst).max(granule as u8);
    AluOutcome {
        result,
        bytes_operated: operated,
        baseline_bytes: WORD_BYTES as u8,
    }
}

/// Significance-aware multiply/divide activity. A byte-serial multiplier
/// processes each pair of significant granules of the two operands, so
/// activity scales with the product of the operand widths; a conventional
/// unit processes the full 4×4 bytes.
#[must_use]
pub fn muldiv(a: u32, b: u32, scheme: ExtScheme) -> AluOutcome {
    let granule = scheme.granule_bytes() as u8;
    let sa = granule_mask(a, scheme).iter().filter(|&&m| m).count() as u8 / granule;
    let sb = granule_mask(b, scheme).iter().filter(|&&m| m).count() as u8 / granule;
    let operated = (sa * sb * granule).clamp(granule, 16);
    AluOutcome {
        // HI/LO results are tracked architecturally by the interpreter; the
        // activity model only needs the operand widths.
        result: a.wrapping_mul(b),
        bytes_operated: operated,
        baseline_bytes: 16,
    }
}

/// The first-principles predicate behind Table 4: given that byte *i* of both
/// operands is a sign extension of the byte below, does result byte *i* have
/// to be generated explicitly?
///
/// `a_prev` and `b_prev` are the operand bytes at position *i−1* and
/// `carry_into_prev` is the carry into that position. The answer depends only
/// on the top two bits of each byte and on whether bit 5 of the byte sum
/// produces a carry — which is exactly how the paper tabulates it.
#[must_use]
pub fn case3_requires_generation(a_prev: u8, b_prev: u8, carry_into_prev: bool) -> bool {
    let prev_sum = u16::from(a_prev) + u16::from(b_prev) + u16::from(carry_into_prev);
    let c_prev = (prev_sum & 0xff) as u8;
    let carry_out = prev_sum > 0xff;
    let a_ext = sign_extension_of(a_prev);
    let b_ext = sign_extension_of(b_prev);
    let c_i = (u16::from(a_ext) + u16::from(b_ext) + u16::from(carry_out)) as u8;
    c_i != sign_extension_of(c_prev)
}

/// One row of the Table 4 reproduction: a pair of top-two-bit patterns of the
/// preceding operand bytes, and for which carry conditions byte *i* must be
/// generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case3Row {
    /// Top two bits of the first operand's preceding byte (0..4).
    pub a_top: u8,
    /// Top two bits of the second operand's preceding byte (0..4).
    pub b_top: u8,
    /// Whether some `(a, b, carry)` combination in this class requires
    /// generating the byte.
    pub ever_required: bool,
    /// Whether *every* combination in this class requires generation
    /// (otherwise it depends on the lower-order bits/carry, the paper's
    /// "5th bit produces carry" side condition).
    pub always_required: bool,
}

/// Enumerates all 10 unordered top-two-bit classes of Table 4 by exhaustive
/// evaluation of [`case3_requires_generation`].
#[must_use]
pub fn case3_table() -> Vec<Case3Row> {
    let mut rows = Vec::new();
    for a_top in 0..4u8 {
        for b_top in a_top..4u8 {
            let mut any = false;
            let mut all = true;
            for a_low in 0..64u8 {
                for b_low in 0..64u8 {
                    let a = (a_top << 6) | a_low;
                    let b = (b_top << 6) | b_low;
                    for carry in [false, true] {
                        let req = case3_requires_generation(a, b, carry)
                            || case3_requires_generation(b, a, carry);
                        any |= req;
                        all &= req;
                    }
                }
            }
            rows.push(Case3Row {
                a_top,
                b_top,
                ever_required: any,
                always_required: all,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ExtScheme = ExtScheme::ThreeBit;

    #[test]
    fn results_match_a_conventional_alu() {
        let cases = [
            (5u32, 7u32),
            (0xffff_fffb, 3),
            (0x7fff_ffff, 1),
            (0x1000_0000, 0x0000_0009),
            (0xdead_beef, 0x0bad_f00d),
        ];
        for (a, b) in cases {
            assert_eq!(add(a, b, S).result, a.wrapping_add(b));
            assert_eq!(sub(a, b, S).result, a.wrapping_sub(b));
            assert_eq!(logic(LogicOp::Xor, a, b, S).result, a ^ b);
            assert_eq!(logic(LogicOp::Nor, a, b, S).result, !(a | b));
        }
    }

    #[test]
    fn small_operands_take_one_byte() {
        let o = add(5, 7, S);
        assert_eq!(o.bytes_operated, 1);
        assert_eq!(o.baseline_bytes, 4);
        assert_eq!(o.compressed_bits(S), 11);
        assert_eq!(o.baseline_bits(), 32);
    }

    #[test]
    fn small_negative_operands_take_one_byte() {
        // -3 + -4 = -7: all operand bytes above byte 0 are sign extensions
        // and the result's upper bytes remain sign extensions.
        let o = add(0xffff_fffd, 0xffff_fffc, S);
        assert_eq!(o.result, 0xffff_fff9);
        assert_eq!(o.bytes_operated, 1);
    }

    #[test]
    fn carry_into_insignificant_bytes_forces_generation() {
        // 0x01 + 0x7f = 0x80: byte 0 result has its sign bit set, so byte 1
        // (both operands insignificant there) is no longer the sign
        // extension of the true result 0x00000080 → must be generated.
        let o = add(0x01, 0x7f, S);
        assert_eq!(o.result, 0x80);
        assert_eq!(o.bytes_operated, 2);
    }

    #[test]
    fn paper_exception_example() {
        // The paper's example: A = 0x...01, B = 0x...7f with both next bytes
        // being sign extensions; the next result byte must be generated.
        assert!(case3_requires_generation(0x01, 0x7f, false));
        // Two small positive numbers whose sum stays below 0x80 need nothing.
        assert!(!case3_requires_generation(0x01, 0x02, false));
        // Two negatives that stay negative need nothing either.
        assert!(!case3_requires_generation(0xff, 0xfe, true));
    }

    #[test]
    fn case3_predicate_matches_byte_rule_exhaustively() {
        // For every pair of one-byte operands (sign-extended to 32 bits), the
        // add() activity must flag byte 1 exactly when the predicate says so.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let av = a as i8 as i32 as u32;
                let bv = b as i8 as i32 as u32;
                let o = add(av, bv, S);
                let expected = case3_requires_generation(a, b, false);
                let flagged = o.bytes_operated > 1;
                // Bytes 2 and 3 may also need generation only if byte 1 did.
                assert_eq!(
                    flagged, expected,
                    "a={a:#x} b={b:#x} operated={}",
                    o.bytes_operated
                );
            }
        }
    }

    #[test]
    fn wide_operands_use_all_bytes() {
        let o = add(0x1234_5678, 0x0101_0101, S);
        assert_eq!(o.bytes_operated, 4);
    }

    #[test]
    fn internal_zero_addresses_skip_middle_bytes() {
        // 0x10000000 + 0x9: bytes 1 and 2 of both operands are extensions and
        // the result keeps them as extensions of byte 0.
        let o = add(0x1000_0000, 0x9, S);
        assert_eq!(o.result, 0x1000_0009);
        assert_eq!(o.bytes_operated, 2);
    }

    #[test]
    fn subtraction_that_cancels_is_cheap() {
        // 3 - 3 = 0: only the low byte is processed.
        let o = sub(3, 3, S);
        assert_eq!(o.result, 0);
        assert_eq!(o.bytes_operated, 1);
    }

    #[test]
    fn compare_reports_flag_but_costs_like_subtract() {
        let o = compare(3, 1000, true, S);
        assert_eq!(o.result, 1);
        assert_eq!(o.bytes_operated, sub(3, 1000, S).bytes_operated);
        let u = compare(0xffff_ffff, 1, false, S);
        assert_eq!(u.result, 0);
    }

    #[test]
    fn logic_activity_is_union_of_masks() {
        // 0x00ff spans 2 significant bytes and 0xff00 spans 3 (0xff00 is a
        // positive value whose 16-bit truncation would read as negative), so
        // the union covers 3 byte positions.
        assert_eq!(logic(LogicOp::And, 0xff, 0xff00, S).bytes_operated, 3);
        assert_eq!(logic(LogicOp::Or, 0x1, 0x2, S).bytes_operated, 1);
        assert_eq!(logic(LogicOp::Xor, 0x0102_0304, 0x1, S).bytes_operated, 4);
    }

    #[test]
    fn shift_activity_covers_source_and_result() {
        let o = shift(ShiftOp::Left, 0x00ff, 8, S);
        assert_eq!(o.result, 0xff00);
        assert_eq!(o.bytes_operated, 3);
        let r = shift(ShiftOp::RightArithmetic, 0xffff_0000, 16, S);
        assert_eq!(r.result, 0xffff_ffff);
        assert_eq!(r.bytes_operated, 2);
        let small = shift(ShiftOp::RightLogical, 1, 0, S);
        assert_eq!(small.bytes_operated, 1);
    }

    #[test]
    fn muldiv_scales_with_operand_widths() {
        let narrow = muldiv(3, 5, S);
        assert_eq!(narrow.bytes_operated, 1);
        assert_eq!(narrow.baseline_bytes, 16);
        let wide = muldiv(0x12345678, 0x12345678, S);
        assert_eq!(wide.bytes_operated, 16);
    }

    #[test]
    fn halfword_granularity_costs_in_halfword_steps() {
        let o = add(5, 7, ExtScheme::Halfword);
        assert_eq!(o.bytes_operated, 2);
        let wide = add(0x0001_0000, 1, ExtScheme::Halfword);
        assert_eq!(wide.bytes_operated, 4);
    }

    #[test]
    fn case3_table_has_ten_classes_and_matches_paper_structure() {
        let rows = case3_table();
        assert_eq!(rows.len(), 10);
        // Classes that can never require generation: both bytes start 00 and
        // stay below 0x40 each... in fact (00,00) can require generation only
        // if the sum reaches 0x80, which needs both ≥ 0x40 — impossible for
        // top bits 00 without carrying into bit 7? 0x3f + 0x3f + 1 = 0x7f, so
        // (00,00) never requires generation.
        let r00 = rows.iter().find(|r| r.a_top == 0 && r.b_top == 0).unwrap();
        assert!(!r00.ever_required);
        // (11,11): two clearly negative bytes always produce a negative,
        // carried result → never an exception.
        let r33 = rows.iter().find(|r| r.a_top == 3 && r.b_top == 3).unwrap();
        assert!(!r33.ever_required);
        // (00,01) can produce a sum ≥ 0x80 (e.g. 0x3f + 0x41) → sometimes.
        let r01 = rows.iter().find(|r| r.a_top == 0 && r.b_top == 1).unwrap();
        assert!(r01.ever_required && !r01.always_required);
        // (01,01): two bytes ≥ 0x40 always sum to at least 0x80 without a
        // carry out, so the positive operands produce a "negative-looking"
        // byte → generation is always required.
        let r11 = rows.iter().find(|r| r.a_top == 1 && r.b_top == 1).unwrap();
        assert!(r11.ever_required && r11.always_required);
        // (10,10): two clearly negative bytes always carry out while the sum
        // byte looks positive → always required (the symmetric negative case
        // of (01,01)).
        let r22 = rows.iter().find(|r| r.a_top == 2 && r.b_top == 2).unwrap();
        assert!(r22.ever_required && r22.always_required);
        // (10,11) depends on whether the magnitudes carry → sometimes.
        let r23 = rows.iter().find(|r| r.a_top == 2 && r.b_top == 3).unwrap();
        assert!(r23.ever_required && !r23.always_required);
        // Mixed-sign classes always cancel into a proper sign extension:
        // (00,11) and (01,10) never require generation.
        let r03 = rows.iter().find(|r| r.a_top == 0 && r.b_top == 3).unwrap();
        assert!(!r03.ever_required);
        let r12 = rows.iter().find(|r| r.a_top == 1 && r.b_top == 2).unwrap();
        assert!(!r12.ever_required);
    }
}
