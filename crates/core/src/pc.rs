//! Program-counter update activity (§2.2 and Table 2 of the paper).
//!
//! The PC is updated block-serially: the low-order block is always
//! incremented, and higher blocks are touched only when the carry ripples
//! into them (or when a taken branch changes them). For a block of *k* bits
//! the expected number of blocks touched per sequential increment is
//! `1 / (1 − 2⁻ᵏ)`, giving the activity/latency columns of Table 2.
//!
//! Because instructions are word aligned, the incremented portion of the PC
//! is its upper 30 bits; the conventional design charges 30 bits of activity
//! per update, which is the baseline used for the "73 % PC activity saving"
//! row of Table 5.

/// Number of PC bits that participate in the increment (word-aligned PCs).
pub const PC_BITS: u32 = 30;

/// One row of Table 2: expected activity (bits operated) and latency
/// (cycles) per PC update for a given block size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcUpdateRow {
    /// Block size in bits.
    pub block_bits: u32,
    /// Expected bits operated per update.
    pub activity_bits: f64,
    /// Expected cycles per update (blocks touched).
    pub latency_cycles: f64,
}

/// The analytic model behind Table 2: for a block of `block_bits` bits, a
/// sequential increment touches `1/(1−2⁻ᵏ)` blocks in expectation.
///
/// # Panics
///
/// Panics if `block_bits` is zero.
#[must_use]
pub fn pc_update_analytic(block_bits: u32) -> PcUpdateRow {
    assert!(block_bits > 0, "block size must be positive");
    let p_carry = 0.5_f64.powi(block_bits as i32);
    let blocks = 1.0 / (1.0 - p_carry);
    PcUpdateRow {
        block_bits,
        activity_bits: f64::from(block_bits) * blocks,
        latency_cycles: blocks,
    }
}

/// The full Table 2 (block sizes 1–8 bits).
#[must_use]
pub fn pc_update_table() -> Vec<PcUpdateRow> {
    (1..=8).map(pc_update_analytic).collect()
}

/// Simulates block-serial PC updates over an actual PC stream, counting the
/// blocks (and bits) that really change, including arbitrary redirects from
/// taken branches.
#[derive(Debug, Clone)]
pub struct PcActivity {
    block_bits: u32,
    previous_pc: Option<u32>,
    updates: u64,
    blocks_touched: u64,
    max_blocks_per_update: u64,
}

impl PcActivity {
    /// Creates a tracker for the given block size (8 for the byte-serial
    /// machines of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` is zero or larger than [`PC_BITS`].
    #[must_use]
    pub fn new(block_bits: u32) -> Self {
        assert!(block_bits > 0 && block_bits <= PC_BITS);
        PcActivity {
            block_bits,
            previous_pc: None,
            updates: 0,
            blocks_touched: 0,
            max_blocks_per_update: 0,
        }
    }

    /// Number of blocks the incrementer is split into (the top block may be
    /// narrower).
    #[must_use]
    pub fn num_blocks(&self) -> u32 {
        PC_BITS.div_ceil(self.block_bits)
    }

    /// Observes the PC of the next retired instruction. Returns the number of
    /// blocks that changed relative to the previous PC (0 for the first
    /// observation).
    pub fn observe(&mut self, pc: u32) -> u32 {
        let changed = match self.previous_pc {
            None => 0,
            Some(prev) => self.changed_blocks(prev, pc),
        };
        if self.previous_pc.is_some() {
            self.updates += 1;
            self.blocks_touched += u64::from(changed.max(1));
            self.max_blocks_per_update = self.max_blocks_per_update.max(u64::from(changed.max(1)));
        }
        self.previous_pc = Some(pc);
        changed
    }

    fn changed_blocks(&self, prev: u32, next: u32) -> u32 {
        // Compare the word-aligned upper 30 bits block by block.
        let diff = (prev >> 2) ^ (next >> 2);
        let mut changed = 0;
        let mut bit = 0;
        while bit < PC_BITS {
            let width = self.block_bits.min(PC_BITS - bit);
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1 << width) - 1
            };
            if (diff >> bit) & mask != 0 {
                changed += 1;
            }
            bit += width;
        }
        changed
    }

    /// Number of PC updates observed (transitions, not instructions).
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Average blocks touched per update (≈ `1/(1−2⁻ᵏ)` for sequential code).
    #[must_use]
    pub fn mean_blocks_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.blocks_touched as f64 / self.updates as f64
        }
    }

    /// Bits of latch/increment activity under block-serial updating.
    #[must_use]
    pub fn compressed_bits(&self) -> u64 {
        self.blocks_touched * u64::from(self.block_bits)
    }

    /// Bits of activity for the conventional full-width PC update.
    #[must_use]
    pub fn baseline_bits(&self) -> u64 {
        self.updates * u64::from(PC_BITS)
    }

    /// Worst-case blocks touched by a single update seen so far.
    #[must_use]
    pub fn max_blocks_per_update(&self) -> u64 {
        self.max_blocks_per_update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper_numbers() {
        // Table 2 of the paper, (block bits, activity, latency).
        let expected = [
            (1, 2.0000, 2.0000),
            (2, 2.6667, 1.3333),
            (3, 3.4286, 1.1429),
            (4, 4.2667, 1.0667),
            (5, 5.1613, 1.0323),
            (6, 6.0952, 1.0159),
            (7, 7.0551, 1.0079),
            (8, 8.0314, 1.0039),
        ];
        for (bits, activity, latency) in expected {
            let row = pc_update_analytic(bits);
            assert!(
                (row.activity_bits - activity).abs() < 5e-4,
                "block {bits}: activity {} vs {activity}",
                row.activity_bits
            );
            assert!(
                (row.latency_cycles - latency).abs() < 5e-4,
                "block {bits}: latency {} vs {latency}",
                row.latency_cycles
            );
        }
        assert_eq!(pc_update_table().len(), 8);
    }

    #[test]
    fn byte_serial_pc_saving_is_about_73_percent() {
        // A purely sequential PC stream reproduces the analytic expectation,
        // and the activity saving vs a 30-bit update is ~73 % (Table 5).
        let mut pc = PcActivity::new(8);
        let mut addr = 0x0040_0000u32;
        for _ in 0..200_000 {
            pc.observe(addr);
            addr += 4;
        }
        let saving = 1.0 - pc.compressed_bits() as f64 / pc.baseline_bits() as f64;
        assert!(
            (saving - 0.732).abs() < 0.01,
            "saving {saving} should be ≈ 73 %"
        );
        assert!((pc.mean_blocks_per_update() - 1.0039).abs() < 0.01);
    }

    #[test]
    fn taken_branches_touch_more_blocks() {
        let mut pc = PcActivity::new(8);
        pc.observe(0x0040_0000);
        let seq = pc.observe(0x0040_0004);
        assert_eq!(seq, 1);
        let jump = pc.observe(0x1040_0000); // far target: upper block changes too
        assert!(jump >= 2);
        assert!(pc.max_blocks_per_update() >= 2);
    }

    #[test]
    fn first_observation_costs_nothing() {
        let mut pc = PcActivity::new(8);
        assert_eq!(pc.observe(0x0040_0000), 0);
        assert_eq!(pc.updates(), 0);
        assert_eq!(pc.mean_blocks_per_update(), 0.0);
    }

    #[test]
    fn unchanged_pc_still_counts_one_block() {
        // A stalled PC (same address twice) still clocks the low block.
        let mut pc = PcActivity::new(8);
        pc.observe(0x0040_0000);
        pc.observe(0x0040_0000);
        assert_eq!(pc.updates(), 1);
        assert_eq!(pc.compressed_bits(), 8);
    }

    #[test]
    fn block_count_covers_all_30_bits() {
        assert_eq!(PcActivity::new(8).num_blocks(), 4);
        assert_eq!(PcActivity::new(16).num_blocks(), 2);
        assert_eq!(PcActivity::new(30).num_blocks(), 1);
        assert_eq!(PcActivity::new(7).num_blocks(), 5);
    }

    #[test]
    #[should_panic(expected = "block_bits > 0")]
    fn zero_block_size_panics() {
        let _ = PcActivity::new(0);
    }
}
