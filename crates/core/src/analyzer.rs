//! The trace-driven activity study of §2.9: feed a dynamic instruction trace
//! through every stage model and report per-stage activity savings
//! (Tables 5 and 6 of the paper).

use crate::activity::{ActivityReport, StageActivity};
use crate::cost::{instr_cost, InstrCost};
use crate::dcache::DCacheActivity;
use crate::ext::{significant_bytes, ExtScheme};
use crate::ifetch::{FetchActivity, FunctRecoder};
use crate::pc::{PcActivity, PC_BITS};
use crate::regfile::RegFileActivity;
use crate::stats::SigStats;
use sigcomp_isa::ExecRecord;
use sigcomp_mem::{AccessKind, HierarchyConfig, HierarchyStats, MemoryHierarchy};

/// Configuration of the activity study.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Extension-bit scheme (Table 5 uses the 3-bit byte scheme, Table 6 the
    /// halfword scheme).
    pub scheme: ExtScheme,
    /// Memory-hierarchy parameters (§3).
    pub hierarchy: HierarchyConfig,
    /// Block size of the block-serial PC incrementer in bits.
    pub pc_block_bits: u32,
    /// Function-code recoding used by the compressed I-cache.
    pub recoder: FunctRecoder,
}

impl AnalyzerConfig {
    /// The paper's primary configuration: 3-bit byte-granularity compression
    /// with a byte-serial PC incrementer.
    #[must_use]
    pub fn paper_byte() -> Self {
        AnalyzerConfig {
            scheme: ExtScheme::ThreeBit,
            hierarchy: HierarchyConfig::paper(),
            pc_block_bits: 8,
            recoder: FunctRecoder::paper_default(),
        }
    }

    /// The halfword-granularity configuration of Table 6.
    #[must_use]
    pub fn paper_halfword() -> Self {
        AnalyzerConfig {
            scheme: ExtScheme::Halfword,
            pc_block_bits: 16,
            ..Self::paper_byte()
        }
    }

    /// Same as [`AnalyzerConfig::paper_byte`] but with the given scheme and a
    /// matching PC block size.
    #[must_use]
    pub fn for_scheme(scheme: ExtScheme) -> Self {
        let pc_block_bits = 8 * scheme.granule_bytes();
        AnalyzerConfig {
            scheme,
            pc_block_bits,
            ..Self::paper_byte()
        }
    }
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self::paper_byte()
    }
}

/// Baseline latch bits clocked per instruction in the conventional 32-bit
/// five-stage pipeline: PC (30) + IF/ID instruction (32) + ID/EX operands
/// (64) + EX/MEM result (32) + MEM/WB data (32).
const BASELINE_LATCH_BITS: u64 = PC_BITS as u64 + 32 + 64 + 32 + 32;

/// Byte lanes of pipeline latch the conventional design clocks (and powers)
/// per instruction: [`BASELINE_LATCH_BITS`] rounded up to whole lanes.
const BASELINE_LATCH_LANES: u64 = BASELINE_LATCH_BITS.div_ceil(8);

/// Byte lanes of a full machine word.
const WORD_LANES: u64 = 4;

/// Gated-lane accounting for the structures whose sub-models track bits
/// only: per instruction, `total` byte lanes the baseline keeps powered and
/// `gated` lanes the extension bits let the compressed design power off.
#[derive(Debug, Clone, Copy, Default)]
struct GateCounter {
    gated: u64,
    total: u64,
}

impl GateCounter {
    /// Records one structure occupation: `powered` significant lanes out of
    /// `total` (powered is clamped, so approximate callers cannot underflow).
    fn occupy(&mut self, powered: u64, total: u64) {
        self.gated += total.saturating_sub(powered);
        self.total += total;
    }
}

/// Trace-driven activity analyzer (reproduces Tables 5 and 6).
///
/// ```
/// use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
/// use sigcomp_isa::{ProgramBuilder, Interpreter, reg};
///
/// # fn main() -> Result<(), sigcomp_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// b.li(reg::T0, 0);
/// b.li(reg::T1, 1000);
/// b.label("loop");
/// b.addiu(reg::T0, reg::T0, 1);
/// b.bne(reg::T0, reg::T1, "loop");
/// b.halt();
///
/// let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
/// let mut interp = Interpreter::new(&b.assemble()?);
/// interp.run_each(100_000, |rec| analyzer.observe(rec))?;
///
/// let report = analyzer.report();
/// assert!(report.rf_read.saving() > 0.3);   // counter values are narrow
/// assert!(report.pc_increment.saving() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceAnalyzer {
    config: AnalyzerConfig,
    hierarchy: MemoryHierarchy,
    fetch: FetchActivity,
    regfile: RegFileActivity,
    alu: StageActivity,
    dcache: DCacheActivity,
    pc: PcActivity,
    latches: StageActivity,
    stats: SigStats,
    fetch_gate: GateCounter,
    rf_read_gate: GateCounter,
    rf_write_gate: GateCounter,
    dcache_gate: GateCounter,
    pc_gate: GateCounter,
}

impl TraceAnalyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalyzerConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(&config.hierarchy);
        let dcache = DCacheActivity::new(config.scheme, &config.hierarchy.dl1);
        TraceAnalyzer {
            fetch: FetchActivity::new(),
            regfile: RegFileActivity::new(config.scheme),
            alu: StageActivity::default(),
            dcache,
            pc: PcActivity::new(config.pc_block_bits),
            latches: StageActivity::default(),
            stats: SigStats::new(),
            fetch_gate: GateCounter::default(),
            rf_read_gate: GateCounter::default(),
            rf_write_gate: GateCounter::default(),
            dcache_gate: GateCounter::default(),
            pc_gate: GateCounter::default(),
            hierarchy,
            config,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Observes one retired instruction.
    pub fn observe(&mut self, rec: &ExecRecord) {
        let cost = instr_cost(rec, self.config.scheme, &self.config.recoder);
        self.observe_with_cost(rec, &cost);
    }

    /// [`TraceAnalyzer::observe`] with the record's [`InstrCost`] supplied
    /// by the caller — for drivers that also feed a timing model and want
    /// to distil the record once instead of once per model. The cost must
    /// come from `instr_cost(rec, ...)` under this analyzer's scheme and
    /// recoder, or the activity accounting is meaningless.
    pub fn observe_with_cost(&mut self, rec: &ExecRecord, cost: &InstrCost) {
        self.stats.observe(rec);

        // ---- instruction fetch (I-cache data array + I-TLB) ----------------
        self.hierarchy.fetch_instruction(rec.pc);
        self.fetch.observe(&cost.fetch);
        self.fetch_gate
            .occupy(u64::from(cost.fetch.fetch_bytes), WORD_LANES);

        // ---- PC update ------------------------------------------------------
        let updates_before = self.pc.updates();
        let changed_blocks = self.pc.observe(rec.pc);
        if self.pc.updates() > updates_before {
            // Block-serial incrementer: only the blocks the carry (or a
            // redirect) reaches power up; the rest stay gated behind it.
            // Rounded up to whole lanes, so sub-byte blocks (pc_block_bits
            // < 8 is a legal configuration) still record occupancy instead
            // of silently vanishing from the leakage term.
            let block_lanes = u64::from(self.config.pc_block_bits.div_ceil(8));
            let blocks = u64::from(self.pc.num_blocks());
            self.pc_gate.occupy(
                u64::from(changed_blocks.max(1)) * block_lanes,
                blocks * block_lanes,
            );
        }

        // ---- register-file reads -------------------------------------------
        // The significance counts were already produced by the batched
        // `instr_cost` pass for the same operand values; reuse them instead
        // of recomputing per bank access.
        for bytes in [cost.rs_bytes, cost.rt_bytes].into_iter().flatten() {
            self.regfile.record_read(bytes);
            self.rf_read_gate.occupy(u64::from(bytes), WORD_LANES);
        }

        // ---- ALU -------------------------------------------------------------
        if let Some(alu) = cost.alu {
            self.alu
                .add(alu.compressed_bits(self.config.scheme), alu.baseline_bits());
            self.alu.add_gating(
                u64::from(alu.baseline_bytes.saturating_sub(alu.bytes_operated)),
                u64::from(alu.baseline_bytes),
            );
        }

        // ---- data cache ------------------------------------------------------
        if let Some(mem) = rec.mem {
            let kind = if mem.is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let result = self.hierarchy.data_access(mem.addr, kind);
            self.dcache.access(mem.value, mem.width);
            if let Some(m) = cost.mem {
                self.dcache_gate
                    .occupy(u64::from(m.sig_bytes), u64::from(m.width_bytes));
            }
            if result.l1_fill.is_some() {
                // A line fill regenerates extension bits for every word of
                // the 32-byte line. The analyzer does not track line
                // contents, so the accessed word's value stands in for its
                // neighbours (documented approximation; fills are a small
                // fraction of accesses at the paper's miss rates).
                let words = u64::from(self.hierarchy.l1_line_bytes() / 4);
                let fill_sig = u64::from(significant_bytes(mem.value, self.config.scheme));
                self.dcache.fill_line(mem.value, words);
                self.dcache_gate
                    .occupy(fill_sig * words, WORD_LANES * words);
            }
        }

        // ---- register write-back --------------------------------------------
        if let Some(bytes) = cost.result_bytes {
            self.regfile.record_write(bytes);
            self.rf_write_gate.occupy(u64::from(bytes), WORD_LANES);
        }

        // ---- pipeline latches ------------------------------------------------
        let latched = self.latched_bits(cost);
        self.latches.add(latched, BASELINE_LATCH_BITS);
        self.latches.add_gating(
            BASELINE_LATCH_LANES.saturating_sub(latched.div_ceil(8)),
            BASELINE_LATCH_LANES,
        );
    }

    /// Bits latched for one instruction under operand gating: only the
    /// significant portions of the PC, instruction word, operands, result and
    /// memory data are clocked into the inter-stage latches.
    fn latched_bits(&self, cost: &InstrCost) -> u64 {
        let ext = u64::from(self.config.scheme.overhead_bits());
        let pc_bits = u64::from(self.config.pc_block_bits); // low block always clocks
        let fetch_bits = u64::from(cost.fetch.fetched_bits());
        let operand_bits =
            u64::from(cost.regfile_read_bytes()) * 8 + u64::from(cost.regfile_reads()) * ext;
        let result_bits = cost.result_bytes.map_or(0, |b| u64::from(b) * 8 + ext);
        let mem_bits = cost.mem.map_or(0, |m| u64::from(m.sig_bytes) * 8 + ext);
        pc_bits + fetch_bits + operand_bits + result_bits + mem_bits
    }

    /// Per-stage activity report (one Table 5/6 row for this trace).
    #[must_use]
    pub fn report(&self) -> ActivityReport {
        ActivityReport {
            fetch: StageActivity::with_gating(
                self.fetch.compressed_bits(),
                self.fetch.baseline_bits(),
                self.fetch_gate.gated,
                self.fetch_gate.total,
            ),
            rf_read: StageActivity::with_gating(
                self.regfile.read_compressed_bits(),
                self.regfile.read_baseline_bits(),
                self.rf_read_gate.gated,
                self.rf_read_gate.total,
            ),
            rf_write: StageActivity::with_gating(
                self.regfile.write_compressed_bits(),
                self.regfile.write_baseline_bits(),
                self.rf_write_gate.gated,
                self.rf_write_gate.total,
            ),
            alu: self.alu,
            dcache_data: StageActivity::with_gating(
                self.dcache.data_compressed_bits(),
                self.dcache.data_baseline_bits(),
                self.dcache_gate.gated,
                self.dcache_gate.total,
            ),
            // The tag array carries no extension bits, so none of its lanes
            // can be gated: it leaks the same on both sides.
            dcache_tag: StageActivity::with_gating(
                self.dcache.tag_bits(),
                self.dcache.tag_bits(),
                0,
                self.dcache.tag_bits().div_ceil(8),
            ),
            pc_increment: StageActivity::with_gating(
                self.pc.compressed_bits(),
                self.pc.baseline_bits(),
                self.pc_gate.gated,
                self.pc_gate.total,
            ),
            latches: self.latches,
        }
    }

    /// Trace-level significance statistics (Tables 1 and 3).
    #[must_use]
    pub fn stats(&self) -> &SigStats {
        &self.stats
    }

    /// Average fetched bytes per instruction (≈ 3.17 in the paper).
    #[must_use]
    pub fn mean_fetch_bytes(&self) -> f64 {
        self.fetch.mean_fetch_bytes()
    }

    /// Memory-hierarchy counters accumulated while analyzing.
    #[must_use]
    pub fn hierarchy_stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ProcessNode;
    use sigcomp_isa::{reg, Interpreter, ProgramBuilder};

    fn analyze(build: impl Fn(&mut ProgramBuilder), config: AnalyzerConfig) -> TraceAnalyzer {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let program = b.assemble().expect("assembles");
        let mut analyzer = TraceAnalyzer::new(config);
        let mut interp = Interpreter::new(&program);
        interp
            .run_each(2_000_000, |rec| analyzer.observe(rec))
            .expect("runs to completion");
        analyzer
    }

    fn counter_loop(b: &mut ProgramBuilder) {
        b.li(reg::T0, 0);
        b.li(reg::T1, 2000);
        b.dlabel("buf");
        b.space(4096);
        b.la(reg::A0, "buf");
        b.label("loop");
        b.andi(reg::T2, reg::T0, 0x3fc);
        b.addu(reg::T3, reg::A0, reg::T2);
        b.sw(reg::T0, reg::T3, 0);
        b.lw(reg::T4, reg::T3, 0);
        b.addiu(reg::T0, reg::T0, 1);
        b.bne(reg::T0, reg::T1, "loop");
        b.halt();
    }

    #[test]
    fn narrow_value_workload_saves_substantially() {
        let a = analyze(counter_loop, AnalyzerConfig::paper_byte());
        let report = a.report();
        assert!(
            report.rf_read.saving() > 0.25,
            "rf read saving {}",
            report.rf_read.saving()
        );
        assert!(report.rf_write.saving() > 0.25);
        assert!(report.alu.saving() > 0.15);
        assert!(report.pc_increment.saving() > 0.6);
        assert!(report.fetch.saving() > 0.05);
        assert!(report.latches.saving() > 0.25);
        // Tag array never saves anything.
        assert!(report.dcache_tag.saving().abs() < 1e-12);
        assert!(a.mean_fetch_bytes() < 4.0 && a.mean_fetch_bytes() >= 3.0);
        assert!(a.stats().instructions() > 10_000);
    }

    #[test]
    fn halfword_saves_less_than_byte_granularity() {
        let byte = analyze(counter_loop, AnalyzerConfig::paper_byte()).report();
        let half = analyze(counter_loop, AnalyzerConfig::paper_halfword()).report();
        assert!(byte.rf_read.saving() > half.rf_read.saving());
        assert!(byte.alu.saving() > half.alu.saving());
        assert!(byte.pc_increment.saving() > half.pc_increment.saving());
        // Both still save overall.
        assert!(half.rf_read.saving() > 0.0);
    }

    #[test]
    fn hierarchy_counters_reflect_the_trace() {
        let a = analyze(counter_loop, AnalyzerConfig::paper_byte());
        let h = a.hierarchy_stats();
        assert!(h.il1.accesses > 10_000);
        assert!(h.dl1.accesses > 3_000);
        assert!(h.dl1.miss_rate() < 0.2);
    }

    #[test]
    fn for_scheme_matches_granularity() {
        assert_eq!(
            AnalyzerConfig::for_scheme(ExtScheme::Halfword).pc_block_bits,
            16
        );
        assert_eq!(
            AnalyzerConfig::for_scheme(ExtScheme::ThreeBit).pc_block_bits,
            8
        );
        assert_eq!(AnalyzerConfig::default().pc_block_bits, 8);
    }

    #[test]
    fn gated_byte_cycles_track_insignificant_lanes() {
        let a = analyze(counter_loop, AnalyzerConfig::paper_byte());
        let report = a.report();
        // Narrow counter values leave most upper lanes gated in the value
        // datapaths, and the block-serial PC rarely ripples past block 0.
        for (name, stage) in report.columns() {
            assert!(
                stage.gated_byte_cycles <= stage.total_byte_cycles,
                "{name}: gated {} > total {}",
                stage.gated_byte_cycles,
                stage.total_byte_cycles
            );
            assert!(stage.total_byte_cycles > 0, "{name}: no occupancy recorded");
        }
        assert!(report.rf_read.gated_fraction() > 0.25);
        assert!(report.rf_write.gated_fraction() > 0.25);
        assert!(report.alu.gated_fraction() > 0.15);
        assert!(report.pc_increment.gated_fraction() > 0.5);
        assert!(report.latches.gated_fraction() > 0.2);
        // The tag array can never gate a lane.
        assert_eq!(report.dcache_tag.gated_byte_cycles, 0);
    }

    #[test]
    fn sub_byte_pc_blocks_still_record_lane_occupancy() {
        // Regression: flooring pc_block_bits/8 made 4-bit blocks count zero
        // lanes, erasing the PC incrementer from the leakage term.
        let config = AnalyzerConfig {
            pc_block_bits: 4,
            ..AnalyzerConfig::paper_byte()
        };
        let report = analyze(counter_loop, config).report();
        assert!(report.pc_increment.total_byte_cycles > 0);
        assert!(report.pc_increment.gated_byte_cycles <= report.pc_increment.total_byte_cycles);
        assert!(report.pc_increment.gated_fraction() > 0.5);
    }

    #[test]
    fn halfword_granularity_gates_fewer_lanes_than_byte() {
        let byte = analyze(counter_loop, AnalyzerConfig::paper_byte()).report();
        let half = analyze(counter_loop, AnalyzerConfig::paper_halfword()).report();
        assert!(byte.rf_read.gated_fraction() > half.rf_read.gated_fraction());
        assert!(byte.pc_increment.gated_fraction() > half.pc_increment.gated_fraction());
        assert!(half.rf_read.gated_fraction() > 0.0);
    }

    #[test]
    fn leaky_nodes_reward_the_narrow_workload() {
        let report = analyze(counter_loop, AnalyzerConfig::paper_byte()).report();
        let dynamic_only = ProcessNode::Paper180nm.model();
        let modern = ProcessNode::Modern7nm.model();
        assert_eq!(
            dynamic_only.saving(&report),
            modern.dynamic_saving(&report),
            "leakage weights must not disturb the dynamic term"
        );
        assert!(modern.leakage_saving(&report) > 0.2);
    }

    #[test]
    fn wide_value_workload_saves_little() {
        let wide = |b: &mut ProgramBuilder| {
            b.li(reg::T0, 0x7654_3210);
            b.li(reg::T1, 0x0123_4567u32 as i32);
            b.li(reg::T2, 0);
            b.li(reg::T5, 500);
            b.label("loop");
            b.xor(reg::T3, reg::T0, reg::T1);
            b.addu(reg::T4, reg::T3, reg::T0);
            b.addiu(reg::T2, reg::T2, 1);
            b.bne(reg::T2, reg::T5, "loop");
            b.halt();
        };
        let narrow = analyze(counter_loop, AnalyzerConfig::paper_byte()).report();
        let wide = analyze(wide, AnalyzerConfig::paper_byte()).report();
        assert!(narrow.rf_read.saving() > wide.rf_read.saving());
        assert!(narrow.alu.saving() > wide.alu.saving());
    }
}
