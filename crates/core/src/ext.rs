//! Extension-bit schemes and significance classification (§2.1 of the paper).
//!
//! A 32-bit word is *significance compressed* by keeping only the bytes that
//! carry numeric information and recording, in a few extension bits, which
//! byte positions are mere sign extensions. The paper studies three schemes:
//!
//! * **two-bit**: the extension bits count how many high-order bytes are sign
//!   extensions (0–3). Only "prefix" patterns are expressible.
//! * **three-bit**: one bit per upper byte; bit *i* set means byte *i* equals
//!   the sign extension of byte *i−1*. "Internal" insignificant bytes (as in
//!   the address `10 00 00 09`) become compressible.
//! * **halfword**: a single bit that says whether the upper halfword is the
//!   sign extension of the lower halfword (16-bit granularity, Table 6).
//!
//! The low-order byte (or halfword) is always stored.

use std::fmt;

/// Number of bytes in a machine word.
pub const WORD_BYTES: usize = 4;

/// An extension-bit scheme (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtScheme {
    /// Two extension bits encoding the number of sign-extension bytes.
    TwoBit,
    /// Three extension bits, one per upper byte (the paper's primary scheme).
    #[default]
    ThreeBit,
    /// One extension bit at halfword (16-bit) granularity.
    Halfword,
}

impl ExtScheme {
    /// All schemes, for sweeps.
    pub const ALL: &'static [ExtScheme] =
        &[ExtScheme::TwoBit, ExtScheme::ThreeBit, ExtScheme::Halfword];

    /// Number of extension bits stored per 32-bit word.
    #[must_use]
    pub fn overhead_bits(self) -> u32 {
        match self {
            ExtScheme::TwoBit => 2,
            ExtScheme::ThreeBit => 3,
            ExtScheme::Halfword => 1,
        }
    }

    /// Storage granule in bytes (1 for the byte schemes, 2 for halfword).
    #[must_use]
    pub fn granule_bytes(self) -> u32 {
        match self {
            ExtScheme::TwoBit | ExtScheme::ThreeBit => 1,
            ExtScheme::Halfword => 2,
        }
    }

    /// Relative storage overhead of the extension bits (e.g. 3/32 ≈ 9 % for
    /// the three-bit scheme, as quoted in §2.1).
    #[must_use]
    pub fn overhead_fraction(self) -> f64 {
        f64::from(self.overhead_bits()) / 32.0
    }

    /// Stable machine-readable identifier, used in sweep reports and result
    /// cache keys.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            ExtScheme::TwoBit => "2bit",
            ExtScheme::ThreeBit => "3bit",
            ExtScheme::Halfword => "halfword",
        }
    }

    /// Parses an identifier as produced by [`ExtScheme::id`].
    #[must_use]
    pub fn parse(id: &str) -> Option<Self> {
        ExtScheme::ALL.iter().copied().find(|s| s.id() == id)
    }
}

impl fmt::Display for ExtScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExtScheme::TwoBit => "2-bit",
            ExtScheme::ThreeBit => "3-bit",
            ExtScheme::Halfword => "halfword",
        };
        f.write_str(name)
    }
}

/// The sign extension of a byte: `0x00` for non-negative, `0xff` for negative.
#[must_use]
pub fn sign_extension_of(byte: u8) -> u8 {
    if byte & 0x80 != 0 {
        0xff
    } else {
        0x00
    }
}

/// Splits a word into its four bytes, index 0 = least significant.
#[must_use]
pub fn word_bytes(value: u32) -> [u8; WORD_BYTES] {
    value.to_le_bytes()
}

/// The packed per-byte significance mask of `value` under `scheme`: bit *i*
/// set means byte *i* must be stored/operated on.
///
/// This is the branchless core every hot-path helper reduces to — no
/// `[bool; 4]` materialization, no per-byte loop. Byte 0 is always
/// significant; for the halfword scheme bytes 0 and 1 are always significant
/// and bytes 2 and 3 share one decision.
#[must_use]
#[inline]
pub fn sig_bits(value: u32, scheme: ExtScheme) -> u8 {
    match scheme {
        ExtScheme::ThreeBit => {
            // Byte i (1..=3) is significant iff it differs from the sign
            // extension of byte i-1. Build all three extension bytes at
            // once: spread the sign bits of bytes 0..=2 into full 0x00/0xff
            // fill bytes (the per-lane multiply cannot carry across lanes),
            // shift them up a lane and XOR — a nonzero upper byte of `diff`
            // marks a significant byte.
            let fill = (((value & 0x0080_8080) >> 7) * 0xff) << 8;
            let diff = value ^ fill;
            1 | (u8::from(diff & 0x0000_ff00 != 0) << 1)
                | (u8::from(diff & 0x00ff_0000 != 0) << 2)
                | (u8::from(diff & 0xff00_0000 != 0) << 3)
        }
        ExtScheme::TwoBit => (1u8 << significant_bytes_prefix(value)) - 1,
        ExtScheme::Halfword => {
            let upper_sig = u8::from(value != ((value as u16) as i16 as i32 as u32));
            0b0011 | (0b1100 * upper_sig)
        }
    }
}

/// The per-byte significance mask of `value` under `scheme`, unpacked.
///
/// `mask[i]` is `true` when byte *i* must be stored/operated on. Byte 0 is
/// always significant; for the halfword scheme bytes 0 and 1 are always
/// significant and bytes 2 and 3 share one decision.
#[must_use]
pub fn sig_mask(value: u32, scheme: ExtScheme) -> [bool; WORD_BYTES] {
    let bits = sig_bits(value, scheme);
    [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0]
}

/// Number of significant granules (bytes or halfwords) of `value` under
/// `scheme`. For byte schemes the result is in 1..=4; for the halfword
/// scheme it is 2 or 4 (expressed in bytes).
#[must_use]
#[inline]
pub fn significant_bytes(value: u32, scheme: ExtScheme) -> u8 {
    sig_bits(value, scheme).count_ones() as u8
}

/// [`significant_bytes`] over four values at once — the shape the per-record
/// cost model wants (fetch word, two operands, result), wide enough for the
/// compiler to keep the whole batch in registers.
#[must_use]
#[inline]
pub fn significant_bytes_x4(values: [u32; WORD_BYTES], scheme: ExtScheme) -> [u8; WORD_BYTES] {
    values.map(|v| significant_bytes(v, scheme))
}

/// The minimal number of low-order bytes whose sign extension reproduces
/// `value` (the quantity encoded by the two-bit scheme).
#[must_use]
#[inline]
pub fn significant_bytes_prefix(value: u32) -> u8 {
    // Folding the sign away (negative values keep the prefix length of
    // their complement) leaves the question "how many bytes hold the
    // value's magnitude plus its sign bit", which is a leading-zeros count:
    // bit length + 1 sign bit, rounded up to whole bytes.
    let folded = value ^ (((value as i32) >> 31) as u32);
    let bits = 33 - folded.leading_zeros();
    bits.div_ceil(8) as u8
}

/// The encoded extension bits of `value` under `scheme`.
///
/// * two-bit: the count of sign-extension bytes (0–3),
/// * three-bit: bit *i−1* set when byte *i* is a sign extension of byte
///   *i−1* (bit 0 ↔ byte 1, bit 2 ↔ byte 3),
/// * halfword: bit 0 set when the upper halfword is insignificant.
#[must_use]
#[inline]
pub fn ext_bits(value: u32, scheme: ExtScheme) -> u8 {
    match scheme {
        ExtScheme::TwoBit => (WORD_BYTES as u8) - significant_bytes_prefix(value),
        ExtScheme::ThreeBit => (!sig_bits(value, scheme) >> 1) & 0b111,
        ExtScheme::Halfword => u8::from(sig_bits(value, scheme) & 0b0100 == 0),
    }
}

/// A significance-compressed word: only the significant bytes are stored,
/// together with the extension bits.
///
/// ```
/// use sigcomp::ext::{CompressedWord, ExtScheme};
/// let c = CompressedWord::compress(0x1000_0009, ExtScheme::ThreeBit);
/// assert_eq!(c.stored_bytes(), 2);                 // "10 - - 09"
/// assert_eq!(c.decompress(), 0x1000_0009);         // lossless
/// assert_eq!(c.stored_bits(), 2 * 8 + 3);          // plus the extension bits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompressedWord {
    scheme: ExtScheme,
    ext: u8,
    /// Significant bytes in ascending byte-position order; unused slots are 0.
    bytes: [u8; WORD_BYTES],
    len: u8,
}

impl CompressedWord {
    /// Compresses a 32-bit value.
    #[must_use]
    pub fn compress(value: u32, scheme: ExtScheme) -> Self {
        let mask = sig_mask(value, scheme);
        let all = word_bytes(value);
        let mut bytes = [0u8; WORD_BYTES];
        let mut len = 0usize;
        for i in 0..WORD_BYTES {
            if mask[i] {
                bytes[len] = all[i];
                len += 1;
            }
        }
        CompressedWord {
            scheme,
            ext: ext_bits(value, scheme),
            bytes,
            len: len as u8,
        }
    }

    /// The scheme the word was compressed under.
    #[must_use]
    pub fn scheme(&self) -> ExtScheme {
        self.scheme
    }

    /// The raw extension bits.
    #[must_use]
    pub fn ext(&self) -> u8 {
        self.ext
    }

    /// Number of bytes that are actually stored.
    #[must_use]
    pub fn stored_bytes(&self) -> u8 {
        self.len
    }

    /// Total storage in bits, including the extension bits.
    #[must_use]
    pub fn stored_bits(&self) -> u32 {
        u32::from(self.len) * 8 + self.scheme.overhead_bits()
    }

    /// Reconstructs the original 32-bit value.
    #[must_use]
    pub fn decompress(&self) -> u32 {
        let mut out = [0u8; WORD_BYTES];
        let mut next = 0usize;
        for (i, slot) in out.iter_mut().enumerate() {
            let significant = match self.scheme {
                ExtScheme::TwoBit => (i as u8) < (WORD_BYTES as u8) - self.ext,
                ExtScheme::ThreeBit => i == 0 || self.ext & (1 << (i - 1)) == 0,
                ExtScheme::Halfword => i < 2 || self.ext == 0,
            };
            if significant {
                *slot = self.bytes[next];
                next += 1;
            } else {
                // Byte i is the sign extension of the byte below it.
                *slot = 0; // placeholder, fixed up below
            }
        }
        // Fill in sign extensions now that lower bytes are known.
        for i in 1..WORD_BYTES {
            let significant = match self.scheme {
                ExtScheme::TwoBit => (i as u8) < (WORD_BYTES as u8) - self.ext,
                ExtScheme::ThreeBit => self.ext & (1 << (i - 1)) == 0,
                ExtScheme::Halfword => i < 2 || self.ext == 0,
            };
            if !significant {
                out[i] = sign_extension_of(out[i - 1]);
            }
        }
        u32::from_le_bytes(out)
    }
}

/// One of the eight significant-byte patterns of the three-bit scheme
/// (Table 1 of the paper).
///
/// The pattern is written most-significant byte first using the paper's
/// notation: `s` for a significant byte, `e` for a sign-extension byte. The
/// least-significant byte is always `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigPattern {
    /// Significance of bytes 1..=3 (index 0 ↔ byte 1).
    upper_sig: [bool; 3],
}

impl SigPattern {
    /// Classifies a value under the three-bit scheme.
    #[must_use]
    pub fn of(value: u32) -> Self {
        let mask = sig_mask(value, ExtScheme::ThreeBit);
        SigPattern {
            upper_sig: [mask[1], mask[2], mask[3]],
        }
    }

    /// Builds a pattern from its index (0..8), where bit *i* of the index set
    /// means byte *i+1* is significant.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < 8, "pattern index out of range");
        SigPattern {
            upper_sig: [index & 1 != 0, index & 2 != 0, index & 4 != 0],
        }
    }

    /// The index of this pattern (0..8), inverse of [`SigPattern::from_index`].
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.upper_sig[0])
            | usize::from(self.upper_sig[1]) << 1
            | usize::from(self.upper_sig[2]) << 2
    }

    /// All eight patterns in index order.
    pub fn all() -> impl Iterator<Item = SigPattern> {
        (0..8).map(SigPattern::from_index)
    }

    /// Number of significant bytes (1..=4, including the always-significant
    /// low byte).
    #[must_use]
    pub fn significant_bytes(self) -> u8 {
        1 + self.upper_sig.iter().filter(|&&b| b).count() as u8
    }

    /// Whether the pattern is expressible by the two-bit scheme (significant
    /// bytes form a contiguous prefix from the low byte).
    #[must_use]
    pub fn is_prefix_pattern(self) -> bool {
        // Once a byte is insignificant, all higher bytes must be too.
        let mut seen_ext = false;
        for &sig in &self.upper_sig {
            if seen_ext && sig {
                return false;
            }
            if !sig {
                seen_ext = true;
            }
        }
        true
    }

    /// The paper's notation, most significant byte first (e.g. `"eees"`).
    #[must_use]
    pub fn notation(self) -> String {
        let mut s = String::with_capacity(4);
        for i in (0..3).rev() {
            s.push(if self.upper_sig[i] { 's' } else { 'e' });
        }
        s.push('s');
        s
    }
}

impl fmt::Display for SigPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_three_bit() {
        // 00 00 00 04 -> only the low byte is significant ("eees").
        assert_eq!(significant_bytes(0x0000_0004, ExtScheme::ThreeBit), 1);
        assert_eq!(SigPattern::of(0x0000_0004).notation(), "eees");
        // FF FF F5 04 -> two significant bytes ("eess").
        assert_eq!(significant_bytes(0xffff_f504, ExtScheme::ThreeBit), 2);
        assert_eq!(SigPattern::of(0xffff_f504).notation(), "eess");
        // 10 00 00 09 -> "10 - - 09 : 011" (upper byte and low byte significant).
        assert_eq!(significant_bytes(0x1000_0009, ExtScheme::ThreeBit), 2);
        assert_eq!(ext_bits(0x1000_0009, ExtScheme::ThreeBit), 0b011);
        assert_eq!(SigPattern::of(0x1000_0009).notation(), "sees");
        // FF E7 00 04 -> "- E7 - 04 : 101".
        assert_eq!(significant_bytes(0xffe7_0004, ExtScheme::ThreeBit), 2);
        assert_eq!(ext_bits(0xffe7_0004, ExtScheme::ThreeBit), 0b101);
        assert_eq!(SigPattern::of(0xffe7_0004).notation(), "eses");
    }

    #[test]
    fn paper_examples_two_bit() {
        // 00 00 00 04 encoded as "- - - 04 : 11" (three sign-extension bytes).
        assert_eq!(ext_bits(0x0000_0004, ExtScheme::TwoBit), 3);
        assert_eq!(significant_bytes(0x0000_0004, ExtScheme::TwoBit), 1);
        // FF FF F5 04 encoded as "- - F5 04 : 10" (two sign-extension bytes).
        assert_eq!(ext_bits(0xffff_f504, ExtScheme::TwoBit), 2);
        assert_eq!(significant_bytes(0xffff_f504, ExtScheme::TwoBit), 2);
        // The "internal zeros" address needs all four bytes under two-bit.
        assert_eq!(significant_bytes(0x1000_0009, ExtScheme::TwoBit), 4);
    }

    #[test]
    fn halfword_granularity() {
        assert_eq!(significant_bytes(0x0000_1234, ExtScheme::Halfword), 2);
        assert_eq!(significant_bytes(0xffff_8000, ExtScheme::Halfword), 2);
        assert_eq!(significant_bytes(0x0001_0000, ExtScheme::Halfword), 4);
        assert_eq!(ext_bits(0x0000_0004, ExtScheme::Halfword), 1);
        assert_eq!(ext_bits(0x0001_0000, ExtScheme::Halfword), 0);
    }

    #[test]
    fn negative_small_values_compress_well() {
        assert_eq!(significant_bytes(0xffff_ffff, ExtScheme::ThreeBit), 1);
        assert_eq!(significant_bytes(0xffff_ffff, ExtScheme::TwoBit), 1);
        assert_eq!(significant_bytes(0xffff_ff80, ExtScheme::ThreeBit), 1);
        // 0x80 alone is *not* a one-byte value in two's complement (it would
        // sign-extend to 0xffffff80), so two bytes are needed.
        assert_eq!(significant_bytes(0x0000_0080, ExtScheme::ThreeBit), 2);
        assert_eq!(significant_bytes_prefix(0x0000_0080), 2);
    }

    #[test]
    fn compressed_word_roundtrips() {
        for &v in &[
            0u32,
            1,
            0x7f,
            0x80,
            0xff,
            0x100,
            0x7fff_ffff,
            0x8000_0000,
            0xffff_ffff,
            0x1000_0009,
            0xffe7_0004,
            0xdead_beef,
        ] {
            for &scheme in ExtScheme::ALL {
                let c = CompressedWord::compress(v, scheme);
                assert_eq!(c.decompress(), v, "value {v:#x} under {scheme}");
            }
        }
    }

    /// The pre-optimization reference implementations, kept verbatim so the
    /// branchless rewrites are pinned against them over a wide value sweep.
    mod reference {
        use super::super::*;

        pub fn sig_mask(value: u32, scheme: ExtScheme) -> [bool; WORD_BYTES] {
            let bytes = word_bytes(value);
            match scheme {
                ExtScheme::ThreeBit => {
                    let mut mask = [true; WORD_BYTES];
                    for i in 1..WORD_BYTES {
                        mask[i] = bytes[i] != sign_extension_of(bytes[i - 1]);
                    }
                    mask
                }
                ExtScheme::TwoBit => {
                    let n = significant_bytes_prefix(value) as usize;
                    let mut mask = [false; WORD_BYTES];
                    for (i, m) in mask.iter_mut().enumerate() {
                        *m = i < n;
                    }
                    mask
                }
                ExtScheme::Halfword => {
                    let upper_insignificant = value == ((value as u16) as i16 as i32 as u32);
                    [true, true, !upper_insignificant, !upper_insignificant]
                }
            }
        }

        pub fn significant_bytes_prefix(value: u32) -> u8 {
            for n in 1..WORD_BYTES as u32 {
                let shift = 32 - 8 * n;
                let truncated = ((value << shift) as i32 >> shift) as u32;
                if truncated == value {
                    return n as u8;
                }
            }
            WORD_BYTES as u8
        }
    }

    #[test]
    fn branchless_rewrites_match_the_reference_implementations() {
        let interesting = (0..=20u32)
            .flat_map(|b| {
                let base = 1u32 << (b % 32);
                [
                    base.wrapping_sub(1),
                    base,
                    base.wrapping_add(1),
                    !base,
                    base.wrapping_neg(),
                ]
            })
            .chain((0..200_000u32).map(|i| i.wrapping_mul(2_654_435_761)))
            .chain([0, 1, 0x7f, 0x80, 0xff, 0xffff_ffff, 0x8000_0000]);
        for v in interesting {
            assert_eq!(
                significant_bytes_prefix(v),
                reference::significant_bytes_prefix(v),
                "prefix of {v:#010x}"
            );
            for &scheme in ExtScheme::ALL {
                let expect = reference::sig_mask(v, scheme);
                assert_eq!(sig_mask(v, scheme), expect, "{v:#010x} under {scheme}");
                let bits = sig_bits(v, scheme);
                for (i, &sig) in expect.iter().enumerate() {
                    assert_eq!(bits & (1 << i) != 0, sig, "{v:#010x} byte {i} {scheme}");
                }
                assert_eq!(
                    significant_bytes(v, scheme),
                    expect.iter().filter(|&&b| b).count() as u8,
                    "{v:#010x} under {scheme}"
                );
            }
        }
    }

    #[test]
    fn batched_counts_match_the_scalar_helper() {
        let batch = [0x0000_0004, 0x1000_0009, 0xffe7_0004, 0xdead_beef];
        for &scheme in ExtScheme::ALL {
            let wide = significant_bytes_x4(batch, scheme);
            for (i, &v) in batch.iter().enumerate() {
                assert_eq!(wide[i], significant_bytes(v, scheme));
            }
        }
    }

    #[test]
    fn three_bit_never_needs_more_bytes_than_two_bit() {
        for v in (0..100_000u32).map(|i| i.wrapping_mul(2_654_435_761)) {
            assert!(
                significant_bytes(v, ExtScheme::ThreeBit)
                    <= significant_bytes(v, ExtScheme::TwoBit)
            );
        }
    }

    #[test]
    fn pattern_indexing_roundtrips() {
        for p in SigPattern::all() {
            assert_eq!(SigPattern::from_index(p.index()), p);
        }
        assert_eq!(SigPattern::all().count(), 8);
    }

    #[test]
    fn exactly_four_prefix_patterns() {
        let prefix: Vec<String> = SigPattern::all()
            .filter(|p| p.is_prefix_pattern())
            .map(super::SigPattern::notation)
            .collect();
        assert_eq!(prefix.len(), 4);
        for n in ["eees", "eess", "esss", "ssss"] {
            assert!(prefix.iter().any(|p| p == n), "missing {n}");
        }
    }

    #[test]
    fn scheme_overheads_match_paper() {
        assert_eq!(ExtScheme::TwoBit.overhead_bits(), 2);
        assert_eq!(ExtScheme::ThreeBit.overhead_bits(), 3);
        assert_eq!(ExtScheme::Halfword.overhead_bits(), 1);
        assert!((ExtScheme::ThreeBit.overhead_fraction() - 0.09375).abs() < 1e-12);
        assert!((ExtScheme::TwoBit.overhead_fraction() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(ExtScheme::ThreeBit.to_string(), "3-bit");
        assert_eq!(ExtScheme::TwoBit.to_string(), "2-bit");
        assert_eq!(ExtScheme::Halfword.to_string(), "halfword");
        assert_eq!(SigPattern::of(0).to_string(), "eees");
    }

    #[test]
    fn stored_bits_account_for_overhead() {
        let c = CompressedWord::compress(0x4, ExtScheme::ThreeBit);
        assert_eq!(c.stored_bits(), 11);
        let c2 = CompressedWord::compress(0xdead_beef, ExtScheme::ThreeBit);
        assert_eq!(c2.stored_bits(), 35);
        let h = CompressedWord::compress(0x4, ExtScheme::Halfword);
        assert_eq!(h.stored_bits(), 17);
    }
}
