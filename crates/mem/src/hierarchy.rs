//! The two-level memory hierarchy of the paper's experimental framework.

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::stats::HierarchyStats;
use crate::tlb::Tlb;

/// The kind of data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store (write-allocate).
    Store,
}

/// The level that satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Satisfied by the L1 cache.
    L1,
    /// Satisfied by the unified L2.
    L2,
    /// Went all the way to main memory.
    Memory,
}

/// The result of presenting one access to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// Total latency in cycles, including TLB miss penalty if any.
    pub latency: u32,
    /// Which level satisfied the access.
    pub level: HitLevel,
    /// Whether the L1 hit.
    pub l1_hit: bool,
    /// Whether the TLB hit.
    pub tlb_hit: bool,
    /// Line-aligned address filled into the L1 on a miss (the line whose
    /// extension bits must be regenerated, per §2.6 of the paper).
    pub l1_fill: Option<u32>,
}

/// Split L1 instruction/data caches, a unified L2, and split TLBs.
///
/// Writebacks of dirty victims are charged to L2 occupancy but, as in most
/// trace-driven studies, do not add latency to the triggering access.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy with the given configuration.
    #[must_use]
    pub fn new(config: &HierarchyConfig) -> Self {
        MemoryHierarchy {
            config: *config,
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            memory_accesses: 0,
        }
    }

    /// The configuration the hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Line size of the L1 caches in bytes.
    #[must_use]
    pub fn l1_line_bytes(&self) -> u32 {
        self.config.il1.line_bytes
    }

    /// Fetches an instruction word.
    pub fn fetch_instruction(&mut self, addr: u32) -> MemResult {
        let tlb_latency = self.itlb.access(addr);
        let tlb_hit = tlb_latency <= self.config.itlb.hit_latency;
        let mut result = self.cached_access(addr, false, true);
        if !tlb_hit {
            result.latency += self.config.itlb.miss_penalty;
        }
        result.tlb_hit = tlb_hit;
        result
    }

    /// Performs a data-side load or store.
    pub fn data_access(&mut self, addr: u32, kind: AccessKind) -> MemResult {
        let tlb_latency = self.dtlb.access(addr);
        let tlb_hit = tlb_latency <= self.config.dtlb.hit_latency;
        let mut result = self.cached_access(addr, kind == AccessKind::Store, false);
        if !tlb_hit {
            result.latency += self.config.dtlb.miss_penalty;
        }
        result.tlb_hit = tlb_hit;
        result
    }

    fn cached_access(&mut self, addr: u32, is_write: bool, instruction: bool) -> MemResult {
        let (l1, l1_cfg) = if instruction {
            (&mut self.il1, &self.config.il1)
        } else {
            (&mut self.dl1, &self.config.dl1)
        };

        let l1_access = l1.access(addr, is_write);
        if l1_access.hit {
            return MemResult {
                latency: l1_cfg.hit_latency,
                level: HitLevel::L1,
                l1_hit: true,
                tlb_hit: true,
                l1_fill: None,
            };
        }

        // L1 miss: the fill request goes to the unified L2. Dirty L1 victims
        // are written back into the L2.
        if let Some(victim) = l1_access.evicted {
            if victim.dirty {
                self.l2.access(victim.line_addr, true);
            }
        }

        let l2_access = self.l2.access(addr, false);
        let (latency, level) = if l2_access.hit {
            (
                l1_cfg.hit_latency + self.config.l2.hit_latency,
                HitLevel::L2,
            )
        } else {
            self.memory_accesses += 1;
            // Dirty L2 victims go to memory; modelled as occupancy only.
            (
                l1_cfg.hit_latency + self.config.l2.hit_latency + self.config.memory_latency,
                HitLevel::Memory,
            )
        };

        MemResult {
            latency,
            level,
            l1_hit: false,
            tlb_hit: true,
            l1_fill: Some(l1_access.line_addr),
        }
    }

    /// A snapshot of all counters.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            il1: *self.il1.stats(),
            dl1: *self.dl1.stats(),
            l2: *self.l2.stats(),
            itlb: *self.itlb.stats(),
            dtlb: *self.dtlb.stats(),
            memory_accesses: self.memory_accesses,
        }
    }

    /// Resets all counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.memory_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&HierarchyConfig::paper())
    }

    #[test]
    fn instruction_stream_has_high_hit_rate() {
        let mut m = hierarchy();
        // Two passes over a 1 KB loop body.
        for _ in 0..2 {
            for pc in (0x0040_0000u32..0x0040_0400).step_by(4) {
                m.fetch_instruction(pc);
            }
        }
        let s = m.stats();
        assert_eq!(s.il1.accesses, 512);
        // First pass misses once per 32-byte line (32 lines), second pass hits.
        assert_eq!(s.il1.misses, 32);
        assert!(s.il1.miss_rate() < 0.1);
    }

    #[test]
    fn latencies_follow_paper_parameters() {
        let mut m = hierarchy();
        let cold = m.data_access(0x1000_0000, AccessKind::Load);
        // 1 (L1) + 6 (L2) + 30 (memory) plus a 30-cycle D-TLB miss.
        assert_eq!(cold.level, HitLevel::Memory);
        assert_eq!(cold.latency, 1 + 6 + 30 + 30);
        assert!(!cold.tlb_hit);

        let warm = m.data_access(0x1000_0004, AccessKind::Load);
        assert_eq!(warm.level, HitLevel::L1);
        assert_eq!(warm.latency, 1);
        assert!(warm.tlb_hit);
    }

    #[test]
    fn l2_catches_l1_conflict_misses() {
        let mut m = hierarchy();
        m.data_access(0x1000_0000, AccessKind::Load);
        // 8 KB away: conflicts in the direct-mapped L1 but fits in the 4-way L2.
        m.data_access(0x1000_2000, AccessKind::Load);
        let back = m.data_access(0x1000_0000, AccessKind::Load);
        assert_eq!(back.level, HitLevel::L2);
        assert_eq!(back.latency, 1 + 6);
    }

    #[test]
    fn fills_report_line_addresses() {
        let mut m = hierarchy();
        let r = m.data_access(0x1000_0013, AccessKind::Store);
        assert_eq!(r.l1_fill, Some(0x1000_0000));
        let r2 = m.data_access(0x1000_0017, AccessKind::Store);
        assert_eq!(r2.l1_fill, None);
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut m = hierarchy();
        m.data_access(0x1000_0000, AccessKind::Load);
        m.reset_stats();
        assert_eq!(m.stats().dl1.accesses, 0);
        let r = m.data_access(0x1000_0000, AccessKind::Load);
        assert!(r.l1_hit, "contents must survive a stats reset");
    }

    #[test]
    fn dirty_l1_victims_are_written_back_to_l2() {
        let mut m = hierarchy();
        m.data_access(0x1000_0000, AccessKind::Store);
        // Evict the dirty line with a conflicting address (8 KB stride).
        m.data_access(0x1000_2000, AccessKind::Load);
        assert_eq!(m.stats().dl1.writebacks, 1);
        // The writeback shows up as an L2 write access.
        assert!(m.stats().l2.writes >= 1);
    }
}
