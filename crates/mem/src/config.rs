//! Configuration of caches, TLBs and the full hierarchy.

/// Geometry and timing of a single cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub associativity: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 8 KB, direct-mapped, 32-byte lines,
    /// 1-cycle hit.
    #[must_use]
    pub fn paper_l1() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            associativity: 1,
            line_bytes: 32,
            hit_latency: 1,
        }
    }

    /// The paper's L2 configuration: 64 KB, 4-way, 32-byte lines, 6-cycle hit.
    #[must_use]
    pub fn paper_l2() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            associativity: 4,
            line_bytes: 32,
            hit_latency: 6,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// line size × associativity, or any parameter is zero or not a power of
    /// two where required).
    #[must_use]
    pub fn num_sets(&self) -> u32 {
        assert!(self.size_bytes > 0 && self.line_bytes > 0 && self.associativity > 0);
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines * self.line_bytes,
            self.size_bytes,
            "size must be a multiple of the line size"
        );
        let sets = lines / self.associativity;
        assert_eq!(
            sets * self.associativity,
            lines,
            "line count must be a multiple of the associativity"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }

    /// Number of tag bits for a 32-bit address space.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        32 - self.num_sets().trailing_zeros() - self.line_bytes.trailing_zeros()
    }
}

/// Geometry and timing of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub associativity: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
    /// Hit latency in cycles (overlapped with the cache access; kept for
    /// completeness).
    pub hit_latency: u32,
    /// Miss penalty in cycles.
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// The paper's I-TLB: 16 entries, 4-way, 1-cycle hit, 30-cycle miss.
    #[must_use]
    pub fn paper_itlb() -> Self {
        TlbConfig {
            entries: 16,
            associativity: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_penalty: 30,
        }
    }

    /// The paper's D-TLB: 32 entries, 4-way, 1-cycle hit, 30-cycle miss.
    #[must_use]
    pub fn paper_dtlb() -> Self {
        TlbConfig {
            entries: 32,
            associativity: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_penalty: 30,
        }
    }
}

/// Configuration of the full two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub il1: CacheConfig,
    /// L1 data cache.
    pub dl1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Latency of a main-memory access (an L2 miss), in cycles.
    pub memory_latency: u32,
}

impl HierarchyConfig {
    /// The exact configuration used in the paper's experimental framework.
    #[must_use]
    pub fn paper() -> Self {
        HierarchyConfig {
            il1: CacheConfig::paper_l1(),
            dl1: CacheConfig::paper_l1(),
            l2: CacheConfig::paper_l2(),
            itlb: TlbConfig::paper_itlb(),
            dtlb: TlbConfig::paper_dtlb(),
            memory_latency: 30,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.tag_bits(), 32 - 8 - 5);
    }

    #[test]
    fn paper_l2_geometry() {
        let c = CacheConfig::paper_l2();
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.tag_bits(), 32 - 9 - 5);
    }

    #[test]
    fn paper_hierarchy_matches_section_3() {
        let h = HierarchyConfig::paper();
        assert_eq!(h.il1.size_bytes, 8 * 1024);
        assert_eq!(h.il1.associativity, 1);
        assert_eq!(h.l2.size_bytes, 64 * 1024);
        assert_eq!(h.l2.associativity, 4);
        assert_eq!(h.l2.hit_latency, 6);
        assert_eq!(h.memory_latency, 30);
        assert_eq!(h.itlb.entries, 16);
        assert_eq!(h.dtlb.entries, 32);
        assert_eq!(HierarchyConfig::default(), h);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn inconsistent_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 3000,
            associativity: 1,
            line_bytes: 24,
            hit_latency: 1,
        };
        let _ = c.num_sets();
    }
}
