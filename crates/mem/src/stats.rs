//! Access counters for caches, TLBs and the hierarchy.

/// Counters for a single cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Write accesses (subset of `accesses`).
    pub writes: u64,
    /// Lines filled from the next level.
    pub fills: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Counters for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations.
    pub accesses: u64,
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss rate in [0, 1]; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Counters for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 instruction-cache counters.
    pub il1: CacheStats,
    /// L1 data-cache counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Instruction-TLB counters.
    pub itlb: TlbStats,
    /// Data-TLB counters.
    pub dtlb: TlbStats,
    /// Accesses that had to go to main memory.
    pub memory_accesses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rates_handle_zero_accesses() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        assert_eq!(TlbStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn miss_rate_is_fractional() {
        let s = CacheStats {
            accesses: 10,
            hits: 8,
            misses: 2,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() - 0.2).abs() < 1e-12);
    }
}
