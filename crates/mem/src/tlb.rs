//! A set-associative TLB model.

use crate::config::TlbConfig;
use crate::stats::TlbStats;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    vpn_tag: u32,
    lru: u64,
}

/// A translation lookaside buffer.
///
/// Only reach/locality is modelled: translations are identity-mapped, so a
/// lookup returns whether the page was resident and how many cycles the
/// translation cost.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: Vec<Vec<Entry>>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `associativity`, or if the
    /// resulting set count or the page size is not a power of two.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0 && config.associativity > 0);
        assert_eq!(config.entries % config.associativity, 0);
        let sets = config.entries / config.associativity;
        assert!(
            sets.is_power_of_two(),
            "TLB set count must be a power of two"
        );
        assert!(config.page_bytes.is_power_of_two());
        Tlb {
            config,
            sets: vec![vec![Entry::default(); config.associativity as usize]; sets as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// The TLB configuration.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets the statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let vpn = addr / self.config.page_bytes;
        let sets = self.config.entries / self.config.associativity;
        ((vpn % sets) as usize, vpn / sets)
    }

    /// Translates `addr`, filling the entry on a miss. Returns the latency in
    /// cycles (hit latency or miss penalty).
    pub fn access(&mut self, addr: u32) -> u32 {
        self.clock += 1;
        let (index, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[index];
        self.stats.accesses += 1;

        if let Some(e) = set.iter_mut().find(|e| e.valid && e.vpn_tag == tag) {
            e.lru = self.clock;
            self.stats.hits += 1;
            return self.config.hit_latency;
        }

        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("sets are never empty");
        victim.valid = true;
        victim.vpn_tag = tag;
        victim.lru = self.clock;
        self.config.miss_penalty
    }

    /// Probes without updating state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].iter().any(|e| e.valid && e.vpn_tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new(TlbConfig::paper_itlb());
        assert_eq!(t.access(0x0040_0000), 30);
        assert_eq!(t.access(0x0040_0ffc), 1); // same page
        assert_eq!(t.access(0x0040_1000), 30); // next page
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn capacity_evicts_lru_pages() {
        let cfg = TlbConfig {
            entries: 4,
            associativity: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_penalty: 30,
        };
        let mut t = Tlb::new(cfg);
        for p in 0..4u32 {
            t.access(p * 4096);
        }
        t.access(0); // refresh page 0
        t.access(4 * 4096); // evicts page 1 (LRU)
        assert!(t.probe(0));
        assert!(!t.probe(4096));
    }

    #[test]
    fn paper_dtlb_parameters() {
        let t = Tlb::new(TlbConfig::paper_dtlb());
        assert_eq!(t.config().entries, 32);
        assert_eq!(t.config().associativity, 4);
    }

    #[test]
    #[should_panic(expected = "left == right")]
    fn inconsistent_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 6,
            associativity: 4,
            page_bytes: 4096,
            hit_latency: 1,
            miss_penalty: 30,
        });
    }
}
