//! A set-associative, write-back, write-allocate cache model with true-LRU
//! replacement.

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// The outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// The line-aligned address that was (or now is) resident.
    pub line_addr: u32,
    /// A dirty line that had to be evicted to make room, if any.
    pub evicted: Option<EvictedLine>,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned address of the victim.
    pub line_addr: u32,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Larger value = more recently used.
    lru: u64,
}

/// A single level of cache.
///
/// The model tracks tags, validity, dirtiness and LRU order only — data
/// contents live in the interpreter's memory image. Accesses that miss
/// allocate the line (write-allocate) and report the victim so callers can
/// model writeback traffic.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        Cache {
            config,
            sets: vec![vec![Line::default(); config.associativity as usize]; sets as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the access statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr / self.config.line_bytes;
        let sets = self.config.num_sets();
        ((line % sets) as usize, line / sets)
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Probes the cache without updating state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access, allocating on a miss.
    ///
    /// `is_write` marks the line dirty on a hit or after allocation.
    pub fn access(&mut self, addr: u32, is_write: bool) -> CacheAccess {
        self.clock += 1;
        let (index, tag) = self.index_and_tag(addr);
        let line_addr = self.line_addr(addr);
        let set = &mut self.sets[index];

        self.stats.accesses += 1;
        if is_write {
            self.stats.writes += 1;
        }

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                line_addr,
                evicted: None,
            };
        }

        // Miss: pick the victim (an invalid way if possible, else true LRU).
        self.stats.misses += 1;
        self.stats.fills += 1;
        let sets = self.config.num_sets();
        let line_bytes = self.config.line_bytes;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("sets are never empty");

        let evicted = if victim.valid {
            let victim_line = (victim.tag * sets + index as u32) * line_bytes;
            let dirty = victim.dirty;
            if dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                line_addr: victim_line,
                dirty,
            })
        } else {
            None
        };

        victim.valid = true;
        victim.dirty = is_write;
        victim.tag = tag;
        victim.lru = self.clock;

        CacheAccess {
            hit: false,
            line_addr,
            evicted,
        }
    }

    /// Invalidates every line (statistics are preserved).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes.
        Cache::new(CacheConfig {
            size_bytes: 128,
            associativity: 2,
            line_bytes: 16,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x104, false).hit);
        assert!(c.access(0x10f, false).hit);
        assert!(!c.access(0x110, false).hit);
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_replacement_within_a_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 64).
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // touch 0x000 so 0x040 becomes LRU
        let res = c.access(0x080, false); // evicts 0x040
        assert_eq!(
            res.evicted,
            Some(EvictedLine {
                line_addr: 0x040,
                dirty: false
            })
        );
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, false);
        c.access(0x080, false); // evicts dirty 0x000
        let evictions: u64 = c.stats().writebacks;
        assert_eq!(evictions, 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            associativity: 1,
            line_bytes: 16,
            hit_latency: 1,
        });
        assert!(!c.access(0x00, false).hit);
        assert!(!c.access(0x40, false).hit); // same set, conflict
        assert!(!c.access(0x00, false).hit); // thrash
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0x000, false);
        let before = c.stats().accesses;
        assert!(c.probe(0x000));
        assert!(!c.probe(0x200));
        assert_eq!(c.stats().accesses, before);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = tiny();
        c.access(0x000, true);
        c.flush();
        assert!(!c.probe(0x000));
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn paper_l1_behaves_like_8kb_direct_mapped() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        assert!(!c.access(0x0000, false).hit);
        assert!(c.access(0x001c, false).hit); // same 32-byte line
        assert!(!c.access(0x2000, false).hit); // 8 KB away: same set, conflict
        assert!(!c.access(0x0000, false).hit);
    }
}
