//! # sigcomp-mem
//!
//! Memory-hierarchy substrate for the significance-compression study: caches,
//! TLBs and a two-level hierarchy configured with the parameters of the paper
//! (§3, *Experimental Framework*):
//!
//! * split 8 KB direct-mapped L1 instruction and data caches, 32-byte lines,
//!   1-cycle hit,
//! * unified 64 KB 4-way L2, 32-byte lines, 6-cycle hit, 30-cycle miss,
//! * 16-entry 4-way I-TLB and 32-entry 4-way D-TLB, 1-cycle hit, 30-cycle
//!   miss.
//!
//! The hierarchy is trace-driven: callers present instruction-fetch and data
//! addresses and get back a latency in cycles plus structural information
//! (which level hit, whether a line was filled). Byte-level *activity*
//! accounting — how many data-array bytes the access had to touch once
//! significance compression gates the rest off — is the business of the
//! `sigcomp` core crate; this crate reports the raw events it needs.
//!
//! # Example
//!
//! ```
//! use sigcomp_mem::{HierarchyConfig, MemoryHierarchy, AccessKind};
//!
//! let mut mem = MemoryHierarchy::new(&HierarchyConfig::paper());
//! let first = mem.data_access(0x1000_0000, AccessKind::Load);
//! assert!(!first.l1_hit);                 // cold miss
//! let second = mem.data_access(0x1000_0004, AccessKind::Load);
//! assert!(second.l1_hit);                 // same 32-byte line
//! assert!(second.latency < first.latency);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod cache;
mod config;
mod hierarchy;
mod stats;
mod tlb;

pub use cache::{Cache, CacheAccess, EvictedLine};
pub use config::{CacheConfig, HierarchyConfig, TlbConfig};
pub use hierarchy::{AccessKind, HitLevel, MemResult, MemoryHierarchy};
pub use stats::{CacheStats, HierarchyStats, TlbStats};
pub use tlb::Tlb;
