//! Self-timed benches that regenerate the paper's tables on scaled-down
//! workloads. One bench per table, named after it, so
//! `cargo bench -p sigcomp-bench --bench tables table5` times exactly the
//! activity study behind Table 5.
//!
//! No external bench framework is vendored in this environment, so this is a
//! `harness = false` binary that times each scenario with
//! [`sigcomp_bench::time_scenario`].

use sigcomp::alu::case3_table;
use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::pc::pc_update_table;
use sigcomp_bench::{activity_study, merged_stats, time_scenario};
use sigcomp_workloads::{suite, WorkloadSize};
use std::hint::black_box;

fn main() {
    let filter = std::env::args().nth(1);
    let filter = filter.as_deref().filter(|a| !a.starts_with("--"));

    let benchmarks = suite(WorkloadSize::Tiny);

    time_scenario("table1_patterns", filter, || {
        let mut stats = sigcomp::SigStats::new();
        for bench in &benchmarks {
            bench
                .run_each(|rec| stats.observe(rec))
                .expect("kernel runs");
        }
        black_box(stats.pattern_table());
    });

    time_scenario("table2_pc", filter, || {
        black_box(pc_update_table());
    });

    time_scenario("table3_functs", filter, || {
        let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_byte());
        black_box(merged_stats(&rows));
    });

    time_scenario("table4_case3", filter, || {
        black_box(case3_table());
    });

    time_scenario("table5_byte_activity", filter, || {
        black_box(activity_study(
            WorkloadSize::Tiny,
            &AnalyzerConfig::paper_byte(),
        ));
    });

    time_scenario("table6_halfword_activity", filter, || {
        black_box(activity_study(
            WorkloadSize::Tiny,
            &AnalyzerConfig::paper_halfword(),
        ));
    });

    time_scenario("analyzer_single_kernel", filter, || {
        let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
        benchmarks[0]
            .run_each(|rec| analyzer.observe(rec))
            .expect("kernel runs");
        black_box(analyzer.report());
    });
}
