//! Criterion benches that regenerate the paper's tables on scaled-down
//! workloads. One bench per table, named after it, so `cargo bench table5`
//! times exactly the activity study behind Table 5.

use criterion::{criterion_group, criterion_main, Criterion};
use sigcomp::alu::case3_table;
use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::pc::pc_update_table;
use sigcomp_bench::{activity_study, merged_stats};
use sigcomp_workloads::{suite, WorkloadSize};
use std::hint::black_box;

fn bench_table1_patterns(c: &mut Criterion) {
    let benchmarks = suite(WorkloadSize::Tiny);
    c.bench_function("table1_patterns", |b| {
        b.iter(|| {
            let mut stats = sigcomp::SigStats::new();
            for bench in &benchmarks {
                bench
                    .run_each(|rec| stats.observe(rec))
                    .expect("kernel runs");
            }
            black_box(stats.pattern_table())
        });
    });
}

fn bench_table2_pc(c: &mut Criterion) {
    c.bench_function("table2_pc", |b| {
        b.iter(|| black_box(pc_update_table()));
    });
}

fn bench_table3_funct(c: &mut Criterion) {
    let benchmarks = suite(WorkloadSize::Tiny);
    c.bench_function("table3_funct", |b| {
        b.iter(|| {
            let mut stats = sigcomp::SigStats::new();
            for bench in &benchmarks {
                bench
                    .run_each(|rec| stats.observe(rec))
                    .expect("kernel runs");
            }
            black_box(stats.funct_table())
        });
    });
}

fn bench_table4_alu(c: &mut Criterion) {
    c.bench_function("table4_alu", |b| {
        b.iter(|| black_box(case3_table()));
    });
}

fn bench_table5_activity(c: &mut Criterion) {
    let benchmarks = suite(WorkloadSize::Tiny);
    c.bench_function("table5_activity", |b| {
        b.iter(|| {
            let mut reports = Vec::new();
            for bench in &benchmarks {
                let mut analyzer = TraceAnalyzer::new(AnalyzerConfig::paper_byte());
                bench
                    .run_each(|rec| analyzer.observe(rec))
                    .expect("kernel runs");
                reports.push(analyzer.report());
            }
            black_box(reports)
        });
    });
}

fn bench_table6_halfword(c: &mut Criterion) {
    c.bench_function("table6_halfword", |b| {
        b.iter(|| {
            let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_halfword());
            black_box(merged_stats(&rows))
        });
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1_patterns,
        bench_table2_pc,
        bench_table3_funct,
        bench_table4_alu,
        bench_table5_activity,
        bench_table6_halfword,
}
criterion_main!(tables);
