//! Criterion benches that regenerate the paper's CPI figures on scaled-down
//! workloads: one bench per figure, plus the §5 bottleneck study.

use criterion::{criterion_group, criterion_main, Criterion};
use sigcomp_bench::{cpi_for, figure_orgs};
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim};
use sigcomp_workloads::{suite, WorkloadSize};
use std::hint::black_box;

fn bench_figure(c: &mut Criterion, name: &str, figure_id: u32) {
    let benchmarks = suite(WorkloadSize::Tiny);
    let kinds = figure_orgs(figure_id);
    c.bench_function(name, |b| {
        b.iter(|| {
            let rows: Vec<_> = benchmarks
                .iter()
                .map(|bench| cpi_for(bench, &kinds))
                .collect();
            black_box(rows)
        });
    });
}

fn bench_fig4_byte_serial(c: &mut Criterion) {
    bench_figure(c, "fig4_byte_serial", 4);
}

fn bench_fig6_semi_parallel(c: &mut Criterion) {
    bench_figure(c, "fig6_semi_parallel", 6);
}

fn bench_fig8_skewed(c: &mut Criterion) {
    bench_figure(c, "fig8_skewed", 8);
}

fn bench_fig10_parallel(c: &mut Criterion) {
    bench_figure(c, "fig10_parallel", 10);
}

fn bench_bottleneck_byte_serial(c: &mut Criterion) {
    let benchmarks = suite(WorkloadSize::Tiny);
    c.bench_function("bottleneck_byte_serial", |b| {
        b.iter(|| {
            let org = Organization::new(OrgKind::ByteSerial);
            let mut results = Vec::new();
            for bench in &benchmarks {
                let mut sim = PipelineSim::new(org.clone());
                bench.run_each(|rec| sim.observe(rec)).expect("kernel runs");
                results.push(sim.finish());
            }
            black_box(results)
        });
    });
}

fn bench_ablation_branch_prediction(c: &mut Criterion) {
    // The paper's future-work item: how much of the serial organizations'
    // loss is branch stalls rather than narrow datapaths.
    let benchmarks = suite(WorkloadSize::Tiny);
    c.bench_function("ablation_branch_prediction", |b| {
        b.iter(|| {
            let mut results = Vec::new();
            for bench in &benchmarks {
                let mut sim = PipelineSim::new(Organization::new(OrgKind::ByteSerial))
                    .with_branch_prediction(1024);
                bench.run_each(|rec| sim.observe(rec)).expect("kernel runs");
                results.push(sim.finish());
            }
            black_box(results)
        });
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig4_byte_serial,
        bench_fig6_semi_parallel,
        bench_fig8_skewed,
        bench_fig10_parallel,
        bench_bottleneck_byte_serial,
        bench_ablation_branch_prediction,
}
criterion_main!(figures);
