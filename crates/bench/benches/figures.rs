//! Self-timed benches that regenerate the paper's CPI figures on scaled-down
//! workloads: one bench per figure, plus the §5 bottleneck study and the
//! branch-prediction ablation.
//!
//! No external bench framework is vendored in this environment, so these are
//! `harness = false` binaries that time each scenario with
//! [`sigcomp_bench::time_scenario`] and print a compact table. Run with
//! `cargo bench -p sigcomp-bench`; pass a substring to run matching benches
//! only.

use sigcomp_bench::{cpi_for, figure_orgs, time_scenario};
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim};
use sigcomp_workloads::{suite, WorkloadSize};
use std::hint::black_box;

fn bench_figure(name: &str, filter: Option<&str>, figure_id: u32) {
    let benchmarks = suite(WorkloadSize::Tiny);
    let kinds = figure_orgs(figure_id);
    time_scenario(name, filter, || {
        let rows: Vec<_> = benchmarks
            .iter()
            .map(|bench| cpi_for(bench, &kinds))
            .collect();
        black_box(rows);
    });
}

fn main() {
    let filter = std::env::args().nth(1);
    let filter = filter.as_deref().filter(|a| !a.starts_with("--"));

    bench_figure("fig4_byte_serial", filter, 4);
    bench_figure("fig6_semi_parallel", filter, 6);
    bench_figure("fig8_skewed", filter, 8);
    bench_figure("fig10_parallel", filter, 10);

    let benchmarks = suite(WorkloadSize::Tiny);

    time_scenario("bottleneck_byte_serial", filter, || {
        let org = Organization::new(OrgKind::ByteSerial);
        let mut results = Vec::new();
        for bench in &benchmarks {
            let mut sim = PipelineSim::new(org.clone());
            bench.run_each(|rec| sim.observe(rec)).expect("kernel runs");
            results.push(sim.finish());
        }
        black_box(results);
    });

    time_scenario("ablation_branch_prediction", filter, || {
        // The paper's future-work item: how much of the serial organizations'
        // loss is branch stalls rather than narrow datapaths.
        let mut results = Vec::new();
        for bench in &benchmarks {
            let mut sim = PipelineSim::new(Organization::new(OrgKind::ByteSerial))
                .with_branch_prediction(1024);
            bench.run_each(|rec| sim.observe(rec)).expect("kernel runs");
            results.push(sim.finish());
        }
        black_box(results);
    });
}
