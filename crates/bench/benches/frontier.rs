//! Self-timed benches for the sweep-reporting hot path: Pareto-frontier
//! extraction and table formatting over a synthetic population of
//! configuration points.
//!
//! The dominance scan is inherently O(n²) in the number of points; what this
//! pins is that each comparison works on *precomputed* per-point metrics —
//! re-deriving CPI, the energy savings and an allocated label string inside
//! the scan multiplied the constant by the population size all over again.
//! `cargo bench -p sigcomp-bench --bench frontier` runs it.

use sigcomp::{ActivityReport, ProcessNode, StageActivity};
use sigcomp_bench::time_scenario;
use sigcomp_explore::{frontier_table, pareto_frontier, ConfigPoint, MemProfile};
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::WorkloadSize;
use std::hint::black_box;

/// A deterministic synthetic population: every scheme-free axis combination
/// replicated with varied counters, the way a many-trace sweep aggregates.
fn population(n: usize) -> Vec<ConfigPoint> {
    let sizes = [
        WorkloadSize::Tiny,
        WorkloadSize::Default,
        WorkloadSize::Large,
    ];
    (0..n)
        .map(|i| {
            let orgs = OrgKind::ALL;
            let mems = MemProfile::ALL;
            // Splitmix-style spread, fixed seed: identical population every
            // run, no RNG dependency.
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17;
            let cycles = 1_000_000 + x % 900_000;
            let saved = 200_000 + x % 500_000;
            let gated = x % 800_000;
            ConfigPoint {
                scheme: sigcomp::ExtScheme::ALL[i % 3],
                org: orgs[i % orgs.len()],
                mem: mems[(i / orgs.len()) % mems.len()],
                size: sizes[(i / (orgs.len() * mems.len())) % sizes.len()],
                workloads: 11,
                instructions: 800_000,
                cycles,
                activity: ActivityReport {
                    alu: StageActivity::with_gating(1_000_000 - saved, 1_000_000, gated, 1_000_000),
                    ..ActivityReport::default()
                },
            }
        })
        .collect()
}

fn main() {
    let filter = std::env::args().nth(1);
    let filter = filter.as_deref().filter(|a| !a.starts_with("--"));

    for &n in &[100usize, 600] {
        let points = population(n);
        let dynamic_only = ProcessNode::Paper180nm.model();
        let leaky = ProcessNode::Modern7nm.model();

        time_scenario(&format!("pareto_frontier_{n}"), filter, || {
            black_box(pareto_frontier(black_box(&points), &dynamic_only));
        });
        time_scenario(&format!("pareto_frontier_leaky_{n}"), filter, || {
            black_box(pareto_frontier(black_box(&points), &leaky));
        });
        time_scenario(&format!("frontier_table_{n}"), filter, || {
            black_box(frontier_table(black_box(&points), &dynamic_only));
        });
    }
}
