//! The golden trace corpus: deterministic `.sctrace` captures of seeded
//! kernels plus their expected replay metrics, checked into `tests/data/`.
//!
//! The corpus pins the trace format and the replay pipeline end to end:
//!
//! * the `.sctrace` bytes pin the encoder (recording a corpus workload must
//!   reproduce the checked-in file bit for bit),
//! * the `.expected.json` files pin the decoder *and* every model behind it
//!   (replaying the checked-in file must reproduce the checked-in analyzer
//!   and timing numbers exactly, for every extension scheme and
//!   organization).
//!
//! `repro trace golden <dir>` regenerates both; CI fails if regeneration
//! changes anything, so any drift in format or model semantics must arrive
//! with refreshed goldens and a bumped format/sweep version.

use sigcomp::ExtScheme;
use sigcomp_explore::{column_slug, simulate_trace, JobSpec, MemProfile, TraceInput, TraceSource};
use sigcomp_isa::tracefile::{self, TraceWriter};
use sigcomp_isa::Trace;
use sigcomp_pipeline::OrgKind;
use sigcomp_workloads::{find, WorkloadSize};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The corpus members: small, branchy, memory-heavy and arithmetic-heavy
/// kernels, recorded at [`WorkloadSize::Tiny`] so the checked-in files stay
/// a few tens of kilobytes each.
pub const GOLDEN_WORKLOADS: &[&str] = &["rawcaudio", "rawdaudio", "gsmencode", "pgp"];

/// The size every corpus trace is recorded at.
pub const GOLDEN_SIZE: WorkloadSize = WorkloadSize::Tiny;

/// Path of a corpus trace file.
#[must_use]
pub fn trace_path(dir: &Path, workload: &str) -> PathBuf {
    dir.join(format!("{workload}.sctrace"))
}

/// Path of a corpus expectation file.
#[must_use]
pub fn expected_path(dir: &Path, workload: &str) -> PathBuf {
    dir.join(format!("{workload}.expected.json"))
}

/// Records one corpus workload: the deterministic tiny-size execution of the
/// named seeded kernel.
///
/// # Errors
///
/// Names the workload if it does not exist or its kernel fails to run.
pub fn record_golden(workload: &str) -> Result<Trace, String> {
    let benchmark =
        find(workload, GOLDEN_SIZE).ok_or_else(|| format!("unknown workload '{workload}'"))?;
    benchmark
        .trace()
        .map_err(|e| format!("kernel {workload} failed: {e}"))
}

/// Serializes a corpus trace to `.sctrace` bytes (stable header metadata, so
/// regeneration is byte-reproducible).
///
/// # Errors
///
/// Propagates trace-encoding failures as a message.
pub fn golden_bytes(workload: &str, trace: &Trace) -> Result<Vec<u8>, String> {
    let mut writer = TraceWriter::new();
    writer.set_meta("source", workload);
    writer.set_meta("size", GOLDEN_SIZE.name());
    for rec in trace {
        writer
            .push(rec)
            .map_err(|e| format!("encoding {workload}: {e}"))?;
    }
    let mut bytes = Vec::new();
    writer
        .finish(&mut bytes)
        .map_err(|e| format!("encoding {workload}: {e}"))?;
    Ok(bytes)
}

/// The expected replay metrics of a trace, as deterministic JSON: for every
/// extension scheme, the per-stage activity report and the timing counters
/// of every pipeline organization (all integers — no rounding ambiguity).
///
/// # Errors
///
/// Propagates trace-digest failures as a message.
pub fn expected_json(name: &'static str, trace: &Trace) -> Result<String, String> {
    let digest = tracefile::payload_digest(trace).map_err(|e| format!("digesting {name}: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"trace\": \"{name}\",");
    let _ = writeln!(out, "  \"records\": {},", trace.len());
    let _ = writeln!(out, "  \"digest\": \"{digest:016x}\",");
    let _ = writeln!(out, "  \"schemes\": {{");
    for (si, &scheme) in ExtScheme::ALL.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", scheme.id());
        let mut activity_json = None;
        let mut orgs = String::new();
        for (oi, &org) in OrgKind::ALL.iter().enumerate() {
            let spec = JobSpec {
                scheme,
                org,
                workload: name,
                size: GOLDEN_SIZE,
                mem: MemProfile::Paper,
                source: TraceSource::File { digest },
            };
            let m = simulate_trace(&spec, trace);
            if activity_json.is_none() {
                // The activity study depends on the scheme, not the
                // organization; record it once per scheme.
                let mut a = String::new();
                let columns = m.activity.columns();
                for (ci, (column, stage)) in columns.iter().enumerate() {
                    let _ = writeln!(
                        a,
                        "        \"{}\": {{\"compressed\": {}, \"baseline\": {}}}{}",
                        column_slug(column),
                        stage.compressed_bits,
                        stage.baseline_bits,
                        if ci + 1 < columns.len() { "," } else { "" }
                    );
                }
                activity_json = Some(a);
            }
            let _ = writeln!(
                orgs,
                "        \"{}\": {{\"job_id\": \"{:016x}\", \"instructions\": {}, \
                 \"cycles\": {}, \"branches\": {}, \"stall_structural\": {}, \
                 \"stall_data_hazard\": {}, \"stall_control\": {}}}{}",
                org.id(),
                spec.job_id(),
                m.instructions,
                m.cycles,
                m.branches,
                m.stall_structural,
                m.stall_data_hazard,
                m.stall_control,
                if oi + 1 < OrgKind::ALL.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      \"activity\": {{");
        out.push_str(&activity_json.unwrap_or_default());
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"orgs\": {{");
        out.push_str(&orgs);
        let _ = writeln!(out, "      }}");
        let _ = writeln!(
            out,
            "    }}{}",
            if si + 1 < ExtScheme::ALL.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    Ok(out)
}

/// Regenerates the whole corpus into `dir` (creating it if needed) and
/// returns the paths written.
///
/// # Errors
///
/// Any recording, encoding or I/O failure, as a printable message.
pub fn write_corpus(dir: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for &workload in GOLDEN_WORKLOADS {
        let trace = record_golden(workload)?;
        let bytes = golden_bytes(workload, &trace)?;
        let path = trace_path(dir, workload);
        std::fs::write(&path, bytes)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
        let expected = expected_json(workload, &trace)?;
        let path = expected_path(dir, workload);
        std::fs::write(&path, expected)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

/// Compares two texts line by line; `None` when identical, otherwise a
/// readable report of the first few differences (with line numbers and both
/// sides), so golden-test failures diagnose themselves.
#[must_use]
pub fn diff_report(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let mut report = String::new();
    let mut shown = 0;
    let expected_lines: Vec<&str> = expected.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let common = expected_lines.len().min(actual_lines.len());
    for i in 0..common {
        if expected_lines[i] != actual_lines[i] {
            let _ = writeln!(report, "line {}:", i + 1);
            let _ = writeln!(report, "  expected: {}", expected_lines[i]);
            let _ = writeln!(report, "  actual:   {}", actual_lines[i]);
            shown += 1;
            if shown == 5 {
                let _ = writeln!(report, "  … (further differences elided)");
                break;
            }
        }
    }
    if expected_lines.len() != actual_lines.len() {
        let _ = writeln!(
            report,
            "line counts differ: expected {}, actual {}",
            expected_lines.len(),
            actual_lines.len()
        );
    }
    if report.is_empty() {
        // Same lines but different bytes (e.g. trailing newline).
        let _ = writeln!(
            report,
            "texts differ only in line endings: expected {} bytes, actual {} bytes",
            expected.len(),
            actual.len()
        );
    }
    Some(report)
}

/// Loads one checked-in corpus trace as a sweep input.
///
/// # Errors
///
/// Any trace-file violation, as a printable message.
pub fn load_corpus_trace(dir: &Path, workload: &str) -> Result<TraceInput, String> {
    let path = trace_path(dir, workload);
    TraceInput::load(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_generation_is_deterministic() {
        let trace = record_golden(GOLDEN_WORKLOADS[0]).unwrap();
        let again = record_golden(GOLDEN_WORKLOADS[0]).unwrap();
        assert_eq!(trace.records(), again.records());
        assert_eq!(
            golden_bytes(GOLDEN_WORKLOADS[0], &trace).unwrap(),
            golden_bytes(GOLDEN_WORKLOADS[0], &again).unwrap()
        );
    }

    #[test]
    fn expected_json_is_complete_and_deterministic() {
        let trace = record_golden("rawcaudio").unwrap();
        let json = expected_json("rawcaudio", &trace).unwrap();
        assert_eq!(json, expected_json("rawcaudio", &trace).unwrap());
        for &scheme in ExtScheme::ALL {
            assert!(json.contains(&format!("\"{}\"", scheme.id())));
        }
        for &org in OrgKind::ALL {
            assert!(json.contains(&format!("\"{}\"", org.id())));
        }
        assert!(json.contains("\"fetch\""));
    }

    #[test]
    fn diff_report_pinpoints_the_first_divergence() {
        assert!(diff_report("a\nb\n", "a\nb\n").is_none());
        let report = diff_report("a\nb\nc\n", "a\nX\nc\n").unwrap();
        assert!(report.contains("line 2"), "{report}");
        assert!(report.contains("expected: b"), "{report}");
        assert!(report.contains("actual:   X"), "{report}");
    }
}
