//! The self-timed perf harness behind `repro bench` — the start of the
//! repo's tracked performance trajectory.
//!
//! Four phases, each timed with a monotonic clock:
//!
//! 1. **replay** — the golden conformance corpus replayed through one
//!    pipeline configuration straight from its decode-once arenas
//!    (one warm-up pass, then the fastest of [`REPLAY_PASSES`] timed
//!    passes): instructions per second of raw simulation, free of sweep
//!    machinery.
//! 2. **sweep** — a standard tiny design-space sweep against a fresh
//!    throwaway cache, run twice: cache-cold (every job simulated) and
//!    cache-warm (every job loaded back), configurations per second each.
//! 3. **frontier** — repeated Pareto-frontier extraction over the sweep's
//!    config points: points per second of post-processing.
//! 4. **serve** — the HTTP front door at saturation: concurrent clients
//!    hammering a memoized `POST /simulate` against an in-process server,
//!    once through the nonblocking reactor on pipelined keep-alive
//!    connections and once through the legacy thread-per-connection model
//!    (one dial per request). Requests per second each, client-observed
//!    latency quantiles for the reactor, and the keep-alive speedup ratio
//!    the compare gate watches.
//!
//! [`run`] returns a [`BenchReport`]; [`BenchReport::to_json`] renders the
//! `sigcomp-bench v1` document that `BENCH_<label>.json` files carry, and
//! [`validate`] schema-checks such a document (CI runs it on every emitted
//! report, and `repro bench --check FILE` exposes it to hand-written
//! tooling). The process-global observability registry snapshot rides along
//! under `"obs"` so a report also captures cache and replay counters.

use crate::golden::{self, GOLDEN_WORKLOADS};
use sigcomp::{EnergyModel, ExtScheme};
use sigcomp_explore::{
    config_points, pareto_frontier, run_sweep, simulate_decoded, ExecBackend, JobSpec, MemProfile,
    ResultCache, SweepOptions, SweepSpec, TraceInput,
};
use sigcomp_pipeline::OrgKind;
use sigcomp_serve::Json;
use sigcomp_workloads::WorkloadSize;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// The schema tag every report leads with; bump on incompatible changes.
pub const SCHEMA: &str = "sigcomp-bench v1";

/// Timed passes over the replay corpus; the fastest pass is reported. A
/// single pass of the tiny golden traces lasts about a millisecond, which
/// timer fixed costs and scheduler noise would dominate — and on shared
/// (virtualized) hosts, whole slow epochs lasting hundreds of milliseconds
/// appear and vanish. Spreading best-of sampling across a ~1 s window rides
/// out both and reports the true steady-state rate of the hot loop.
pub const REPLAY_PASSES: u32 = 1024;

/// Minimum untimed warm-up before the replay passes are timed: long enough
/// for the CPU frequency governor to ramp the measuring core, short enough
/// to stay negligible next to the sweep phase.
pub const WARMUP_FLOOR: std::time::Duration = std::time::Duration::from_millis(300);

/// What to measure and how to label it.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Shrink every phase (one replay workload, a two-organization sweep,
    /// fewer frontier iterations) for CI smoke runs.
    pub quick: bool,
    /// The `<label>` of `BENCH_<label>.json`; also recorded in the report.
    pub label: String,
    /// Replay pre-recorded `.sctrace` files from this golden-corpus
    /// directory instead of re-recording the kernels in memory.
    pub corpus: Option<PathBuf>,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            label: "local".to_owned(),
            corpus: None,
        }
    }
}

/// One timed phase: how much work, how long it took.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Work units processed (instructions, configurations, frontier points).
    pub units: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

impl Phase {
    /// Units per second; `0.0` when the phase was too fast to time.
    pub fn rate(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.units as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Everything `repro bench` measured, ready to serialize.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The `--label` the run was tagged with.
    pub label: String,
    /// Whether the shrunk `--quick` phases were used.
    pub quick: bool,
    /// Golden workloads replayed.
    pub replay_workloads: u64,
    /// Replay phase: units are instructions.
    pub replay: Phase,
    /// Configurations in the sweep design space.
    pub sweep_configs: u64,
    /// Cache-cold sweep: units are configurations, all simulated.
    pub sweep_cold: Phase,
    /// Cache-warm sweep: units are configurations, all loaded back.
    pub sweep_warm: Phase,
    /// Frontier extractions performed.
    pub frontier_iterations: u64,
    /// Frontier phase: units are points processed across all iterations.
    pub frontier: Phase,
    /// Serving front-door saturation: reactor vs thread-per-connection.
    pub serve: ServeBench,
    /// The process-global observability registry after the run.
    pub obs: sigcomp_obs::Snapshot,
}

/// The serve phase's measurements: the same request mix driven through both
/// connection-handling models.
#[derive(Debug, Clone, Copy)]
pub struct ServeBench {
    /// Concurrent closed-loop clients per model.
    pub clients: u64,
    /// Requests each reactor client wrote back-to-back per batch on its
    /// keep-alive connection (the threaded baseline cannot pipeline — its
    /// server closes after every response).
    pub pipeline_depth: u64,
    /// Reactor model: units are requests served over keep-alive
    /// connections.
    pub reactor: Phase,
    /// Client-observed p50 latency (µs) under the reactor, measured batch
    /// start → response read.
    pub reactor_p50_us: f64,
    /// Client-observed p95 latency (µs) under the reactor.
    pub reactor_p95_us: f64,
    /// Client-observed p99 latency (µs) under the reactor.
    pub reactor_p99_us: f64,
    /// Thread-per-connection model: units are requests, one dial each.
    pub threaded: Phase,
}

impl ServeBench {
    /// Reactor-to-threaded request-rate ratio — what keep-alive +
    /// pipelining + the event loop buy over thread-per-connection. The
    /// compare gate tracks this ratio, so a regression that erases the
    /// reactor's advantage fails CI even on hosts with different raw speed.
    pub fn keepalive_speedup(&self) -> f64 {
        if self.threaded.rate() > 0.0 {
            self.reactor.rate() / self.threaded.rate()
        } else {
            0.0
        }
    }
}

impl BenchReport {
    /// Cold-to-warm wall-clock ratio — how much the result cache buys.
    pub fn warm_speedup(&self) -> f64 {
        if self.sweep_warm.wall_s > 0.0 {
            self.sweep_cold.wall_s / self.sweep_warm.wall_s
        } else {
            0.0
        }
    }

    /// Renders the `sigcomp-bench v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(
            out,
            "  \"label\": \"{}\",",
            sigcomp_serve::json::escape(&self.label)
        );
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(
            out,
            "  \"replay\": {{\"workloads\": {}, \"instructions\": {}, \"wall_s\": {:.6}, \
             \"instructions_per_sec\": {:.1}}},",
            self.replay_workloads,
            self.replay.units,
            self.replay.wall_s,
            self.replay.rate()
        );
        let _ = writeln!(
            out,
            "  \"sweep\": {{\"configs\": {}, \
             \"cold\": {{\"wall_s\": {:.6}, \"configs_per_sec\": {:.1}}}, \
             \"warm\": {{\"wall_s\": {:.6}, \"configs_per_sec\": {:.1}}}, \
             \"warm_speedup\": {:.2}}},",
            self.sweep_configs,
            self.sweep_cold.wall_s,
            self.sweep_cold.rate(),
            self.sweep_warm.wall_s,
            self.sweep_warm.rate(),
            self.warm_speedup()
        );
        let _ = writeln!(
            out,
            "  \"frontier\": {{\"iterations\": {}, \"points\": {}, \"wall_s\": {:.6}, \
             \"points_per_sec\": {:.1}}},",
            self.frontier_iterations,
            self.frontier.units,
            self.frontier.wall_s,
            self.frontier.rate()
        );
        let _ = writeln!(
            out,
            "  \"serve\": {{\"clients\": {}, \"pipeline_depth\": {}, \
             \"reactor\": {{\"requests\": {}, \"wall_s\": {:.6}, \"req_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}, \
             \"threaded\": {{\"requests\": {}, \"wall_s\": {:.6}, \"req_per_sec\": {:.1}}}, \
             \"keepalive_speedup\": {:.2}}},",
            self.serve.clients,
            self.serve.pipeline_depth,
            self.serve.reactor.units,
            self.serve.reactor.wall_s,
            self.serve.reactor.rate(),
            self.serve.reactor_p50_us,
            self.serve.reactor_p95_us,
            self.serve.reactor_p99_us,
            self.serve.threaded.units,
            self.serve.threaded.wall_s,
            self.serve.threaded.rate(),
            self.serve.keepalive_speedup()
        );
        let _ = writeln!(out, "  \"obs\": {}", self.obs.to_json());
        out.push_str("}\n");
        out
    }
}

/// Runs every phase and assembles the report.
///
/// The sweep phase uses a private throwaway cache directory under the
/// system temp dir (removed afterwards), never the user's `--cache`: a
/// benchmark that could hit a pre-warmed cache would not measure anything.
pub fn run(options: &BenchOptions) -> Result<BenchReport, String> {
    // Phase 1: golden-corpus replay.
    let workloads: &[&str] = if options.quick {
        &GOLDEN_WORKLOADS[..1]
    } else {
        GOLDEN_WORKLOADS
    };
    let mut inputs = Vec::with_capacity(workloads.len());
    for &workload in workloads {
        let input = if let Some(dir) = &options.corpus {
            golden::load_corpus_trace(dir, workload)?
        } else {
            let trace = golden::record_golden(workload)?;
            TraceInput::from_trace(workload, trace)
                .map_err(|e| format!("golden trace {workload}: {e}"))?
        };
        inputs.push(input);
    }
    // Raw simulation throughput: each decode-once arena replayed straight
    // through the models, single-threaded — no executor, no cache, no sweep
    // machinery (the sweep phase times those). An untimed warm-up ramps the
    // core, then the fastest of REPLAY_PASSES timed passes estimates the
    // steady state the sweep hot loop actually runs at.
    let replay_jobs: Vec<(JobSpec, &TraceInput)> = inputs
        .iter()
        .map(|input| {
            let spec = JobSpec {
                scheme: ExtScheme::ThreeBit,
                org: OrgKind::ALL[0],
                workload: input.name(),
                size: WorkloadSize::Tiny,
                mem: MemProfile::Paper,
                source: input.source(),
            };
            (spec, input)
        })
        .collect();
    let replay_pass = || -> u64 {
        replay_jobs
            .iter()
            .map(|(spec, input)| simulate_decoded(spec, input.decoded()).instructions)
            .sum()
    };
    // Warm up untimed until the clock governor has ramped this core to its
    // steady-state frequency — a single ~1 ms pass is far too short for
    // that, and timing against a half-ramped core understates the rate by
    // 30-40 % on idle machines.
    let warmup = Instant::now();
    while warmup.elapsed() < WARMUP_FLOOR {
        replay_pass();
    }
    let mut replay_instructions = 0u64;
    let mut best_pass_s = f64::INFINITY;
    for _ in 0..REPLAY_PASSES {
        let start = Instant::now();
        let pass_instructions = replay_pass();
        best_pass_s = best_pass_s.min(start.elapsed().as_secs_f64());
        replay_instructions = pass_instructions;
    }
    // The corpus is tiny (a pass lasts about a millisecond), so a sum over
    // passes is dominated by scheduler noise; the fastest pass is the stable
    // estimate of the steady-state rate the sweep hot loop runs at.
    let replay = Phase {
        units: replay_instructions,
        wall_s: best_pass_s,
    };

    // Phase 2: the standard sweep, cache-cold then cache-warm.
    let mut sweep_spec = SweepSpec::full(WorkloadSize::Tiny).mems(&[MemProfile::Paper]);
    if options.quick {
        sweep_spec = sweep_spec
            .schemes(&[ExtScheme::ThreeBit])
            .orgs(&OrgKind::ALL[..2]);
    }
    let cache_dir =
        std::env::temp_dir().join(format!("sigcomp-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let timed_sweep = |what: &str| -> Result<(sigcomp_explore::SweepSummary, Phase), String> {
        let cache = ResultCache::open(&cache_dir)
            .map_err(|e| format!("cannot open the throwaway bench cache ({what}): {e}"))?;
        let sweep_options = SweepOptions {
            workers: None,
            cache: Some(cache),
            backend: ExecBackend::LocalThreads,
        };
        let start = Instant::now();
        let summary = run_sweep(&sweep_spec, &sweep_options);
        let phase = Phase {
            units: summary.outcomes.len() as u64,
            wall_s: start.elapsed().as_secs_f64(),
        };
        Ok((summary, phase))
    };
    let result = timed_sweep("cold").and_then(|(cold_summary, sweep_cold)| {
        let (warm_summary, sweep_warm) = timed_sweep("warm")?;
        Ok((cold_summary, sweep_cold, warm_summary, sweep_warm))
    });
    let _ = std::fs::remove_dir_all(&cache_dir);
    let (cold_summary, sweep_cold, warm_summary, sweep_warm) = result?;
    if cold_summary.cached() != 0 {
        return Err(format!(
            "the cold sweep hit the cache ({} jobs) — the throwaway directory was not fresh",
            cold_summary.cached()
        ));
    }
    if warm_summary.simulated() != 0 {
        return Err(format!(
            "the warm sweep missed the cache ({} jobs simulated)",
            warm_summary.simulated()
        ));
    }

    // Phase 3: repeated frontier extraction over the sweep's points.
    let points = config_points(&cold_summary.outcomes);
    let model = EnergyModel::default();
    let frontier_iterations: u64 = if options.quick { 50 } else { 500 };
    let start = Instant::now();
    for _ in 0..frontier_iterations {
        std::hint::black_box(pareto_frontier(std::hint::black_box(&points), &model));
    }
    let frontier = Phase {
        units: frontier_iterations * points.len() as u64,
        wall_s: start.elapsed().as_secs_f64(),
    };

    // Phase 4: the serving front door at saturation, both models.
    let serve = bench_serve(options)?;

    Ok(BenchReport {
        label: options.label.clone(),
        quick: options.quick,
        replay_workloads: workloads.len() as u64,
        replay,
        sweep_configs: sweep_spec.len() as u64,
        sweep_cold,
        sweep_warm,
        frontier_iterations,
        frontier,
        serve,
        obs: sigcomp_obs::global().snapshot(),
    })
}

/// The `/simulate` body every serve-phase request carries; the memo is
/// warmed with it before timing starts, so the measured window exercises
/// the steady-state serving path (parse → memo hit → respond), not the
/// first simulation.
const SERVE_BENCH_BODY: &str = "{\"workload\": \"rawcaudio\", \"size\": \"tiny\"}";

/// Times both connection-handling models over the same closed-loop client
/// fleet: the reactor on pipelined keep-alive connections, then the legacy
/// thread-per-connection model redialing per request.
fn bench_serve(options: &BenchOptions) -> Result<ServeBench, String> {
    use sigcomp_serve::{BatchConfig, ServeConfig, ServeModel, Server};

    let clients: usize = if options.quick { 4 } else { 8 };
    let depth: usize = if options.quick { 8 } else { 16 };
    let window = if options.quick {
        std::time::Duration::from_millis(300)
    } else {
        std::time::Duration::from_millis(1500)
    };

    let run_model = |model: ServeModel| -> Result<(Phase, sigcomp_obs::Histogram), String> {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".into(),
            batch: BatchConfig {
                sim_workers: Some(2),
                ..BatchConfig::default()
            },
            model,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("serve bench: cannot bind: {e}"))?
        .spawn();
        let addr = server.addr();
        // Warm the memo (and the accept path) before the timed window.
        let status = serve_one_shot(addr, SERVE_BENCH_BODY)
            .map_err(|e| format!("serve bench warm-up: {e}"))?;
        if status != 200 {
            return Err(format!("serve bench warm-up answered {status}"));
        }
        let latency = sigcomp_obs::Histogram::new(sigcomp_serve::metrics::LATENCY_BOUNDS_US);
        let started = Instant::now();
        let stop_at = started + window;
        let counts = std::thread::scope(|scope| -> Vec<Result<u64, String>> {
            let latency = &latency;
            (0..clients)
                .map(|_| {
                    scope.spawn(move || match model {
                        ServeModel::Reactor => {
                            serve_client_pipelined(addr, SERVE_BENCH_BODY, depth, stop_at, latency)
                        }
                        ServeModel::ThreadPerConn => {
                            serve_client_redial(addr, SERVE_BENCH_BODY, stop_at, latency)
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("serve bench client panicked"))
                .collect()
        });
        let wall_s = started.elapsed().as_secs_f64();
        let mut requests = 0;
        for count in counts {
            requests += count.map_err(|e| format!("serve bench client: {e}"))?;
        }
        drop(server);
        Ok((
            Phase {
                units: requests,
                wall_s,
            },
            latency,
        ))
    };

    let (reactor, reactor_latency) = run_model(ServeModel::Reactor)?;
    let (threaded, _) = run_model(ServeModel::ThreadPerConn)?;
    let snap = reactor_latency.snapshot();
    Ok(ServeBench {
        clients: clients as u64,
        pipeline_depth: depth as u64,
        reactor,
        reactor_p50_us: snap.quantile(0.50),
        reactor_p95_us: snap.quantile(0.95),
        reactor_p99_us: snap.quantile(0.99),
        threaded,
    })
}

/// One request on a fresh connection, response read to EOF (the legacy
/// model closes after every response). Returns the status code.
fn serve_one_shot(addr: std::net::SocketAddr, body: &str) -> Result<u16, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let request = format!(
        "POST /simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    raw.split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response: {raw:?}"))
}

/// A closed-loop client for the threaded baseline: dial, one request, read
/// to close, repeat until the window ends. Returns its request count.
fn serve_client_redial(
    addr: std::net::SocketAddr,
    body: &str,
    stop_at: Instant,
    latency: &sigcomp_obs::Histogram,
) -> Result<u64, String> {
    let mut served = 0;
    while Instant::now() < stop_at {
        let sent = Instant::now();
        let status = serve_one_shot(addr, body)?;
        if status != 200 {
            return Err(format!("request answered {status}"));
        }
        latency.observe(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        served += 1;
    }
    Ok(served)
}

/// A closed-loop client for the reactor: one keep-alive connection for the
/// whole window, `depth` pipelined requests written back-to-back per batch,
/// then all `depth` framed responses read in order. Each request in a batch
/// is charged the full batch round-trip in the latency histogram (a
/// conservative upper bound). Returns its request count.
fn serve_client_pipelined(
    addr: std::net::SocketAddr,
    body: &str,
    depth: usize,
    stop_at: Instant,
    latency: &sigcomp_obs::Histogram,
) -> Result<u64, String> {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("nodelay: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut stream = stream;
    let one = format!(
        "POST /simulate HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\
         Connection: keep-alive\r\n\r\n{body}",
        body.len()
    );
    let batch = one.repeat(depth);
    let mut body_buf = Vec::new();
    let mut served = 0;
    while Instant::now() < stop_at {
        let sent = Instant::now();
        stream
            .write_all(batch.as_bytes())
            .map_err(|e| format!("send batch: {e}"))?;
        for _ in 0..depth {
            // One framed response: status line, headers (capturing
            // Content-Length), exactly that many body bytes.
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| format!("read status: {e}"))?;
            let status: u16 = line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("malformed status line: {line:?}"))?;
            if status != 200 {
                return Err(format!("pipelined request answered {status}"));
            }
            let mut content_length = 0usize;
            loop {
                line.clear();
                reader
                    .read_line(&mut line)
                    .map_err(|e| format!("read header: {e}"))?;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    break;
                }
                if let Some(value) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("content-length: {e}"))?;
                }
            }
            body_buf.resize(content_length, 0);
            reader
                .read_exact(&mut body_buf)
                .map_err(|e| format!("read body: {e}"))?;
        }
        let elapsed = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        for _ in 0..depth {
            latency.observe(elapsed);
        }
        served += depth as u64;
    }
    Ok(served)
}

/// Fetches `key` out of `json`, naming the missing path on failure.
fn field<'j>(json: &'j Json, context: &str, key: &str) -> Result<&'j Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing key \"{context}{key}\""))
}

/// Requires `key` to be a non-negative number (all report rates and walls).
fn number(json: &Json, context: &str, key: &str) -> Result<(), String> {
    let value = field(json, context, key)?
        .as_f64()
        .ok_or_else(|| format!("\"{context}{key}\" is not a number"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "\"{context}{key}\" is not a finite non-negative number"
        ));
    }
    Ok(())
}

/// Schema-checks a `sigcomp-bench v1` document (`repro bench --check`).
///
/// # Errors
///
/// Returns a one-line description of the first violation: unparsable JSON,
/// a wrong or missing schema tag, or a missing/mistyped field.
pub fn validate(text: &str) -> Result<(), String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match field(&json, "", "schema")?.as_str() {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("schema is \"{other}\", expected \"{SCHEMA}\"")),
        None => return Err("\"schema\" is not a string".to_owned()),
    }
    if field(&json, "", "label")?.as_str().is_none() {
        return Err("\"label\" is not a string".to_owned());
    }
    if field(&json, "", "quick")?.as_bool().is_none() {
        return Err("\"quick\" is not a boolean".to_owned());
    }

    let replay = field(&json, "", "replay")?;
    for key in ["workloads", "instructions"] {
        if field(replay, "replay.", key)?.as_u64().is_none() {
            return Err(format!("\"replay.{key}\" is not an unsigned integer"));
        }
    }
    for key in ["wall_s", "instructions_per_sec"] {
        number(replay, "replay.", key)?;
    }

    let sweep = field(&json, "", "sweep")?;
    if field(sweep, "sweep.", "configs")?.as_u64().is_none() {
        return Err("\"sweep.configs\" is not an unsigned integer".to_owned());
    }
    for pass in ["cold", "warm"] {
        let obj = field(sweep, "sweep.", pass)?;
        let context = format!("sweep.{pass}.");
        for key in ["wall_s", "configs_per_sec"] {
            number(obj, &context, key)?;
        }
    }
    number(sweep, "sweep.", "warm_speedup")?;

    let frontier = field(&json, "", "frontier")?;
    for key in ["iterations", "points"] {
        if field(frontier, "frontier.", key)?.as_u64().is_none() {
            return Err(format!("\"frontier.{key}\" is not an unsigned integer"));
        }
    }
    for key in ["wall_s", "points_per_sec"] {
        number(frontier, "frontier.", key)?;
    }

    let serve = field(&json, "", "serve")?;
    for key in ["clients", "pipeline_depth"] {
        if field(serve, "serve.", key)?.as_u64().is_none() {
            return Err(format!("\"serve.{key}\" is not an unsigned integer"));
        }
    }
    let reactor = field(serve, "serve.", "reactor")?;
    if field(reactor, "serve.reactor.", "requests")?
        .as_u64()
        .is_none()
    {
        return Err("\"serve.reactor.requests\" is not an unsigned integer".to_owned());
    }
    for key in ["wall_s", "req_per_sec", "p50_us", "p95_us", "p99_us"] {
        number(reactor, "serve.reactor.", key)?;
    }
    let threaded = field(serve, "serve.", "threaded")?;
    if field(threaded, "serve.threaded.", "requests")?
        .as_u64()
        .is_none()
    {
        return Err("\"serve.threaded.requests\" is not an unsigned integer".to_owned());
    }
    for key in ["wall_s", "req_per_sec"] {
        number(threaded, "serve.threaded.", key)?;
    }
    number(serve, "serve.", "keepalive_speedup")?;

    let obs = field(&json, "", "obs")?;
    for key in ["counters", "gauges", "histograms"] {
        field(obs, "obs.", key)?;
    }
    Ok(())
}

/// The default `compare` tolerance: a throughput metric may be up to this
/// many times slower than the baseline before it counts as a regression.
/// CI machines and checked-in baselines differ in raw speed, so the
/// comparison is meant to catch real cliffs (accidentally quadratic merges,
/// a cache that stopped hitting), not 10% noise — but since the replay path
/// went arena + table-dispatch the margin over the baseline is wide enough
/// to hold the gate at 2x.
pub const DEFAULT_MAX_SLOWDOWN: f64 = 2.0;

/// Schema tag of the rolling `BENCH_trajectory.json` document.
pub const TRAJECTORY_SCHEMA: &str = "sigcomp-bench-trajectory v1";

/// Renders one compact trajectory row: the run's label, the commit it
/// measured, and the throughput metrics the compare gate watches.
/// Single-line on purpose — [`append_trajectory`] recovers existing rows
/// line-by-line.
#[must_use]
pub fn trajectory_row(report: &BenchReport, commit: &str) -> String {
    format!(
        "{{\"label\": \"{}\", \"commit\": \"{}\", \"quick\": {}, \
         \"replay_instructions_per_sec\": {:.1}, \
         \"sweep_cold_configs_per_sec\": {:.1}, \
         \"sweep_warm_configs_per_sec\": {:.1}, \
         \"frontier_points_per_sec\": {:.1}, \
         \"serve_reactor_req_per_sec\": {:.1}, \
         \"serve_keepalive_speedup\": {:.2}}}",
        sigcomp_serve::json::escape(&report.label),
        sigcomp_serve::json::escape(commit),
        report.quick,
        report.replay.rate(),
        report.sweep_cold.rate(),
        report.sweep_warm.rate(),
        report.frontier.rate(),
        report.serve.reactor.rate(),
        report.serve.keepalive_speedup()
    )
}

/// Appends one [`trajectory_row`] to the rolling trajectory document,
/// creating it when absent, and returns the total row count. The document
/// is a plain JSON object (`{"schema": ..., "rows": [...]}`) with one row
/// per line, so history accumulates without ever re-serializing old rows.
///
/// # Errors
///
/// Fails when an existing file is unreadable, is not a
/// [`TRAJECTORY_SCHEMA`] document, or has lost its one-row-per-line shape
/// (better to stop than to silently drop history).
pub fn append_trajectory(path: &std::path::Path, row: &str) -> Result<usize, String> {
    let mut rows: Vec<String> = Vec::new();
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let doc = Json::parse(&text)
                .map_err(|e| format!("trajectory {}: invalid JSON: {e}", path.display()))?;
            if doc.get("schema").and_then(Json::as_str) != Some(TRAJECTORY_SCHEMA) {
                return Err(format!(
                    "trajectory {}: not a \"{TRAJECTORY_SCHEMA}\" document",
                    path.display()
                ));
            }
            let declared = doc
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("trajectory {}: \"rows\" is not an array", path.display()))?
                .len();
            // Rows are emitted one per line, each starting with "label".
            rows.extend(
                text.lines()
                    .map(|line| line.trim().trim_end_matches(','))
                    .filter(|line| line.starts_with("{\"label\""))
                    .map(str::to_owned),
            );
            if rows.len() != declared {
                return Err(format!(
                    "trajectory {}: found {} row lines but \"rows\" declares {declared} — \
                     restore the one-row-per-line layout before appending",
                    path.display(),
                    rows.len()
                ));
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("trajectory {}: {e}", path.display())),
    }
    rows.push(row.to_owned());

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{TRAJECTORY_SCHEMA}\",");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(out, "    {row}{comma}");
    }
    out.push_str("  ]\n}\n");
    Json::parse(&out).map_err(|e| format!("trajectory row is not valid JSON: {e}"))?;
    std::fs::write(path, &out).map_err(|e| format!("trajectory {}: {e}", path.display()))?;
    Ok(rows.len())
}

/// Reads the `f64` at a dotted `path` (e.g. `"sweep.cold.configs_per_sec"`).
fn metric(json: &Json, path: &str) -> Result<f64, String> {
    let mut node = json;
    for key in path.split('.') {
        node = node
            .get(key)
            .ok_or_else(|| format!("missing key \"{path}\""))?;
    }
    node.as_f64()
        .ok_or_else(|| format!("\"{path}\" is not a number"))
}

/// Compares a fresh report against a baseline (`repro bench --compare`).
///
/// Both documents are schema-checked first. Shape metrics (the `quick`
/// flag, workload and configuration counts) must match exactly — comparing
/// differently-shaped runs would be meaningless. Throughput metrics may
/// regress by at most `max_slowdown`×.
///
/// Returns one summary line per throughput metric on success.
///
/// # Errors
///
/// Every violation is returned, each naming the offending metric.
pub fn compare(
    current: &str,
    baseline: &str,
    max_slowdown: f64,
) -> Result<Vec<String>, Vec<String>> {
    validate(current).map_err(|e| vec![format!("current report: {e}")])?;
    validate(baseline).map_err(|e| vec![format!("baseline report: {e}")])?;
    let cur = Json::parse(current).expect("validated above");
    let base = Json::parse(baseline).expect("validated above");

    let mut violations = Vec::new();
    for path in [
        "replay.workloads",
        "sweep.configs",
        "frontier.iterations",
        "serve.clients",
        "serve.pipeline_depth",
    ] {
        match (metric(&cur, path), metric(&base, path)) {
            (Ok(c), Ok(b)) if c != b => violations.push(format!(
                "{path}: shape mismatch (baseline {b}, current {c}) — \
                 rerun with the baseline's bench flags"
            )),
            (Err(e), _) | (_, Err(e)) => violations.push(e),
            _ => {}
        }
    }
    let quick = |doc: &Json| doc.get("quick").and_then(Json::as_bool);
    if quick(&cur) != quick(&base) {
        violations
            .push("quick: shape mismatch (one report used --quick, the other did not)".to_owned());
    }
    if !violations.is_empty() {
        return Err(violations);
    }

    let mut lines = Vec::new();
    for path in [
        "replay.instructions_per_sec",
        "sweep.cold.configs_per_sec",
        "sweep.warm.configs_per_sec",
        "frontier.points_per_sec",
        "serve.reactor.req_per_sec",
        "serve.keepalive_speedup",
    ] {
        let (c, b) = match (metric(&cur, path), metric(&base, path)) {
            (Ok(c), Ok(b)) => (c, b),
            (Err(e), _) | (_, Err(e)) => {
                violations.push(e);
                continue;
            }
        };
        if b <= 0.0 {
            // A zero baseline rate means the phase was too fast to time —
            // nothing to regress against.
            lines.push(format!("{path}: baseline rate is 0, skipped"));
            continue;
        }
        let floor = b / max_slowdown;
        if c < floor {
            violations.push(format!(
                "{path}: regression — current {c:.1}/s is below {floor:.1}/s \
                 (baseline {b:.1}/s, tolerance {max_slowdown}x)"
            ));
        } else {
            lines.push(format!(
                "{path}: ok ({c:.1}/s vs baseline {b:.1}/s, {:.2}x)",
                c / b
            ));
        }
    }
    if violations.is_empty() {
        Ok(lines)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            label: "unit".to_owned(),
            quick: true,
            replay_workloads: 1,
            replay: Phase {
                units: 1000,
                wall_s: 0.5,
            },
            sweep_configs: 22,
            sweep_cold: Phase {
                units: 22,
                wall_s: 2.0,
            },
            sweep_warm: Phase {
                units: 22,
                wall_s: 0.25,
            },
            frontier_iterations: 50,
            frontier: Phase {
                units: 1100,
                wall_s: 0.1,
            },
            serve: ServeBench {
                clients: 4,
                pipeline_depth: 4,
                reactor: Phase {
                    units: 4000,
                    wall_s: 0.5,
                },
                reactor_p50_us: 120.0,
                reactor_p95_us: 480.0,
                reactor_p99_us: 900.0,
                threaded: Phase {
                    units: 400,
                    wall_s: 0.5,
                },
            },
            obs: sigcomp_obs::Snapshot::default(),
        }
    }

    #[test]
    fn report_round_trips_through_the_validator() {
        let report = sample_report();
        let json = report.to_json();
        validate(&json).expect("the emitted report must satisfy its own schema");
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(parsed.get("label").unwrap().as_str(), Some("unit"));
        let sweep = parsed.get("sweep").unwrap();
        assert_eq!(
            sweep.get("warm_speedup").unwrap().as_f64(),
            Some(8.0),
            "2.0 s cold over 0.25 s warm"
        );
    }

    #[test]
    fn rates_divide_units_by_wall_and_survive_zero_wall() {
        let phase = Phase {
            units: 1000,
            wall_s: 0.5,
        };
        assert_eq!(phase.rate(), 2000.0);
        let instant = Phase {
            units: 1000,
            wall_s: 0.0,
        };
        assert_eq!(instant.rate(), 0.0);
    }

    #[test]
    fn compare_accepts_identical_reports_and_names_regressions() {
        let json = sample_report().to_json();
        let lines = compare(&json, &json, DEFAULT_MAX_SLOWDOWN).expect("identical reports match");
        assert_eq!(lines.len(), 6, "one line per throughput metric: {lines:?}");

        // A 100x-slower cold sweep must be called out by name.
        let mut slow = sample_report();
        slow.sweep_cold.wall_s *= 100.0;
        let violations =
            compare(&slow.to_json(), &json, DEFAULT_MAX_SLOWDOWN).expect_err("regression");
        assert!(
            violations
                .iter()
                .any(|v| v.starts_with("sweep.cold.configs_per_sec: regression")),
            "{violations:?}"
        );
        // The warm sweep was untouched, so it is not blamed.
        assert!(
            !violations.iter().any(|v| v.contains("sweep.warm")),
            "{violations:?}"
        );

        // Differently-shaped runs are a named shape error, not a rate diff.
        let mut reshaped = sample_report();
        reshaped.sweep_configs = 231;
        let violations =
            compare(&reshaped.to_json(), &json, DEFAULT_MAX_SLOWDOWN).expect_err("shape");
        assert!(
            violations
                .iter()
                .any(|v| v.starts_with("sweep.configs: shape mismatch")),
            "{violations:?}"
        );
        let mut full = sample_report();
        full.quick = false;
        let violations = compare(&full.to_json(), &json, DEFAULT_MAX_SLOWDOWN).expect_err("quick");
        assert!(
            violations.iter().any(|v| v.starts_with("quick:")),
            "{violations:?}"
        );

        // Garbage on either side is rejected with the side named.
        let violations = compare("not json", &json, DEFAULT_MAX_SLOWDOWN).expect_err("bad current");
        assert!(
            violations[0].starts_with("current report:"),
            "{violations:?}"
        );
    }

    #[test]
    fn trajectory_accumulates_one_row_per_run() {
        let dir = std::env::temp_dir().join(format!("sigcomp-trajectory-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&path);

        let row = trajectory_row(&sample_report(), "abc123def456");
        assert_eq!(append_trajectory(&path, &row).unwrap(), 1);
        assert_eq!(append_trajectory(&path, &row).unwrap(), 2);

        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(TRAJECTORY_SCHEMA)
        );
        let rows = doc.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert_eq!(row.get("label").and_then(Json::as_str), Some("unit"));
            assert_eq!(
                row.get("commit").and_then(Json::as_str),
                Some("abc123def456")
            );
            assert_eq!(
                row.get("replay_instructions_per_sec")
                    .and_then(Json::as_f64),
                Some(2000.0)
            );
        }

        // A foreign or mangled file is refused, never overwritten.
        let foreign = dir.join("not-a-trajectory.json");
        std::fs::write(&foreign, "{\"schema\": \"something else\", \"rows\": []}").unwrap();
        let err = append_trajectory(&foreign, &row).unwrap_err();
        assert!(err.contains("not a"), "{err}");
        std::fs::write(&foreign, "mangled").unwrap();
        let err = append_trajectory(&foreign, &row).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_names_the_violation() {
        assert!(validate("not json")
            .unwrap_err()
            .starts_with("not valid JSON"));
        let wrong_schema = sample_report()
            .to_json()
            .replace(SCHEMA, "sigcomp-bench v0");
        assert_eq!(
            validate(&wrong_schema).unwrap_err(),
            format!("schema is \"sigcomp-bench v0\", expected \"{SCHEMA}\"")
        );
        let missing = sample_report()
            .to_json()
            .replace("\"instructions_per_sec\"", "\"renamed\"");
        assert_eq!(
            validate(&missing).unwrap_err(),
            "missing key \"replay.instructions_per_sec\""
        );
        let negative = sample_report()
            .to_json()
            .replace("\"warm_speedup\": 8.00", "\"warm_speedup\": -1");
        assert_eq!(
            validate(&negative).unwrap_err(),
            "\"sweep.warm_speedup\" is not a finite non-negative number"
        );
    }
}
