//! # sigcomp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper. The library part holds the study runners and table formatters; the
//! `repro` binary drives them from the command line, and the Criterion
//! benches in `benches/` time scaled-down versions of each experiment.
//!
//! | paper artefact | function | `repro` subcommand |
//! |---|---|---|
//! | Table 1 (byte-pattern frequencies) | [`table1`] | `table1` |
//! | Table 2 (PC update activity/latency) | [`table2`] | `table2` |
//! | Table 3 (function-code frequencies) | [`table3`] | `table3` |
//! | Table 4 (ALU case-3 exceptions) | [`table4`] | `table4` |
//! | Table 5 (byte-granularity activity savings) | [`activity_table`] | `table5` |
//! | Table 6 (halfword-granularity activity savings) | [`activity_table`] | `table6` |
//! | Fig. 4 (byte-/halfword-serial CPI) | [`figure`] | `fig4` |
//! | Fig. 6 (semi-parallel CPI) | [`figure`] | `fig6` |
//! | Fig. 8 (skewed CPI) | [`figure`] | `fig8` |
//! | Fig. 10 (compressed & skewed+bypass CPI) | [`figure`] | `fig10` |
//! | §5 bottleneck study | [`bottleneck`] | `bottleneck` |
//! | design-space sweep + Pareto frontier | `sigcomp_explore::run_sweep` | `sweep` |

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod golden;
pub mod perf;

use sigcomp::analyzer::{AnalyzerConfig, TraceAnalyzer};
use sigcomp::{ActivityReport, ExtScheme, SigStats};
use sigcomp_pipeline::{OrgKind, Organization, PipelineSim, SimResult};
use sigcomp_workloads::{suite, Benchmark, WorkloadSize};
use std::fmt::Write as _;

/// Per-benchmark results of the trace-driven activity study (§2.9).
#[derive(Debug, Clone)]
pub struct ActivityRow {
    /// Benchmark name.
    pub name: String,
    /// Per-stage activity under significance compression vs the baseline.
    pub report: ActivityReport,
    /// Average fetched bytes per instruction (§2.3; ≈ 3.17 in the paper).
    pub mean_fetch_bytes: f64,
    /// Trace statistics (pattern/funct tables).
    pub stats: SigStats,
}

/// Per-benchmark CPI results across a set of pipeline organizations.
#[derive(Debug, Clone)]
pub struct CpiRow {
    /// Benchmark name.
    pub name: String,
    /// One simulation result per requested organization, in request order.
    pub results: Vec<SimResult>,
}

/// Runs the activity study (Tables 1, 3, 5, 6) over the whole kernel suite.
///
/// # Panics
///
/// Panics if a kernel fails to execute — that indicates a bug in the
/// workloads crate, not a runtime condition.
#[must_use]
pub fn activity_study(size: WorkloadSize, config: &AnalyzerConfig) -> Vec<ActivityRow> {
    suite(size)
        .iter()
        .map(|b| activity_for(b, config))
        .collect()
}

/// Runs the activity study for a single benchmark.
///
/// # Panics
///
/// Panics if the kernel fails to execute.
#[must_use]
pub fn activity_for(benchmark: &Benchmark, config: &AnalyzerConfig) -> ActivityRow {
    let mut analyzer = TraceAnalyzer::new(config.clone());
    benchmark
        .run_each(|rec| analyzer.observe(rec))
        .unwrap_or_else(|e| panic!("kernel {} failed: {e}", benchmark.name()));
    ActivityRow {
        name: benchmark.name().to_owned(),
        report: analyzer.report(),
        mean_fetch_bytes: analyzer.mean_fetch_bytes(),
        stats: analyzer.stats().clone(),
    }
}

/// Runs the CPI study (Figures 4, 6, 8, 10) for the given organizations over
/// the whole kernel suite.
///
/// # Panics
///
/// Panics if a kernel fails to execute.
#[must_use]
pub fn cpi_study(size: WorkloadSize, kinds: &[OrgKind]) -> Vec<CpiRow> {
    suite(size).iter().map(|b| cpi_for(b, kinds)).collect()
}

/// Runs the CPI study for a single benchmark.
///
/// # Panics
///
/// Panics if the kernel fails to execute.
#[must_use]
pub fn cpi_for(benchmark: &Benchmark, kinds: &[OrgKind]) -> CpiRow {
    let results = kinds
        .iter()
        .map(|&kind| {
            let mut sim = PipelineSim::new(Organization::new(kind));
            benchmark
                .run_each(|rec| sim.observe(rec))
                .unwrap_or_else(|e| panic!("kernel {} failed: {e}", benchmark.name()));
            sim.finish()
        })
        .collect();
    CpiRow {
        name: benchmark.name().to_owned(),
        results,
    }
}

/// Merges the per-benchmark statistics of an activity study into a single
/// suite-wide [`SigStats`] (the way the paper reports Tables 1 and 3).
#[must_use]
pub fn merged_stats(rows: &[ActivityRow]) -> SigStats {
    let mut merged = SigStats::new();
    for row in rows {
        merged.merge(&row.stats);
    }
    merged
}

/// Formats a percentage histogram with a running cumulative column — the
/// one shape shared by Table 1, `repro trace stat`'s significance histogram
/// and `repro analyze`'s static width histogram.
#[must_use]
pub fn histogram(title: &str, label: &str, rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{label:<10} {:>10} {:>12}", "% values", "cumulative");
    let mut cumulative = 0.0;
    for (name, percent) in rows {
        cumulative += percent;
        let _ = writeln!(out, "{name:<10} {percent:>10.1} {cumulative:>12.1}");
    }
    out
}

/// The rows of [`SigStats::pattern_table`] in [`histogram`] form.
#[must_use]
pub fn pattern_histogram_rows(stats: &SigStats) -> Vec<(String, f64)> {
    stats
        .pattern_table()
        .into_iter()
        .map(|row| (row.pattern.notation(), row.percent))
        .collect()
}

/// Formats Table 1 (significant-byte pattern frequencies).
#[must_use]
pub fn table1(stats: &SigStats) -> String {
    let mut out = histogram(
        "Table 1: Frequency of significant byte patterns",
        "pattern",
        &pattern_histogram_rows(stats),
    );
    let _ = writeln!(
        out,
        "two-bit-expressible patterns cover {:.1} % (paper: ≈ 94 %)",
        stats.prefix_pattern_coverage()
    );
    let _ = writeln!(
        out,
        "mean significant bytes per value: {:.2}",
        stats.mean_significant_bytes()
    );
    out
}

/// Formats Table 2 (PC-update activity and latency vs block size).
#[must_use]
pub fn table2() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: Activity and latency estimates for PC updating"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>18} {:>12}",
        "block bits", "activity (bits)", "latency (cyc)"
    );
    for row in sigcomp::pc::pc_update_table() {
        let _ = writeln!(
            out,
            "{:>12} {:>18.4} {:>12.4}",
            row.block_bits, row.activity_bits, row.latency_cycles
        );
    }
    out
}

/// Formats Table 3 (dynamic function-code frequencies).
#[must_use]
pub fn table3(stats: &SigStats) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: Dynamic frequency of function codes (R-format)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>12}",
        "funct", "% R-format", "cumulative"
    );
    for row in stats.funct_table() {
        let _ = writeln!(
            out,
            "{:<10} {:>10.1} {:>12.1}",
            row.op.mnemonic(),
            row.percent,
            row.cumulative
        );
    }
    let top8: f64 = stats.funct_table().iter().take(8).map(|r| r.percent).sum();
    let _ = writeln!(
        out,
        "top-8 function codes cover {top8:.1} % (paper: ≈ 86.7 %)"
    );
    out
}

/// Formats Table 4 (ALU case-3 exception classes), derived by exhaustive
/// enumeration of the first-principles predicate.
#[must_use]
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: case-3 byte positions that must be generated (both source bytes are sign extensions)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:<22} {:>12}",
        "A[i-1] top bits", "B[i-1] top bits", "generation"
    );
    let pattern = |top: u8| format!("{top:02b}xxxxxx");
    for row in sigcomp::alu::case3_table() {
        let needed = if row.always_required {
            "always"
        } else if row.ever_required {
            "carry-dependent"
        } else {
            "never"
        };
        let _ = writeln!(
            out,
            "{:<22} {:<22} {:>12}",
            pattern(row.a_top),
            pattern(row.b_top),
            needed
        );
    }
    out
}

/// Formats Table 5/6 (per-benchmark activity reduction) for a given scheme.
#[must_use]
pub fn activity_table(rows: &[ActivityRow], scheme: ExtScheme) -> String {
    let mut out = String::new();
    let table_name = match scheme {
        ExtScheme::Halfword => "Table 6: Activity reduction (%) for datapath operations (16 bit)",
        _ => "Table 5: Activity reduction (%) for datapath operations (8 bit)",
    };
    let _ = writeln!(out, "{table_name}");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>8} {:>9} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "benchmark", "Fetch", "RFread", "RFwrite", "ALU", "D$data", "D$tag", "PCinc", "Latches"
    );
    let mut merged = ActivityReport::default();
    for row in rows {
        let r = &row.report;
        let _ = writeln!(
            out,
            "{:<14} {:>7.1} {:>8.1} {:>9.1} {:>7.1} {:>8.1} {:>8.1} {:>7.1} {:>8.1}",
            row.name,
            r.fetch.saving_percent(),
            r.rf_read.saving_percent(),
            r.rf_write.saving_percent(),
            r.alu.saving_percent(),
            r.dcache_data.saving_percent(),
            r.dcache_tag.saving_percent(),
            r.pc_increment.saving_percent(),
            r.latches.saving_percent(),
        );
        merged.merge(r);
    }
    let _ = writeln!(
        out,
        "{:<14} {:>7.1} {:>8.1} {:>9.1} {:>7.1} {:>8.1} {:>8.1} {:>7.1} {:>8.1}",
        "AVG",
        merged.fetch.saving_percent(),
        merged.rf_read.saving_percent(),
        merged.rf_write.saving_percent(),
        merged.alu.saving_percent(),
        merged.dcache_data.saving_percent(),
        merged.dcache_tag.saving_percent(),
        merged.pc_increment.saving_percent(),
        merged.latches.saving_percent(),
    );
    let mean_fetch =
        rows.iter().map(|r| r.mean_fetch_bytes).sum::<f64>() / rows.len().max(1) as f64;
    let _ = writeln!(
        out,
        "mean fetched bytes/instruction: {mean_fetch:.2} (paper: ≈ 3.17)"
    );
    out
}

/// Formats one of the CPI figures: per-benchmark CPI bars for the requested
/// organizations, plus the suite averages and the relative CPI vs baseline.
#[must_use]
pub fn figure(title: &str, rows: &[CpiRow], kinds: &[OrgKind]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let names: Vec<&str> = kinds.iter().map(|&k| Organization::new(k).name()).collect();
    let _ = write!(out, "{:<14}", "benchmark");
    for n in &names {
        let _ = write!(out, " {n:>28}");
    }
    let _ = writeln!(out);
    let mut totals = vec![(0u64, 0u64); kinds.len()];
    for row in rows {
        let _ = write!(out, "{:<14}", row.name);
        for (i, r) in row.results.iter().enumerate() {
            let _ = write!(out, " {:>28.3}", r.cpi());
            totals[i].0 += r.cycles;
            totals[i].1 += r.instructions;
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<14}", "AVG");
    let avg: Vec<f64> = totals
        .iter()
        .map(|&(cyc, ins)| {
            if ins == 0 {
                0.0
            } else {
                cyc as f64 / ins as f64
            }
        })
        .collect();
    for a in &avg {
        let _ = write!(out, " {a:>28.3}");
    }
    let _ = writeln!(out);
    if let Some(base_index) = kinds.iter().position(|&k| k == OrgKind::Baseline32) {
        for (i, name) in names.iter().enumerate() {
            if i != base_index && avg[base_index] > 0.0 {
                let _ = writeln!(
                    out,
                    "{name}: CPI {:+.1} % vs 32-bit baseline",
                    (avg[i] / avg[base_index] - 1.0) * 100.0
                );
            }
        }
    }
    out
}

/// Formats the §5 bottleneck study for the byte-serial organization.
#[must_use]
pub fn bottleneck(size: WorkloadSize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Bottleneck study: stall attribution in the byte-serial pipeline (§5)"
    );
    let org = Organization::new(OrgKind::ByteSerial);
    let mut total_stalls = 0u64;
    let mut ex_stalls = 0u64;
    for b in suite(size) {
        let mut sim = PipelineSim::new(org.clone());
        b.run_each(|rec| sim.observe(rec))
            .unwrap_or_else(|e| panic!("kernel {} failed: {e}", b.name()));
        let result = sim.finish();
        let frac = result.stalls.execute_structural_fraction(&org);
        let _ = writeln!(
            out,
            "{:<14} CPI {:>6.3}  execute-stage structural stalls: {:>5.1} %",
            b.name(),
            result.cpi(),
            frac * 100.0
        );
        total_stalls += result.stalls.total();
        ex_stalls += (frac * result.stalls.total() as f64) as u64;
    }
    if total_stalls > 0 {
        let _ = writeln!(
            out,
            "suite: {:.1} % of stall cycles are execute-stage structural hazards (paper: ≈ 72 %)",
            100.0 * ex_stalls as f64 / total_stalls as f64
        );
    }
    out
}

/// Times one bench scenario for the self-timed bench harnesses in
/// `benches/`: one warm-up call, then enough iterations to fill roughly one
/// second (at most ten), printing the mean per-iteration time. `filter`
/// skips scenarios whose name does not contain it (the harnesses pass their
/// first CLI argument through).
pub fn time_scenario(name: &str, filter: Option<&str>, mut f: impl FnMut()) {
    if let Some(pattern) = filter {
        if !name.contains(pattern) {
            return;
        }
    }
    f();
    let started = std::time::Instant::now();
    let mut iters = 0u32;
    while iters < 10 && started.elapsed().as_secs_f64() < 1.0 {
        f();
        iters += 1;
    }
    let mean = started.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    println!("{name:<28} {mean:>10.2} ms/iter ({iters} iters)");
}

/// The organizations shown in each figure of the paper.
#[must_use]
pub fn figure_orgs(figure_id: u32) -> Vec<OrgKind> {
    match figure_id {
        4 => vec![
            OrgKind::Baseline32,
            OrgKind::ByteSerial,
            OrgKind::HalfwordSerial,
        ],
        6 => vec![
            OrgKind::Baseline32,
            OrgKind::ByteSerial,
            OrgKind::SemiParallel,
        ],
        8 => vec![OrgKind::Baseline32, OrgKind::ParallelSkewed],
        _ => vec![
            OrgKind::Baseline32,
            OrgKind::ParallelCompressed,
            OrgKind::SkewedBypass,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_study_produces_a_row_per_benchmark() {
        let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_byte());
        assert!(rows.len() >= 10);
        let text = activity_table(&rows, ExtScheme::ThreeBit);
        assert!(text.contains("Table 5"));
        assert!(text.contains("AVG"));
        for row in &rows {
            assert!(text.contains(&row.name));
        }
    }

    #[test]
    fn tables_1_and_3_come_from_merged_stats() {
        let rows = activity_study(WorkloadSize::Tiny, &AnalyzerConfig::paper_byte());
        let stats = merged_stats(&rows);
        let t1 = table1(&stats);
        assert!(t1.contains("eees"));
        let t3 = table3(&stats);
        assert!(t3.contains("addu"));
    }

    #[test]
    fn static_tables_render() {
        assert!(table2().contains('8'));
        assert!(table4().contains("xxxxxx"));
    }

    #[test]
    fn figures_render_with_relative_cpi() {
        let kinds = figure_orgs(4);
        let rows: Vec<CpiRow> = suite(WorkloadSize::Tiny)
            .iter()
            .take(2)
            .map(|b| cpi_for(b, &kinds))
            .collect();
        let text = figure("Figure 4", &rows, &kinds);
        assert!(text.contains("Figure 4"));
        assert!(text.contains("byte-serial"));
        assert!(text.contains("% vs 32-bit baseline"));
    }

    #[test]
    fn figure_orgs_cover_all_figures() {
        assert_eq!(figure_orgs(4).len(), 3);
        assert_eq!(figure_orgs(6).len(), 3);
        assert_eq!(figure_orgs(8).len(), 2);
        assert_eq!(figure_orgs(10).len(), 3);
    }
}
